//! The on-disk faultdb format: columnar row-group blocks behind a
//! CRC-protected footer.
//!
//! ```text
//! +--------------------------------------------------------------+
//! | magic "UCFDB1\n" (7 bytes)                                   |
//! | block 0 payload | block 1 payload | ...                      |
//! | footer (index + zone maps + provenance)                      |
//! | trailer: footer_off u64le | footer_len u32le | footer_crc    |
//! +--------------------------------------------------------------+
//! ```
//!
//! Each block holds up to `rows_per_block` faults stored column-major.
//! Format version 1 stores every column fixed-width little-endian;
//! version 2 additionally allows per-block compressed payloads
//! (delta-encoded timestamps, frame-of-reference bit-packed columns —
//! see [`crate::encoding`]), chosen per block by a pure cost rule and
//! recorded as one encoding byte in that block's footer entry. Version 1
//! files remain fully readable: a version 1 footer simply has no
//! encoding byte and every block decodes as fixed-width.
//!
//! The footer records, per block, the byte extent, row count, payload
//! CRC-32 (the same from-scratch CRC as the durable log segments), the
//! encoding byte (version ≥ 2), and a zone map: min/max time, min/max
//! node id, min/max vaddr, a bit-class bitmap, and a flip-direction
//! bitmap. The trailer carries the footer's own extent and CRC, so
//! validation is outside-in: magic → trailer → footer CRC → per-block
//! CRC on decode. Any truncation or bit flip is caught by one of those
//! checks and surfaces as a typed [`DbError`](crate::DbError) — never as
//! silently wrong rows.
//!
//! Files are sealed with the same tmp + fsync + rename discipline as
//! every other artifact in this repo: a crash mid-build leaves the old
//! database or none, never a torn one.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use uc_analysis::daily::DayVolume;
#[cfg(test)]
use uc_analysis::fault::BitClass;
use uc_analysis::fault::Fault;
use uc_cluster::NodeId;
use uc_faultlog::durable::crc::crc32;
use uc_faultlog::ingest::IngestStats;

use crate::encoding::{self, BlockEncoding, Columns};
use crate::error::{BlockDamage, DbError};
use crate::query::FlipDir;
use crate::snapshot::Snapshot;

/// Leading magic bytes.
pub const MAGIC: &[u8; 7] = b"UCFDB1\n";
/// Fixed trailer size: footer offset + length + CRC.
pub const TRAILER_LEN: usize = 16;
/// Current format version (2 = per-block compressed encodings).
pub const FORMAT_VERSION: u32 = 2;
/// Oldest version this reader still decodes.
pub const MIN_FORMAT_VERSION: u32 = 1;
/// Default rows per block: small enough that zone maps prune usefully on
/// a ~50k-fault study, large enough that per-block overhead vanishes.
pub const DEFAULT_ROWS_PER_BLOCK: usize = 4096;

/// Per-block footer entry size by format version (version 2 adds the
/// encoding byte).
fn block_meta_len(version: u32) -> usize {
    if version >= 2 {
        59
    } else {
        58
    }
}

/// Per-block zone map: conservative bounds the planner prunes against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZoneMap {
    pub min_time: i64,
    pub max_time: i64,
    pub min_node: u32,
    pub max_node: u32,
    pub min_vaddr: u64,
    pub max_vaddr: u64,
    /// Bit `c` set iff some row has `BitClass::ALL[c]`.
    pub class_map: u8,
    /// Bit `d` set iff some row has flip direction `d` (see [`FlipDir`]).
    pub dir_map: u8,
}

impl ZoneMap {
    /// The identity under [`ZoneMap::absorb`]: bounds no row satisfies.
    pub fn empty() -> ZoneMap {
        ZoneMap {
            min_time: i64::MAX,
            max_time: i64::MIN,
            min_node: u32::MAX,
            max_node: 0,
            min_vaddr: u64::MAX,
            max_vaddr: 0,
            class_map: 0,
            dir_map: 0,
        }
    }

    /// Widen to cover one fault.
    pub fn add(&mut self, f: &Fault) {
        self.min_time = self.min_time.min(f.time.as_secs());
        self.max_time = self.max_time.max(f.time.as_secs());
        self.min_node = self.min_node.min(f.node.0);
        self.max_node = self.max_node.max(f.node.0);
        self.min_vaddr = self.min_vaddr.min(f.vaddr);
        self.max_vaddr = self.max_vaddr.max(f.vaddr);
        self.class_map |= 1 << f.bit_class() as u8;
        self.dir_map |= 1 << FlipDir::of(f) as u8;
    }

    /// Widen to cover everything another zone map covers.
    pub fn absorb(&mut self, z: &ZoneMap) {
        self.min_time = self.min_time.min(z.min_time);
        self.max_time = self.max_time.max(z.max_time);
        self.min_node = self.min_node.min(z.min_node);
        self.max_node = self.max_node.max(z.max_node);
        self.min_vaddr = self.min_vaddr.min(z.min_vaddr);
        self.max_vaddr = self.max_vaddr.max(z.max_vaddr);
        self.class_map |= z.class_map;
        self.dir_map |= z.dir_map;
    }

    /// The zone map covering exactly these faults.
    pub fn of(faults: &[Fault]) -> ZoneMap {
        let mut z = ZoneMap::empty();
        for f in faults {
            z.add(f);
        }
        z
    }
}

/// Footer entry for one block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMeta {
    /// Absolute byte offset of the payload in the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// Row count.
    pub rows: u32,
    /// CRC-32 of the payload bytes.
    pub crc: u32,
    /// How the payload is encoded (always `Fixed` in version 1 files).
    pub encoding: BlockEncoding,
    pub zone: ZoneMap,
}

/// Everything the footer stores besides the block index: the report
/// provenance a [`Snapshot`] needs (see that type's docs).
#[derive(Clone, Debug, PartialEq)]
pub struct Provenance {
    pub node_logs: u64,
    pub raw_records: u64,
    pub raw_errors: u64,
    pub stats: IngestStats,
    pub flood_nodes: Vec<NodeId>,
    /// (day index, f64 bits) pairs — exact-bit day volume.
    pub day_volume: Vec<(i64, u64)>,
}

/// Decoded footer.
#[derive(Clone, Debug, PartialEq)]
pub struct Footer {
    pub version: u32,
    pub rows_per_block: u32,
    pub total_rows: u64,
    pub blocks: Vec<BlockMeta>,
    pub provenance: Provenance,
}

/// Which format version to write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileEncoding {
    /// Version 1: fixed-width blocks, byte-identical to the historical
    /// writer. Kept as the differential oracle.
    V1,
    /// Version 2: per-block cost-ruled compressed encodings.
    V2,
}

/// Build options.
#[derive(Clone, Copy, Debug)]
pub struct WriteOptions {
    pub rows_per_block: usize,
    pub encoding: FileEncoding,
}

impl Default for WriteOptions {
    fn default() -> WriteOptions {
        WriteOptions {
            rows_per_block: DEFAULT_ROWS_PER_BLOCK,
            encoding: FileEncoding::V2,
        }
    }
}

/// What a successful build produced.
#[derive(Clone, Debug)]
pub struct WriteSummary {
    pub path: PathBuf,
    pub rows: u64,
    pub blocks: usize,
    pub bytes: u64,
}

// ---------------------------------------------------------------- encode

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode one chunk of faults under the chosen file encoding.
fn encode_block(faults: &[Fault], file_enc: FileEncoding) -> (Vec<u8>, ZoneMap, BlockEncoding) {
    debug_assert!(!faults.is_empty());
    let zone = ZoneMap::of(faults);
    let (payload, enc) = match file_enc {
        FileEncoding::V1 => (encoding::encode_fixed(faults), BlockEncoding::Fixed),
        FileEncoding::V2 => encoding::encode_block_choose(faults),
    };
    (payload, zone, enc)
}

fn encode_footer(footer: &Footer) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + footer.blocks.len() * block_meta_len(footer.version));
    push_u32(&mut out, footer.version);
    push_u32(&mut out, footer.rows_per_block);
    push_u64(&mut out, footer.total_rows);
    push_u32(&mut out, footer.blocks.len() as u32);
    for b in &footer.blocks {
        push_u64(&mut out, b.offset);
        push_u32(&mut out, b.len);
        push_u32(&mut out, b.rows);
        push_u32(&mut out, b.crc);
        push_i64(&mut out, b.zone.min_time);
        push_i64(&mut out, b.zone.max_time);
        push_u32(&mut out, b.zone.min_node);
        push_u32(&mut out, b.zone.max_node);
        push_u64(&mut out, b.zone.min_vaddr);
        push_u64(&mut out, b.zone.max_vaddr);
        out.push(b.zone.class_map);
        out.push(b.zone.dir_map);
        if footer.version >= 2 {
            out.push(b.encoding as u8);
        }
    }
    encode_provenance(&mut out, &footer.provenance);
    out
}

/// Append a [`Provenance`] in the footer wire layout. Shared with the
/// root catalog, which stores the campaign's provenance once at the root
/// instead of in every shard.
pub(crate) fn encode_provenance(out: &mut Vec<u8>, p: &Provenance) {
    push_u64(out, p.node_logs);
    push_u64(out, p.raw_records);
    push_u64(out, p.raw_errors);
    for v in stats_fields(&p.stats) {
        push_u64(out, v);
    }
    push_u32(out, p.flood_nodes.len() as u32);
    for n in &p.flood_nodes {
        push_u32(out, n.0);
    }
    push_u32(out, p.day_volume.len() as u32);
    for &(day, bits) in &p.day_volume {
        push_i64(out, day);
        push_u64(out, bits);
    }
}

/// Decode a [`Provenance`] from the cursor (inverse of
/// [`encode_provenance`]).
pub(crate) fn decode_provenance(r: &mut Reader<'_>) -> Result<Provenance, DbError> {
    let node_logs = r.u64()?;
    let raw_records = r.u64()?;
    let raw_errors = r.u64()?;
    let mut fields = [0u64; 17];
    for f in &mut fields {
        *f = r.u64()?;
    }
    let flood_count = r.u32()?;
    if (flood_count as usize).saturating_mul(4) > r.remaining() {
        return Err(DbError::BadFooter("flood list larger than footer".into()));
    }
    let mut flood_nodes = Vec::with_capacity(flood_count as usize);
    for _ in 0..flood_count {
        flood_nodes.push(NodeId(r.u32()?));
    }
    let day_count = r.u32()?;
    if (day_count as usize).saturating_mul(16) > r.remaining() {
        return Err(DbError::BadFooter("day volume larger than footer".into()));
    }
    let mut day_volume = Vec::with_capacity(day_count as usize);
    for _ in 0..day_count {
        let day = r.i64()?;
        let bits = r.u64()?;
        day_volume.push((day, bits));
    }
    Ok(Provenance {
        node_logs,
        raw_records,
        raw_errors,
        stats: stats_from_fields(fields),
        flood_nodes,
        day_volume,
    })
}

/// The 17 ingest counters in declaration order; the reader rebuilds the
/// struct from the same order, so this is the serialization contract.
fn stats_fields(s: &IngestStats) -> [u64; 17] {
    [
        s.files_read,
        s.files_unreadable,
        s.invalid_utf8_files,
        s.lines_read,
        s.records_kept,
        s.blank_lines,
        s.torn_final_lines,
        s.duplicate_lines,
        s.bad_kind,
        s.bad_field,
        s.bad_number,
        s.bad_node,
        s.out_of_order,
        s.session_gaps,
        s.fsck_files_salvaged,
        s.fsck_bytes_salvaged,
        s.fsck_bytes_quarantined,
    ]
}

fn stats_from_fields(v: [u64; 17]) -> IngestStats {
    IngestStats {
        files_read: v[0],
        files_unreadable: v[1],
        invalid_utf8_files: v[2],
        lines_read: v[3],
        records_kept: v[4],
        blank_lines: v[5],
        torn_final_lines: v[6],
        duplicate_lines: v[7],
        bad_kind: v[8],
        bad_field: v[9],
        bad_number: v[10],
        bad_node: v[11],
        out_of_order: v[12],
        session_gaps: v[13],
        fsck_files_salvaged: v[14],
        fsck_bytes_salvaged: v[15],
        fsck_bytes_quarantined: v[16],
    }
}

/// Serialize a snapshot to `path` atomically (`<path>.tmp` + fsync +
/// rename). Block encoding fans out over the worker pool; the byte
/// stream is identical at any thread count (chunks are concatenated in
/// order, and the per-block cost rule is pure).
pub fn write_db(
    snapshot: &Snapshot,
    path: &Path,
    opts: &WriteOptions,
) -> Result<WriteSummary, DbError> {
    let rows_per_block = opts.rows_per_block.clamp(1, 1 << 20);
    let chunks: Vec<&[Fault]> = snapshot.faults.chunks(rows_per_block).collect();
    let encoded = uc_parallel::par_map(&chunks, |_, chunk| encode_block(chunk, opts.encoding));

    let mut blocks = Vec::with_capacity(encoded.len());
    let mut offset = MAGIC.len() as u64;
    for (chunk, (payload, zone, enc)) in chunks.iter().zip(&encoded) {
        blocks.push(BlockMeta {
            offset,
            len: payload.len() as u32,
            rows: chunk.len() as u32,
            crc: crc32(payload),
            encoding: *enc,
            zone: *zone,
        });
        offset += payload.len() as u64;
    }

    let footer = Footer {
        version: match opts.encoding {
            FileEncoding::V1 => 1,
            FileEncoding::V2 => FORMAT_VERSION,
        },
        rows_per_block: rows_per_block as u32,
        total_rows: snapshot.faults.len() as u64,
        blocks,
        provenance: Provenance {
            node_logs: snapshot.node_logs,
            raw_records: snapshot.raw_records,
            raw_errors: snapshot.raw_errors,
            stats: snapshot.stats,
            flood_nodes: snapshot.flood_nodes.clone(),
            day_volume: snapshot
                .day_volume
                .iter()
                .map(|(d, v)| (d, v.to_bits()))
                .collect(),
        },
    };
    let footer_bytes = encode_footer(&footer);
    let footer_off = offset;

    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| DbError::io(path, io::Error::other("path has no file name")))?;
    let dir = path.parent().unwrap_or(Path::new("."));
    fs::create_dir_all(dir).map_err(|e| DbError::io(dir, e))?;
    let tmp = dir.join(format!("{file_name}.tmp"));
    let write_all = || -> io::Result<u64> {
        let mut w = io::BufWriter::new(fs::File::create(&tmp)?);
        w.write_all(MAGIC)?;
        for (payload, _, _) in &encoded {
            w.write_all(payload)?;
        }
        w.write_all(&footer_bytes)?;
        w.write_all(&footer_off.to_le_bytes())?;
        w.write_all(&(footer_bytes.len() as u32).to_le_bytes())?;
        w.write_all(&crc32(&footer_bytes).to_le_bytes())?;
        w.flush()?;
        let f = w
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))?;
        f.sync_all()?;
        Ok(footer_off + footer_bytes.len() as u64 + TRAILER_LEN as u64)
    };
    let bytes = write_all().map_err(|e| DbError::io(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| DbError::io(path, e))?;
    Ok(WriteSummary {
        path: path.to_path_buf(),
        rows: footer.total_rows,
        blocks: footer.blocks.len(),
        bytes,
    })
}

// ---------------------------------------------------------------- decode

/// Bounds-checked little-endian cursor; every shortfall is a typed
/// footer-corruption error rather than a panic. Shared with the root
/// catalog decoder.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], DbError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| DbError::BadFooter("footer shorter than its structure".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DbError> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> Result<u32, DbError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, DbError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn i64(&mut self) -> Result<i64, DbError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Bytes left unread.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Decode and validate a footer slice (CRC already checked by the
/// caller against the trailer). Accepts versions 1 and 2.
pub fn decode_footer(bytes: &[u8], blocks_end: u64) -> Result<Footer, DbError> {
    let mut r = Reader::new(bytes);
    let version = r.u32()?;
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(DbError::BadVersion(version));
    }
    let rows_per_block = r.u32()?;
    let total_rows = r.u64()?;
    let block_count = r.u32()?;
    // An absurd count would make us allocate before the take() fails;
    // bound it by what the footer could possibly hold.
    if (block_count as usize).saturating_mul(block_meta_len(version)) > bytes.len() {
        return Err(DbError::BadFooter(format!(
            "block count {block_count} larger than the footer"
        )));
    }
    let mut blocks = Vec::with_capacity(block_count as usize);
    let mut expect_off = MAGIC.len() as u64;
    let mut rows_sum = 0u64;
    for i in 0..block_count {
        let b = BlockMeta {
            offset: r.u64()?,
            len: r.u32()?,
            rows: r.u32()?,
            crc: r.u32()?,
            encoding: BlockEncoding::Fixed,
            zone: ZoneMap {
                min_time: r.i64()?,
                max_time: r.i64()?,
                min_node: r.u32()?,
                max_node: r.u32()?,
                min_vaddr: r.u64()?,
                max_vaddr: r.u64()?,
                class_map: r.u8()?,
                dir_map: r.u8()?,
            },
        };
        let b = if version >= 2 {
            let enc = BlockEncoding::from_byte(r.u8()?)
                .ok_or_else(|| DbError::BadFooter(format!("block {i} unknown encoding")))?;
            BlockMeta { encoding: enc, ..b }
        } else {
            b
        };
        if b.offset != expect_off || b.rows == 0 {
            return Err(DbError::BadFooter(format!("block {i} index inconsistent")));
        }
        expect_off += b.len as u64;
        if expect_off > blocks_end {
            return Err(DbError::BlockCorrupt {
                index: i,
                damage: BlockDamage::OutOfBounds,
            });
        }
        rows_sum += b.rows as u64;
        blocks.push(b);
    }
    if expect_off != blocks_end {
        return Err(DbError::BadFooter(
            "block region does not meet the footer".into(),
        ));
    }
    if rows_sum != total_rows {
        return Err(DbError::BadFooter(format!(
            "row counts disagree: blocks hold {rows_sum}, footer claims {total_rows}"
        )));
    }
    let provenance = decode_provenance(&mut r)?;
    if !r.done() {
        return Err(DbError::BadFooter("trailing bytes after footer".into()));
    }
    Ok(Footer {
        version,
        rows_per_block,
        total_rows,
        blocks,
        provenance,
    })
}

/// Decode one block payload into columnar form. The caller has already
/// sliced `payload` per the footer; this verifies the CRC before
/// trusting a byte, then the exact column layout and every value.
pub fn decode_block_columns(payload: &[u8], meta: &BlockMeta) -> Result<Columns, BlockDamage> {
    if crc32(payload) != meta.crc {
        return Err(BlockDamage::ChecksumMismatch);
    }
    encoding::decode_columns(payload, meta.rows as usize, meta.encoding)
}

/// Decode one block payload back into faults (row form).
pub fn decode_block(payload: &[u8], meta: &BlockMeta) -> Result<Vec<Fault>, BlockDamage> {
    Ok(decode_block_columns(payload, meta)?.to_faults())
}

/// Rebuild the [`Snapshot`] provenance side (everything but the faults).
pub fn snapshot_from_parts(provenance: &Provenance, faults: Vec<Fault>) -> Snapshot {
    Snapshot {
        faults,
        flood_nodes: provenance.flood_nodes.clone(),
        stats: provenance.stats,
        node_logs: provenance.node_logs,
        raw_records: provenance.raw_records,
        raw_errors: provenance.raw_errors,
        day_volume: DayVolume::from_pairs(
            provenance
                .day_volume
                .iter()
                .map(|&(d, bits)| (d, f64::from_bits(bits))),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_simclock::SimTime;

    fn fault(t: i64, node: u32, vaddr: u64, actual: u32, temp: Option<f32>) -> Fault {
        Fault {
            node: NodeId(node),
            time: SimTime::from_secs(t),
            vaddr,
            expected: 0xFFFF_FFFF,
            actual,
            temp,
            raw_logs: 3,
        }
    }

    #[test]
    fn block_roundtrip_with_and_without_temps() {
        let faults = vec![
            fault(10, 1, 0x100, 0xFFFF_FFFE, Some(35.5)),
            fault(20, 2, 0x200, 0x7FFF_FFFF, None),
            fault(30, 900, 0x300, 0x0000_0000, Some(-3.25)),
        ];
        for file_enc in [FileEncoding::V1, FileEncoding::V2] {
            let (payload, zone, enc) = encode_block(&faults, file_enc);
            let meta = BlockMeta {
                offset: 7,
                len: payload.len() as u32,
                rows: 3,
                crc: crc32(&payload),
                encoding: enc,
                zone,
            };
            let back = decode_block(&payload, &meta).unwrap();
            assert_eq!(back, faults, "{file_enc:?}");
            assert_eq!(zone.min_time, 10);
            assert_eq!(zone.max_time, 30);
            assert_eq!(zone.min_node, 1);
            assert_eq!(zone.max_node, 900);
            assert_eq!(zone.min_vaddr, 0x100);
            assert_eq!(zone.max_vaddr, 0x300);
            // 1-bit, 1-bit, 32-bit corruptions.
            assert_eq!(
                zone.class_map,
                (1 << BitClass::One as u8) | (1 << BitClass::SixPlus as u8)
            );
        }
    }

    #[test]
    fn v1_blocks_are_byte_identical_to_the_historical_writer() {
        // The version-1 encoder must keep producing exactly the layout
        // documented at the top of this file — spot-check the column
        // offsets by hand.
        let faults = vec![
            fault(10, 1, 0x100, 0xFFFF_FFFE, None),
            fault(20, 2, 0x200, 0xFFFF_FFFD, None),
        ];
        let (payload, _, enc) = encode_block(&faults, FileEncoding::V1);
        assert_eq!(enc, BlockEncoding::Fixed);
        assert_eq!(payload.len(), 2 * 36 + 1); // two rows + bitmap, no temps
        assert_eq!(&payload[0..8], &10i64.to_le_bytes());
        assert_eq!(&payload[8..16], &20i64.to_le_bytes());
        assert_eq!(&payload[16..20], &1u32.to_le_bytes());
        assert_eq!(&payload[20..24], &2u32.to_le_bytes());
    }

    #[test]
    fn payload_bit_flip_is_checksum_mismatch_in_both_encodings() {
        let faults = vec![fault(10, 1, 0x100, 0xFFFF_FFFE, None)];
        for file_enc in [FileEncoding::V1, FileEncoding::V2] {
            let (mut payload, zone, enc) = encode_block(&faults, file_enc);
            let meta = BlockMeta {
                offset: 7,
                len: payload.len() as u32,
                rows: 1,
                crc: crc32(&payload),
                encoding: enc,
                zone,
            };
            payload[5] ^= 0x10;
            assert_eq!(
                decode_block(&payload, &meta),
                Err(BlockDamage::ChecksumMismatch),
                "{file_enc:?}"
            );
        }
    }

    #[test]
    fn footer_roundtrips_both_versions() {
        let zone = ZoneMap::of(&[fault(5, 3, 0x40, 0xFFFF_FFFE, None)]);
        for (version, enc) in [(1, BlockEncoding::Fixed), (2, BlockEncoding::Packed)] {
            let footer = Footer {
                version,
                rows_per_block: 4096,
                total_rows: 1,
                blocks: vec![BlockMeta {
                    offset: MAGIC.len() as u64,
                    len: 40,
                    rows: 1,
                    crc: 0xDEAD_BEEF,
                    encoding: enc,
                    zone,
                }],
                provenance: Provenance {
                    node_logs: 1,
                    raw_records: 2,
                    raw_errors: 3,
                    stats: IngestStats::default(),
                    flood_nodes: vec![NodeId(7)],
                    day_volume: vec![(0, 1.5f64.to_bits())],
                },
            };
            let bytes = encode_footer(&footer);
            let back = decode_footer(&bytes, MAGIC.len() as u64 + 40).unwrap();
            assert_eq!(back, footer, "version {version}");
        }
    }

    #[test]
    fn unknown_footer_version_is_typed() {
        let mut bytes = vec![0u8; 20];
        bytes[0..4].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_footer(&bytes, 7),
            Err(DbError::BadVersion(99))
        ));
    }
}
