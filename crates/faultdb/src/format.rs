//! The on-disk faultdb format: columnar row-group blocks behind a
//! CRC-protected footer.
//!
//! ```text
//! +--------------------------------------------------------------+
//! | magic "UCFDB1\n" (7 bytes)                                   |
//! | block 0 payload | block 1 payload | ...                      |
//! | footer (index + zone maps + provenance)                      |
//! | trailer: footer_off u64le | footer_len u32le | footer_crc    |
//! +--------------------------------------------------------------+
//! ```
//!
//! Each block holds up to `rows_per_block` faults stored column-major,
//! fixed-width little-endian: all times, then all node ids, then all
//! vaddrs, expected words, actual words, raw-log counts, and finally a
//! temperature presence bitmap followed by one f32 per present reading.
//! The footer records, per block, the byte extent, row count, payload
//! CRC-32 (the same from-scratch CRC as the durable log segments), and a
//! zone map: min/max time, min/max node id, min/max vaddr, a bit-class
//! bitmap, and a flip-direction bitmap. The trailer carries the footer's
//! own extent and CRC, so validation is outside-in: magic → trailer →
//! footer CRC → per-block CRC on decode. Any truncation or bit flip is
//! caught by one of those checks and surfaces as a typed
//! [`DbError`](crate::DbError) — never as silently wrong rows.
//!
//! Files are sealed with the same tmp + fsync + rename discipline as
//! every other artifact in this repo: a crash mid-build leaves the old
//! database or none, never a torn one.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use uc_analysis::daily::DayVolume;
#[cfg(test)]
use uc_analysis::fault::BitClass;
use uc_analysis::fault::Fault;
use uc_cluster::{NodeId, TOTAL_NODES};
use uc_faultlog::durable::crc::crc32;
use uc_faultlog::ingest::IngestStats;
use uc_simclock::SimTime;

use crate::error::{BlockDamage, DbError};
use crate::query::FlipDir;
use crate::snapshot::Snapshot;

/// Leading magic bytes.
pub const MAGIC: &[u8; 7] = b"UCFDB1\n";
/// Fixed trailer size: footer offset + length + CRC.
pub const TRAILER_LEN: usize = 16;
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;
/// Default rows per block: small enough that zone maps prune usefully on
/// a ~50k-fault study, large enough that per-block overhead vanishes.
pub const DEFAULT_ROWS_PER_BLOCK: usize = 4096;

/// Bytes per row across the fixed-width columns (time, node, vaddr,
/// expected, actual, raw_logs) — excludes the temp bitmap and values.
const FIXED_ROW_BYTES: usize = 8 + 4 + 8 + 4 + 4 + 8;

/// Per-block zone map: conservative bounds the planner prunes against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZoneMap {
    pub min_time: i64,
    pub max_time: i64,
    pub min_node: u32,
    pub max_node: u32,
    pub min_vaddr: u64,
    pub max_vaddr: u64,
    /// Bit `c` set iff some row has `BitClass::ALL[c]`.
    pub class_map: u8,
    /// Bit `d` set iff some row has flip direction `d` (see [`FlipDir`]).
    pub dir_map: u8,
}

/// Footer entry for one block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMeta {
    /// Absolute byte offset of the payload in the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// Row count.
    pub rows: u32,
    /// CRC-32 of the payload bytes.
    pub crc: u32,
    pub zone: ZoneMap,
}

/// Everything the footer stores besides the block index: the report
/// provenance a [`Snapshot`] needs (see that type's docs).
#[derive(Clone, Debug, PartialEq)]
pub struct Provenance {
    pub node_logs: u64,
    pub raw_records: u64,
    pub raw_errors: u64,
    pub stats: IngestStats,
    pub flood_nodes: Vec<NodeId>,
    /// (day index, f64 bits) pairs — exact-bit day volume.
    pub day_volume: Vec<(i64, u64)>,
}

/// Decoded footer.
#[derive(Clone, Debug, PartialEq)]
pub struct Footer {
    pub version: u32,
    pub rows_per_block: u32,
    pub total_rows: u64,
    pub blocks: Vec<BlockMeta>,
    pub provenance: Provenance,
}

/// Build options.
#[derive(Clone, Copy, Debug)]
pub struct WriteOptions {
    pub rows_per_block: usize,
}

impl Default for WriteOptions {
    fn default() -> WriteOptions {
        WriteOptions {
            rows_per_block: DEFAULT_ROWS_PER_BLOCK,
        }
    }
}

/// What a successful build produced.
#[derive(Clone, Debug)]
pub struct WriteSummary {
    pub path: PathBuf,
    pub rows: u64,
    pub blocks: usize,
    pub bytes: u64,
}

// ---------------------------------------------------------------- encode

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode one chunk of faults as a column-major payload plus zone map.
fn encode_block(faults: &[Fault]) -> (Vec<u8>, ZoneMap) {
    debug_assert!(!faults.is_empty());
    let n = faults.len();
    let bitmap_len = n.div_ceil(8);
    let mut payload = Vec::with_capacity(n * FIXED_ROW_BYTES + bitmap_len + 4 * n);
    for f in faults {
        push_i64(&mut payload, f.time.as_secs());
    }
    for f in faults {
        push_u32(&mut payload, f.node.0);
    }
    for f in faults {
        push_u64(&mut payload, f.vaddr);
    }
    for f in faults {
        push_u32(&mut payload, f.expected);
    }
    for f in faults {
        push_u32(&mut payload, f.actual);
    }
    for f in faults {
        push_u64(&mut payload, f.raw_logs);
    }
    let mut bitmap = vec![0u8; bitmap_len];
    for (i, f) in faults.iter().enumerate() {
        if f.temp.is_some() {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    payload.extend_from_slice(&bitmap);
    for f in faults {
        if let Some(t) = f.temp {
            payload.extend_from_slice(&t.to_le_bytes());
        }
    }

    let mut zone = ZoneMap {
        min_time: i64::MAX,
        max_time: i64::MIN,
        min_node: u32::MAX,
        max_node: 0,
        min_vaddr: u64::MAX,
        max_vaddr: 0,
        class_map: 0,
        dir_map: 0,
    };
    for f in faults {
        zone.min_time = zone.min_time.min(f.time.as_secs());
        zone.max_time = zone.max_time.max(f.time.as_secs());
        zone.min_node = zone.min_node.min(f.node.0);
        zone.max_node = zone.max_node.max(f.node.0);
        zone.min_vaddr = zone.min_vaddr.min(f.vaddr);
        zone.max_vaddr = zone.max_vaddr.max(f.vaddr);
        zone.class_map |= 1 << f.bit_class() as u8;
        zone.dir_map |= 1 << FlipDir::of(f) as u8;
    }
    (payload, zone)
}

fn encode_footer(footer: &Footer) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + footer.blocks.len() * 58);
    push_u32(&mut out, footer.version);
    push_u32(&mut out, footer.rows_per_block);
    push_u64(&mut out, footer.total_rows);
    push_u32(&mut out, footer.blocks.len() as u32);
    for b in &footer.blocks {
        push_u64(&mut out, b.offset);
        push_u32(&mut out, b.len);
        push_u32(&mut out, b.rows);
        push_u32(&mut out, b.crc);
        push_i64(&mut out, b.zone.min_time);
        push_i64(&mut out, b.zone.max_time);
        push_u32(&mut out, b.zone.min_node);
        push_u32(&mut out, b.zone.max_node);
        push_u64(&mut out, b.zone.min_vaddr);
        push_u64(&mut out, b.zone.max_vaddr);
        out.push(b.zone.class_map);
        out.push(b.zone.dir_map);
    }
    let p = &footer.provenance;
    push_u64(&mut out, p.node_logs);
    push_u64(&mut out, p.raw_records);
    push_u64(&mut out, p.raw_errors);
    for v in stats_fields(&p.stats) {
        push_u64(&mut out, v);
    }
    push_u32(&mut out, p.flood_nodes.len() as u32);
    for n in &p.flood_nodes {
        push_u32(&mut out, n.0);
    }
    push_u32(&mut out, p.day_volume.len() as u32);
    for &(day, bits) in &p.day_volume {
        push_i64(&mut out, day);
        push_u64(&mut out, bits);
    }
    out
}

/// The 17 ingest counters in declaration order; the reader rebuilds the
/// struct from the same order, so this is the serialization contract.
fn stats_fields(s: &IngestStats) -> [u64; 17] {
    [
        s.files_read,
        s.files_unreadable,
        s.invalid_utf8_files,
        s.lines_read,
        s.records_kept,
        s.blank_lines,
        s.torn_final_lines,
        s.duplicate_lines,
        s.bad_kind,
        s.bad_field,
        s.bad_number,
        s.bad_node,
        s.out_of_order,
        s.session_gaps,
        s.fsck_files_salvaged,
        s.fsck_bytes_salvaged,
        s.fsck_bytes_quarantined,
    ]
}

fn stats_from_fields(v: [u64; 17]) -> IngestStats {
    IngestStats {
        files_read: v[0],
        files_unreadable: v[1],
        invalid_utf8_files: v[2],
        lines_read: v[3],
        records_kept: v[4],
        blank_lines: v[5],
        torn_final_lines: v[6],
        duplicate_lines: v[7],
        bad_kind: v[8],
        bad_field: v[9],
        bad_number: v[10],
        bad_node: v[11],
        out_of_order: v[12],
        session_gaps: v[13],
        fsck_files_salvaged: v[14],
        fsck_bytes_salvaged: v[15],
        fsck_bytes_quarantined: v[16],
    }
}

/// Serialize a snapshot to `path` atomically (`<path>.tmp` + fsync +
/// rename). Block encoding fans out over the worker pool; the byte
/// stream is identical at any thread count (chunks are concatenated in
/// order).
pub fn write_db(
    snapshot: &Snapshot,
    path: &Path,
    opts: &WriteOptions,
) -> Result<WriteSummary, DbError> {
    let rows_per_block = opts.rows_per_block.clamp(1, 1 << 20);
    let chunks: Vec<&[Fault]> = snapshot.faults.chunks(rows_per_block).collect();
    let encoded = uc_parallel::par_map(&chunks, |_, chunk| encode_block(chunk));

    let mut blocks = Vec::with_capacity(encoded.len());
    let mut offset = MAGIC.len() as u64;
    for (chunk, (payload, zone)) in chunks.iter().zip(&encoded) {
        blocks.push(BlockMeta {
            offset,
            len: payload.len() as u32,
            rows: chunk.len() as u32,
            crc: crc32(payload),
            zone: *zone,
        });
        offset += payload.len() as u64;
    }

    let footer = Footer {
        version: FORMAT_VERSION,
        rows_per_block: rows_per_block as u32,
        total_rows: snapshot.faults.len() as u64,
        blocks,
        provenance: Provenance {
            node_logs: snapshot.node_logs,
            raw_records: snapshot.raw_records,
            raw_errors: snapshot.raw_errors,
            stats: snapshot.stats,
            flood_nodes: snapshot.flood_nodes.clone(),
            day_volume: snapshot
                .day_volume
                .iter()
                .map(|(d, v)| (d, v.to_bits()))
                .collect(),
        },
    };
    let footer_bytes = encode_footer(&footer);
    let footer_off = offset;

    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| DbError::io(path, io::Error::other("path has no file name")))?;
    let dir = path.parent().unwrap_or(Path::new("."));
    fs::create_dir_all(dir).map_err(|e| DbError::io(dir, e))?;
    let tmp = dir.join(format!("{file_name}.tmp"));
    let write_all = || -> io::Result<u64> {
        let mut w = io::BufWriter::new(fs::File::create(&tmp)?);
        w.write_all(MAGIC)?;
        for (payload, _) in &encoded {
            w.write_all(payload)?;
        }
        w.write_all(&footer_bytes)?;
        w.write_all(&footer_off.to_le_bytes())?;
        w.write_all(&(footer_bytes.len() as u32).to_le_bytes())?;
        w.write_all(&crc32(&footer_bytes).to_le_bytes())?;
        w.flush()?;
        let f = w
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))?;
        f.sync_all()?;
        Ok(footer_off + footer_bytes.len() as u64 + TRAILER_LEN as u64)
    };
    let bytes = write_all().map_err(|e| DbError::io(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| DbError::io(path, e))?;
    Ok(WriteSummary {
        path: path.to_path_buf(),
        rows: footer.total_rows,
        blocks: footer.blocks.len(),
        bytes,
    })
}

// ---------------------------------------------------------------- decode

/// Bounds-checked little-endian cursor; every shortfall is a typed
/// footer-corruption error rather than a panic.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DbError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| DbError::BadFooter("footer shorter than its structure".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DbError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DbError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DbError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, DbError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Decode and validate a footer slice (CRC already checked by the
/// caller against the trailer).
pub fn decode_footer(bytes: &[u8], blocks_end: u64) -> Result<Footer, DbError> {
    let mut r = Reader::new(bytes);
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(DbError::BadVersion(version));
    }
    let rows_per_block = r.u32()?;
    let total_rows = r.u64()?;
    let block_count = r.u32()?;
    // An absurd count would make us allocate before the take() fails;
    // bound it by what the footer could possibly hold.
    if (block_count as usize).saturating_mul(58) > bytes.len() {
        return Err(DbError::BadFooter(format!(
            "block count {block_count} larger than the footer"
        )));
    }
    let mut blocks = Vec::with_capacity(block_count as usize);
    let mut expect_off = MAGIC.len() as u64;
    let mut rows_sum = 0u64;
    for i in 0..block_count {
        let b = BlockMeta {
            offset: r.u64()?,
            len: r.u32()?,
            rows: r.u32()?,
            crc: r.u32()?,
            zone: ZoneMap {
                min_time: r.i64()?,
                max_time: r.i64()?,
                min_node: r.u32()?,
                max_node: r.u32()?,
                min_vaddr: r.u64()?,
                max_vaddr: r.u64()?,
                class_map: r.u8()?,
                dir_map: r.u8()?,
            },
        };
        if b.offset != expect_off || b.rows == 0 {
            return Err(DbError::BadFooter(format!("block {i} index inconsistent")));
        }
        expect_off += b.len as u64;
        if expect_off > blocks_end {
            return Err(DbError::BlockCorrupt {
                index: i,
                damage: BlockDamage::OutOfBounds,
            });
        }
        rows_sum += b.rows as u64;
        blocks.push(b);
    }
    if expect_off != blocks_end {
        return Err(DbError::BadFooter(
            "block region does not meet the footer".into(),
        ));
    }
    if rows_sum != total_rows {
        return Err(DbError::BadFooter(format!(
            "row counts disagree: blocks hold {rows_sum}, footer claims {total_rows}"
        )));
    }
    let node_logs = r.u64()?;
    let raw_records = r.u64()?;
    let raw_errors = r.u64()?;
    let mut fields = [0u64; 17];
    for f in &mut fields {
        *f = r.u64()?;
    }
    let flood_count = r.u32()?;
    if (flood_count as usize).saturating_mul(4) > bytes.len() {
        return Err(DbError::BadFooter("flood list larger than footer".into()));
    }
    let mut flood_nodes = Vec::with_capacity(flood_count as usize);
    for _ in 0..flood_count {
        flood_nodes.push(NodeId(r.u32()?));
    }
    let day_count = r.u32()?;
    if (day_count as usize).saturating_mul(16) > bytes.len() {
        return Err(DbError::BadFooter("day volume larger than footer".into()));
    }
    let mut day_volume = Vec::with_capacity(day_count as usize);
    for _ in 0..day_count {
        let day = r.i64()?;
        let bits = r.u64()?;
        day_volume.push((day, bits));
    }
    if !r.done() {
        return Err(DbError::BadFooter("trailing bytes after footer".into()));
    }
    Ok(Footer {
        version,
        rows_per_block,
        total_rows,
        blocks,
        provenance: Provenance {
            node_logs,
            raw_records,
            raw_errors,
            stats: stats_from_fields(fields),
            flood_nodes,
            day_volume,
        },
    })
}

/// Decode one block payload back into faults. The caller has already
/// sliced `payload` per the footer; this verifies the CRC and the exact
/// column layout before trusting a byte.
pub fn decode_block(payload: &[u8], meta: &BlockMeta) -> Result<Vec<Fault>, BlockDamage> {
    if crc32(payload) != meta.crc {
        return Err(BlockDamage::ChecksumMismatch);
    }
    let n = meta.rows as usize;
    let bitmap_len = n.div_ceil(8);
    let fixed = n * FIXED_ROW_BYTES + bitmap_len;
    if payload.len() < fixed {
        return Err(BlockDamage::LayoutMismatch);
    }
    let bitmap = &payload[n * FIXED_ROW_BYTES..fixed];
    let present: usize = bitmap.iter().map(|b| b.count_ones() as usize).sum();
    if payload.len() != fixed + 4 * present {
        return Err(BlockDamage::LayoutMismatch);
    }

    let col = |start: usize, width: usize, i: usize| &payload[start + i * width..][..width];
    let times = 0;
    let nodes = times + n * 8;
    let vaddrs = nodes + n * 4;
    let expecteds = vaddrs + n * 8;
    let actuals = expecteds + n * 4;
    let raws = actuals + n * 4;

    let mut faults = Vec::with_capacity(n);
    let mut temp_at = fixed;
    for i in 0..n {
        let node = u32::from_le_bytes(col(nodes, 4, i).try_into().unwrap());
        if node >= TOTAL_NODES {
            return Err(BlockDamage::BadValue);
        }
        let temp = if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            let v = f32::from_le_bytes(payload[temp_at..temp_at + 4].try_into().unwrap());
            temp_at += 4;
            Some(v)
        } else {
            None
        };
        faults.push(Fault {
            node: NodeId(node),
            time: SimTime::from_secs(i64::from_le_bytes(col(times, 8, i).try_into().unwrap())),
            vaddr: u64::from_le_bytes(col(vaddrs, 8, i).try_into().unwrap()),
            expected: u32::from_le_bytes(col(expecteds, 4, i).try_into().unwrap()),
            actual: u32::from_le_bytes(col(actuals, 4, i).try_into().unwrap()),
            temp,
            raw_logs: u64::from_le_bytes(col(raws, 8, i).try_into().unwrap()),
        });
    }
    Ok(faults)
}

/// Rebuild the [`Snapshot`] provenance side (everything but the faults).
pub fn snapshot_from_parts(provenance: &Provenance, faults: Vec<Fault>) -> Snapshot {
    Snapshot {
        faults,
        flood_nodes: provenance.flood_nodes.clone(),
        stats: provenance.stats,
        node_logs: provenance.node_logs,
        raw_records: provenance.raw_records,
        raw_errors: provenance.raw_errors,
        day_volume: DayVolume::from_pairs(
            provenance
                .day_volume
                .iter()
                .map(|&(d, bits)| (d, f64::from_bits(bits))),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(t: i64, node: u32, vaddr: u64, actual: u32, temp: Option<f32>) -> Fault {
        Fault {
            node: NodeId(node),
            time: SimTime::from_secs(t),
            vaddr,
            expected: 0xFFFF_FFFF,
            actual,
            temp,
            raw_logs: 3,
        }
    }

    #[test]
    fn block_roundtrip_with_and_without_temps() {
        let faults = vec![
            fault(10, 1, 0x100, 0xFFFF_FFFE, Some(35.5)),
            fault(20, 2, 0x200, 0x7FFF_FFFF, None),
            fault(30, 900, 0x300, 0x0000_0000, Some(-3.25)),
        ];
        let (payload, zone) = encode_block(&faults);
        let meta = BlockMeta {
            offset: 7,
            len: payload.len() as u32,
            rows: 3,
            crc: crc32(&payload),
            zone,
        };
        let back = decode_block(&payload, &meta).unwrap();
        assert_eq!(back, faults);
        assert_eq!(zone.min_time, 10);
        assert_eq!(zone.max_time, 30);
        assert_eq!(zone.min_node, 1);
        assert_eq!(zone.max_node, 900);
        assert_eq!(zone.min_vaddr, 0x100);
        assert_eq!(zone.max_vaddr, 0x300);
        // 1-bit, 1-bit, 32-bit corruptions.
        assert_eq!(
            zone.class_map,
            (1 << BitClass::One as u8) | (1 << BitClass::SixPlus as u8)
        );
    }

    #[test]
    fn payload_bit_flip_is_checksum_mismatch() {
        let faults = vec![fault(10, 1, 0x100, 0xFFFF_FFFE, None)];
        let (mut payload, zone) = encode_block(&faults);
        let meta = BlockMeta {
            offset: 7,
            len: payload.len() as u32,
            rows: 1,
            crc: crc32(&payload),
            zone,
        };
        payload[5] ^= 0x10;
        assert_eq!(
            decode_block(&payload, &meta),
            Err(BlockDamage::ChecksumMismatch)
        );
    }
}
