//! Generation catalog and the live, streaming-ingest database.
//!
//! A *live directory* holds three kinds of state:
//!
//! ```text
//! wal-000001.dlog        sealed WAL segments   (the database of record)
//! wal-000002.dlog.tmp    active WAL segment    (flushed prefix durable)
//! gen-000001.ucfdb       sealed generations    (immutable query indexes)
//! CATALOG                which generation is current, with provenance
//! ```
//!
//! The equivalence contract (ISSUE: "a query over a live database must be
//! byte-identical to the same query over a freshly batch-built db of the
//! same records") is earned structurally, not by re-implementing ingest:
//! the live path accumulates each node's raw record lines verbatim and, at
//! every seal, runs them through the *identical* batch pipeline —
//! `recover_text` per node (with the same `files_read`/node-fallback
//! fixups `read_node_log_recovering` applies), stats merged in node order,
//! `ClusterLog::new` → `Snapshot::from_cluster` → `write_db`. Same bytes
//! in, same code, same bytes out.
//!
//! Extraction is a *global* function of the whole corpus (merge windows
//! straddle batch boundaries; the flood filter is a share of the total),
//! so generations cannot be built incrementally from deltas and a sealed
//! generation cannot serve as a re-ingest source. The WAL is therefore
//! retained forever and every seal rebuilds from the full record set; the
//! generation file is a disposable index over the WAL, which is exactly
//! what makes crash recovery simple — when in doubt, reseal.
//!
//! Crash recovery (`LiveDb::open`): replay the WAL (flushed prefixes of
//! every segment, in index order), rebuilding per-node cursors and a
//! running CRC over the accepted record payloads. The catalog's current
//! generation is served only if its recorded `(records, crc)` pair matches
//! the replayed state *and* the file opens clean — any torn seal, stale
//! catalog, or post-seal ingest makes the pair differ, and the generation
//! is rebuilt from the WAL instead. `fsck_live_dir` extends `uc fsck` to
//! these directories under the same conservation law.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use uc_cluster::NodeId;
use uc_faultlog::durable::crc::{crc32, Crc32};
use uc_faultlog::durable::{fsck_dir, FsckReport};
use uc_faultlog::ingest::recover_text;
use uc_faultlog::{ClusterLog, IngestStats, NodeLog};

use crate::db::{DbHandle, FaultDb};
use crate::error::DbError;
use crate::format::{write_db, WriteOptions};
use crate::lock::LiveLock;
use crate::snapshot::Snapshot;
use crate::wal::{encode_wal_payload, Wal, WalRecord, WalRecovery};

/// Catalog file name inside a live directory.
pub const CATALOG_NAME: &str = "CATALOG";
/// First line of a catalog file.
pub const CATALOG_MAGIC: &str = "UCCAT1";

/// Sealed generation file name for index `n`.
pub fn gen_file_name(index: u64) -> String {
    format!("gen-{index:06}.ucfdb")
}

/// Parse the index out of `gen-NNNNNN.ucfdb` (or its `.tmp`).
pub fn gen_index_of_name(name: &str) -> Option<u64> {
    let stem = name
        .strip_suffix(".ucfdb.tmp")
        .or_else(|| name.strip_suffix(".ucfdb"))?;
    stem.strip_prefix("gen-")?.parse().ok()
}

/// One sealed generation the catalog knows about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenEntry {
    pub index: u64,
    pub file: String,
    /// Accepted records the generation was built from.
    pub records: u64,
    /// Running CRC-32 over the canonical WAL payloads of those records,
    /// in acceptance order — the fingerprint recovery must reproduce for
    /// the generation to be served without a rebuild.
    pub stream_crc: u32,
}

/// The parsed `CATALOG` file: generation history plus the current pick.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Catalog {
    pub generations: Vec<GenEntry>,
    pub current: Option<u64>,
    /// Monotonic fencing epoch. Bumped by promotion (failover); a
    /// replication peer announcing a lower epoch is from a superseded
    /// timeline and gets a typed rejection instead of forking history.
    /// Rendered only when non-zero, so pre-replication catalogs stay
    /// byte-stable.
    pub epoch: u64,
}

impl Catalog {
    pub fn entry(&self, index: u64) -> Option<&GenEntry> {
        self.generations.iter().find(|g| g.index == index)
    }

    pub fn max_index(&self) -> u64 {
        self.generations.iter().map(|g| g.index).max().unwrap_or(0)
    }

    /// Render the catalog in its canonical text form, trailing self-CRC
    /// included (over every preceding byte, so any truncation or edit is
    /// detected at load).
    pub fn render(&self) -> String {
        let mut body = String::new();
        body.push_str(CATALOG_MAGIC);
        body.push('\n');
        if self.epoch > 0 {
            body.push_str(&format!("epoch {}\n", self.epoch));
        }
        for g in &self.generations {
            body.push_str(&format!(
                "gen {} {} {} {:08x}\n",
                g.index, g.file, g.records, g.stream_crc
            ));
        }
        if let Some(cur) = self.current {
            body.push_str(&format!("current {cur}\n"));
        }
        let digest = crc32(body.as_bytes());
        body.push_str(&format!("crc {digest:08x}\n"));
        body
    }

    /// Parse catalog text. `None` for anything the renderer could not
    /// have produced — bad magic, bad CRC, malformed lines. Callers
    /// treat a damaged catalog as absent (the WAL can always rebuild).
    pub fn parse(text: &str) -> Option<Catalog> {
        let body_end = text.rfind("crc ")?;
        let digest_line = text[body_end..].strip_prefix("crc ")?.trim();
        let digest = u32::from_str_radix(digest_line, 16).ok()?;
        let body = &text[..body_end];
        if crc32(body.as_bytes()) != digest {
            return None;
        }
        let mut lines = body.lines();
        if lines.next()? != CATALOG_MAGIC {
            return None;
        }
        let mut cat = Catalog::default();
        for line in lines {
            if let Some(rest) = line.strip_prefix("gen ") {
                let mut it = rest.split(' ');
                let index: u64 = it.next()?.parse().ok()?;
                let file = it.next()?.to_string();
                let records: u64 = it.next()?.parse().ok()?;
                let stream_crc = u32::from_str_radix(it.next()?, 16).ok()?;
                if it.next().is_some() {
                    return None;
                }
                cat.generations.push(GenEntry {
                    index,
                    file,
                    records,
                    stream_crc,
                });
            } else if let Some(rest) = line.strip_prefix("current ") {
                cat.current = Some(rest.parse().ok()?);
            } else if let Some(rest) = line.strip_prefix("epoch ") {
                cat.epoch = rest.parse().ok()?;
            } else {
                return None;
            }
        }
        // `current` must name a listed generation.
        if let Some(cur) = cat.current {
            cat.entry(cur)?;
        }
        Some(cat)
    }

    /// Load the catalog from `dir`. Missing or damaged → `None` (the
    /// caller reseals from the WAL; `fsck_live_dir` is what *reports*
    /// damage).
    pub fn load(dir: &Path) -> Option<Catalog> {
        let text = std::fs::read_to_string(dir.join(CATALOG_NAME)).ok()?;
        Catalog::parse(&text)
    }

    /// Write atomically: tmp + fsync + rename + dir fsync, the same
    /// publish discipline as every sealed file in the repo.
    pub fn save(&self, dir: &Path) -> Result<(), DbError> {
        let tmp = dir.join(format!("{CATALOG_NAME}.tmp"));
        let finals = dir.join(CATALOG_NAME);
        let text = self.render();
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp).map_err(|e| DbError::io(&tmp, e))?;
            f.write_all(text.as_bytes())
                .map_err(|e| DbError::io(&tmp, e))?;
            f.sync_all().map_err(|e| DbError::io(&tmp, e))?;
        }
        std::fs::rename(&tmp, &finals).map_err(|e| DbError::io(&finals, e))?;
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

/// Verdict on one pushed record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Next in sequence: buffered in the WAL (durable after `flush`).
    Accepted,
    /// Sequence number below the cursor: a replay of something already
    /// accepted. Ignored — this is what makes reconnect retries safe.
    Duplicate,
    /// Sequence number ahead of the cursor: the client skipped records
    /// the server never saw. Rejected; accepting would silently lose
    /// the gap.
    Gap { expected: u64 },
}

/// One node's live stream state.
pub(crate) struct NodeStream {
    /// The raw lines, newline-terminated — byte-identical to the text
    /// log file a batch ingest would read for this node.
    text: String,
    /// Next sequence number expected from the client.
    next_seq: u64,
}

/// A point-in-time summary of the live state, for `STATS`-style reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LiveStatus {
    /// Accepted records across all nodes.
    pub records: u64,
    /// Nodes with at least one accepted record.
    pub nodes: u64,
    /// Index of the generation currently served.
    pub generation: u64,
    /// Records the served generation was built from (lags `records`
    /// until the next seal).
    pub gen_records: u64,
    /// Running CRC over accepted payloads.
    pub stream_crc: u32,
    /// Duplicate records ignored (replays) since open, including replay
    /// duplicates observed during WAL recovery.
    pub duplicates: u64,
    /// Gap rejections since open, including out-of-sequence records
    /// dropped during WAL recovery (possible only via mid-file damage).
    pub gaps: u64,
    /// Fencing epoch of this node's timeline (0 until a promotion).
    pub epoch: u64,
}

/// Deterministic replay of WAL records through the per-node sequence
/// discipline — the one shared definition of "the accepted record
/// prefix" used by recovery ([`LiveDb::open`]), the replication shipper
/// (which must ship exactly what a replica's replay would accept), and
/// the scrubber (which rebuilds a generation from the prefix its catalog
/// entry names).
pub(crate) struct ReplayState {
    pub(crate) streams: BTreeMap<u32, NodeStream>,
    pub(crate) records: u64,
    pub(crate) crc: Crc32,
    pub(crate) duplicates: u64,
    pub(crate) gaps: u64,
}

impl ReplayState {
    pub(crate) fn new() -> ReplayState {
        ReplayState {
            streams: BTreeMap::new(),
            records: 0,
            crc: Crc32::new(),
            duplicates: 0,
            gaps: 0,
        }
    }

    /// Feed one recovered record through the sequence discipline.
    /// Returns `true` when it advanced the accepted prefix.
    pub(crate) fn apply(&mut self, rec: &WalRecord) -> bool {
        let stream = self
            .streams
            .entry(rec.node.0)
            .or_insert_with(|| NodeStream {
                text: String::new(),
                next_seq: 0,
            });
        if rec.seq == stream.next_seq {
            self.crc
                .update(&encode_wal_payload(rec.node, rec.seq, &rec.line));
            stream.text.push_str(&rec.line);
            stream.text.push('\n');
            stream.next_seq += 1;
            self.records += 1;
            true
        } else if rec.seq < stream.next_seq {
            // A crash between WAL flush and client ACK makes the client
            // resend; both copies are in the WAL, one wins.
            self.duplicates += 1;
            false
        } else {
            // Possible only through mid-file damage (a checksummed frame
            // lost between two surviving ones). Torn *tails* never gap —
            // they lose a suffix of acceptance order.
            self.gaps += 1;
            false
        }
    }

    /// Replay records in order, stopping once `cap` accepted records
    /// have been taken (`None` = all of them).
    pub(crate) fn replay(records: &[WalRecord], cap: Option<u64>) -> ReplayState {
        let mut state = ReplayState::new();
        for rec in records {
            if cap.is_some_and(|c| state.records >= c) {
                break;
            }
            state.apply(rec);
        }
        state
    }

    /// The batch-pipeline snapshot of the accepted prefix.
    pub(crate) fn snapshot(&self) -> Snapshot {
        build_snapshot(&self.streams)
    }
}

struct LiveInner {
    wal: Wal,
    streams: BTreeMap<u32, NodeStream>,
    records: u64,
    crc: Crc32,
    catalog: Catalog,
    current_gen: u64,
    gen_records: u64,
    duplicates: u64,
    gaps: u64,
}

/// A live, streaming-ingest database: crash-consistent WAL in front,
/// immutable sealed generations behind, snapshot-isolated queries via
/// [`DbHandle`] throughout. Holds the directory's PID lock for its
/// whole lifetime — a second opener (another `uc serve`, a concurrent
/// `uc fsck`) fails fast with [`DbError::Locked`] instead of racing.
pub struct LiveDb {
    dir: PathBuf,
    inner: parking_lot::Mutex<LiveInner>,
    handle: DbHandle,
    _lock: LiveLock,
}

/// What [`LiveDb::open`] found and did.
#[derive(Clone, Debug)]
pub struct OpenReport {
    /// Raw WAL scan results.
    pub wal: WalRecovery,
    /// Records accepted during replay.
    pub replayed: u64,
    /// Whether the catalog's current generation matched the replayed
    /// state and was served as-is (`false` ⇒ a fresh seal was needed).
    pub served_existing: bool,
    /// Generation index now being served.
    pub generation: u64,
}

impl LiveDb {
    /// Open (or create) a live directory: replay the WAL, then either
    /// adopt the catalog's current generation (if its provenance matches
    /// the replayed state exactly) or seal a fresh one from the WAL.
    pub fn open(dir: &Path) -> Result<(LiveDb, OpenReport), DbError> {
        std::fs::create_dir_all(dir).map_err(|e| DbError::io(dir, e))?;
        let lock = LiveLock::acquire(dir)?;
        let (wal, recovery) = Wal::open(dir)?;
        let replay = ReplayState::replay(&recovery.records, None);
        let records = replay.records;

        let catalog = Catalog::load(dir).unwrap_or_default();
        let mut inner = LiveInner {
            wal,
            streams: replay.streams,
            records,
            crc: replay.crc,
            catalog,
            current_gen: 0,
            gen_records: 0,
            duplicates: replay.duplicates,
            gaps: replay.gaps,
        };

        // Serve the cataloged generation only on an exact provenance
        // match; anything else (post-seal ingest, torn seal, stale or
        // damaged catalog, corrupt file) rebuilds from the WAL.
        let mut served_existing = false;
        let stream_crc = inner.crc.finish();
        let adopt = inner.catalog.current.and_then(|cur| {
            let entry = inner.catalog.entry(cur)?.clone();
            if entry.records != inner.records || entry.stream_crc != stream_crc {
                return None;
            }
            let db = FaultDb::open(&dir.join(&entry.file)).ok()?;
            db.verify_deep().ok()?;
            Some((entry, db))
        });
        let db = match adopt {
            Some((entry, db)) => {
                inner.current_gen = entry.index;
                inner.gen_records = entry.records;
                served_existing = true;
                Arc::new(db)
            }
            None => {
                let next = next_gen_index(dir, &inner.catalog)?;
                // The WAL segment just opened is empty; sealing without
                // rotation keeps recovery from leaving a trail of empty
                // sealed segments behind every restart.
                Arc::new(seal_generation(dir, &mut inner, next, false)?)
            }
        };
        let handle = DbHandle::new(db);
        let report = OpenReport {
            wal: recovery,
            replayed: records,
            served_existing,
            generation: inner.current_gen,
        };
        Ok((
            LiveDb {
                dir: dir.to_path_buf(),
                inner: parking_lot::Mutex::new(inner),
                handle,
                _lock: lock,
            },
            report,
        ))
    }

    /// The swappable handle the query server answers from.
    pub fn handle(&self) -> DbHandle {
        self.handle.clone()
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Judge one pushed record against the node's cursor and, if it is
    /// the expected next record, buffer it in the WAL. Not durable until
    /// [`LiveDb::flush`] — callers must not acknowledge before that.
    pub fn ingest(&self, node: NodeId, seq: u64, line: &str) -> Result<IngestOutcome, DbError> {
        if line.contains('\n') || line.contains('\r') {
            // One record ⇔ one log line; an embedded newline would break
            // the batch-equivalence bijection.
            return Err(DbError::Query("record line contains a line break".into()));
        }
        let mut inner = self.inner.lock();
        let stream = inner.streams.entry(node.0).or_insert_with(|| NodeStream {
            text: String::new(),
            next_seq: 0,
        });
        if seq < stream.next_seq {
            inner.duplicates += 1;
            return Ok(IngestOutcome::Duplicate);
        }
        if seq > stream.next_seq {
            let expected = stream.next_seq;
            inner.gaps += 1;
            return Ok(IngestOutcome::Gap { expected });
        }
        stream.text.push_str(line);
        stream.text.push('\n');
        stream.next_seq += 1;
        let payload = inner.wal.append(node, seq, line)?;
        inner.crc.update(&payload);
        inner.records += 1;
        Ok(IngestOutcome::Accepted)
    }

    /// Next sequence number expected from `node` — what a reconnecting
    /// client must resume from.
    pub fn next_seq(&self, node: NodeId) -> u64 {
        self.inner
            .lock()
            .streams
            .get(&node.0)
            .map(|s| s.next_seq)
            .unwrap_or(0)
    }

    /// Make everything accepted so far durable. The ack boundary.
    pub fn flush(&self) -> Result<(), DbError> {
        self.inner.lock().wal.flush()
    }

    /// Rebuild the generation from the full record set, publish it to
    /// queries, persist the catalog, and rotate the WAL. Queries in
    /// flight keep their generation (snapshot isolation); new ones see
    /// the seal.
    pub fn seal(&self) -> Result<LiveStatus, DbError> {
        let mut inner = self.inner.lock();
        inner.wal.flush()?;
        // Nothing accepted since the last seal ⇒ the current generation
        // already covers the full record set; resealing would only grow
        // the directory with identical files.
        if inner
            .catalog
            .entry(inner.current_gen)
            .is_some_and(|e| e.records == inner.records && e.stream_crc == inner.crc.finish())
        {
            return Ok(status_of(&inner));
        }
        let next = inner.current_gen + 1;
        let db = seal_generation(&self.dir, &mut inner, next, true)?;
        self.handle.swap(Arc::new(db));
        Ok(status_of(&inner))
    }

    pub fn status(&self) -> LiveStatus {
        status_of(&self.inner.lock())
    }

    /// Fencing epoch of this node's timeline.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().catalog.epoch
    }

    /// Bump the fencing epoch and persist it — the promotion step of a
    /// failover. After this returns, any peer still announcing the old
    /// epoch is fenced off. Returns the new epoch.
    pub fn promote(&self) -> Result<u64, DbError> {
        let mut inner = self.inner.lock();
        inner.catalog.epoch += 1;
        inner.catalog.save(&self.dir)?;
        Ok(inner.catalog.epoch)
    }

    /// Adopt a peer's (higher) epoch — a replica following a promoted
    /// primary records the primary's timeline. Lower or equal epochs are
    /// a no-op; the epoch is monotonic.
    pub fn adopt_epoch(&self, epoch: u64) -> Result<(), DbError> {
        let mut inner = self.inner.lock();
        if epoch > inner.catalog.epoch {
            inner.catalog.epoch = epoch;
            inner.catalog.save(&self.dir)?;
        }
        Ok(())
    }

    /// A point-in-time copy of the catalog, for shipping seal markers
    /// and for provenance checks.
    pub fn catalog_snapshot(&self) -> Catalog {
        self.inner.lock().catalog.clone()
    }

    /// Seal generation `index` exactly as the primary did: only legal
    /// when this node's accepted prefix is exactly `(records, crc)` —
    /// i.e. the replica stands at the same point of the same history —
    /// so the sealed file comes out byte-identical to the primary's.
    /// Anything else is a typed divergence, never a silent fork.
    pub fn seal_replica(&self, index: u64, records: u64, stream_crc: u32) -> Result<(), DbError> {
        let mut inner = self.inner.lock();
        inner.wal.flush()?;
        if inner.records != records || inner.crc.finish() != stream_crc {
            return Err(DbError::Diverged(format!(
                "seal marker for gen {index} names {records} records crc {stream_crc:08x}, \
                 local state is {} records crc {:08x}",
                inner.records,
                inner.crc.finish()
            )));
        }
        if inner.current_gen == index
            && inner
                .catalog
                .entry(index)
                .is_some_and(|e| e.records == records && e.stream_crc == stream_crc)
        {
            // Marker replayed after a restart; the seal already happened.
            return Ok(());
        }
        let db = seal_generation(&self.dir, &mut inner, index, true)?;
        self.handle.swap(Arc::new(db));
        Ok(())
    }
}

fn status_of(inner: &LiveInner) -> LiveStatus {
    LiveStatus {
        records: inner.records,
        nodes: inner.streams.values().filter(|s| s.next_seq > 0).count() as u64,
        generation: inner.current_gen,
        gen_records: inner.gen_records,
        stream_crc: inner.crc.finish(),
        duplicates: inner.duplicates,
        gaps: inner.gaps,
        epoch: inner.catalog.epoch,
    }
}

/// First unused generation index: above everything the catalog lists
/// *and* everything on disk (a crash can leave files the catalog never
/// heard of; never overwrite potential evidence).
fn next_gen_index(dir: &Path, catalog: &Catalog) -> Result<u64, DbError> {
    let mut max = catalog.max_index();
    let rd = std::fs::read_dir(dir).map_err(|e| DbError::io(dir, e))?;
    for entry in rd.filter_map(|e| e.ok()) {
        if let Some(idx) = entry.file_name().to_str().and_then(gen_index_of_name) {
            max = max.max(idx);
        }
    }
    Ok(max + 1)
}

/// Build the snapshot exactly as batch ingest would, write the
/// generation file (atomically, via `write_db`'s tmp + rename), update
/// and persist the catalog, and optionally rotate the WAL.
fn seal_generation(
    dir: &Path,
    inner: &mut LiveInner,
    index: u64,
    rotate_wal: bool,
) -> Result<FaultDb, DbError> {
    let snapshot = build_snapshot(&inner.streams);
    let file = gen_file_name(index);
    let path = dir.join(&file);
    write_db(&snapshot, &path, &WriteOptions::default())?;
    let db = FaultDb::open(&path)?;

    inner.catalog.generations.retain(|g| g.index != index);
    inner.catalog.generations.push(GenEntry {
        index,
        file,
        records: inner.records,
        stream_crc: inner.crc.finish(),
    });
    inner.catalog.generations.sort_by_key(|g| g.index);
    inner.catalog.current = Some(index);
    inner.catalog.save(dir)?;
    inner.current_gen = index;
    inner.gen_records = inner.records;
    if rotate_wal {
        inner.wal.rotate()?;
    }
    Ok(db)
}

/// The batch pipeline, fed from in-memory streams instead of files.
/// Mirrors `read_node_log_recovering` + `read_cluster_log_recovering`
/// line by line: per-node `recover_text`, `files_read = 1`, node id
/// fallback, stats merged in node order, logs sorted by node (free,
/// since `BTreeMap<u32, _>` iterates sorted). No `.fsck.report` folding
/// — the oracle is a *fresh* text directory, which has none.
fn build_snapshot(streams: &BTreeMap<u32, NodeStream>) -> Snapshot {
    let mut stats = IngestStats::default();
    let mut logs: Vec<NodeLog> = Vec::new();
    for (&node, stream) in streams {
        if stream.next_seq == 0 {
            continue;
        }
        let mut rec = recover_text(&stream.text);
        rec.stats.files_read = 1;
        if rec.log.node.is_none() {
            rec.log.node = Some(NodeId(node));
        }
        stats.merge(&rec.stats);
        logs.push(rec.log);
    }
    let cluster = ClusterLog::new(logs);
    Snapshot::from_cluster(&cluster, stats)
}

// ---------------------------------------------------------------- fsck

/// `uc fsck` extended to a live directory: the durable pass (WAL salvage,
/// orphan-tmp promotion, manifest rebuild) plus a generation pass under
/// the same conservation law — every generation/catalog byte examined is
/// either still in the directory or in `.lost+found`.
#[derive(Clone, Debug, Default)]
pub struct LiveFsckReport {
    /// The standard durable-directory pass over the WAL segments.
    pub durable: FsckReport,
    /// Generation files examined (sealed and `.tmp`).
    pub gens_checked: u64,
    /// Complete-but-unrenamed `gen-*.ucfdb.tmp` promoted to sealed names
    /// (the crash hit between `write_db`'s fsync and its rename).
    pub gens_promoted: u64,
    /// Generation files (either form) that failed deep validation and
    /// were quarantined whole.
    pub gens_quarantined: u64,
    /// Catalog repairs: current pointer rolled back to the newest
    /// surviving generation, or dead entries dropped.
    pub catalog_rollbacks: u64,
    /// The catalog file itself was unparseable and was quarantined.
    pub catalog_quarantined: bool,
    /// Bytes of generation/catalog files examined.
    pub gen_bytes_in: u64,
    /// Bytes of generation/catalog files kept in place.
    pub gen_bytes_kept: u64,
    /// Bytes of generation/catalog files moved to `.lost+found`.
    pub gen_bytes_quarantined: u64,
}

impl LiveFsckReport {
    /// Conservation across both passes.
    pub fn is_conserved(&self) -> bool {
        self.durable.is_conserved()
            && self.gen_bytes_in == self.gen_bytes_kept + self.gen_bytes_quarantined
    }

    pub fn render(&self) -> String {
        format!(
            "live fsck: wal[{} checked, {} clean, {} salvaged, {} quarantined, \
             {} promoted] gens[{} checked, {} promoted, {} quarantined] \
             catalog[{} rollbacks{}] bytes[{} in = {} kept + {} quarantined] \
             conserved={}",
            self.durable.files_checked,
            self.durable.files_clean,
            self.durable.files_salvaged,
            self.durable.files_quarantined,
            self.durable.tmp_promoted,
            self.gens_checked,
            self.gens_promoted,
            self.gens_quarantined,
            self.catalog_rollbacks,
            if self.catalog_quarantined {
                ", catalog quarantined"
            } else {
                ""
            },
            self.durable.bytes_in + self.gen_bytes_in,
            self.durable.bytes_salvaged + self.gen_bytes_kept,
            self.durable.bytes_quarantined + self.gen_bytes_quarantined,
            self.is_conserved(),
        )
    }
}

/// Does `dir` look like a live streaming directory (vs. a plain durable
/// log directory)? Any WAL segment, generation file, or catalog counts.
pub fn is_live_dir(dir: &Path) -> bool {
    if dir.join(CATALOG_NAME).exists() {
        return true;
    }
    let Ok(rd) = std::fs::read_dir(dir) else {
        return false;
    };
    rd.filter_map(|e| e.ok()).any(|e| {
        e.file_name()
            .to_str()
            .is_some_and(|n| crate::wal::is_wal_name(n) || gen_index_of_name(n).is_some())
    })
}

pub(crate) fn quarantine(dir: &Path, path: &Path, report_bytes: &mut u64) -> Result<(), DbError> {
    let lost = dir.join(".lost+found");
    std::fs::create_dir_all(&lost).map_err(|e| DbError::io(&lost, e))?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("unnamed")
        .to_string();
    let mut dest = lost.join(&name);
    let mut n = 1;
    while dest.exists() {
        dest = lost.join(format!("{name}.{n}"));
        n += 1;
    }
    let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    std::fs::rename(path, &dest).map_err(|e| DbError::io(path, e))?;
    *report_bytes += len;
    Ok(())
}

/// Deep-validate one generation file: footer *and* every block CRC.
pub(crate) fn gen_is_valid(path: &Path) -> bool {
    FaultDb::open(path).is_ok_and(|db| db.verify_deep().is_ok())
}

/// Repair a live directory after a crash at any point. Idempotent; a
/// second run finds nothing to do. Takes the directory's PID lock for
/// the duration — repairing files under a live server would race every
/// invariant this function restores.
pub fn fsck_live_dir(dir: &Path) -> Result<LiveFsckReport, DbError> {
    let _lock = if dir.is_dir() {
        Some(LiveLock::acquire(dir)?)
    } else {
        None // let the durable pass report the missing directory
    };
    let mut report = LiveFsckReport {
        // Pass 1 — the WAL is a plain durable directory to `fsck_dir`:
        // salvage torn segments, promote orphan tmps, rebuild MANIFEST.
        durable: fsck_dir(dir)?,
        ..LiveFsckReport::default()
    };

    // Pass 2 — generation files. Collect first: renames mutate the dir.
    let mut tmps: Vec<PathBuf> = Vec::new();
    let mut sealed: Vec<PathBuf> = Vec::new();
    let rd = std::fs::read_dir(dir).map_err(|e| DbError::io(dir, e))?;
    for entry in rd.filter_map(|e| e.ok()) {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if gen_index_of_name(name).is_none() {
            continue;
        }
        if name.ends_with(".tmp") {
            tmps.push(path);
        } else {
            sealed.push(path);
        }
    }
    for path in &tmps {
        report.gens_checked += 1;
        let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        report.gen_bytes_in += len;
        let sealed_sibling = path.with_extension(""); // strips ".tmp"
        if sealed_sibling.exists() {
            // The rename happened and *then* a new tmp appeared — or the
            // crash raced the rename. Either way the sealed copy is the
            // published one; the tmp is a duplicate.
            quarantine(dir, path, &mut report.gen_bytes_quarantined)?;
            report.gens_quarantined += 1;
        } else if gen_is_valid(path) {
            // Complete but unrenamed: `write_db` crashed between fsync
            // and rename. Finish its job.
            std::fs::rename(path, &sealed_sibling).map_err(|e| DbError::io(path, e))?;
            report.gens_promoted += 1;
            report.gen_bytes_kept += len;
            sealed.push(sealed_sibling);
        } else {
            quarantine(dir, path, &mut report.gen_bytes_quarantined)?;
            report.gens_quarantined += 1;
        }
    }
    let mut surviving: Vec<String> = Vec::new();
    for path in &sealed {
        report.gens_checked += 1;
        let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        report.gen_bytes_in += len;
        if gen_is_valid(path) {
            report.gen_bytes_kept += len;
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                surviving.push(name.to_string());
            }
        } else {
            quarantine(dir, path, &mut report.gen_bytes_quarantined)?;
            report.gens_quarantined += 1;
        }
    }

    // Pass 3 — the catalog must only reference generations that exist.
    let cat_path = dir.join(CATALOG_NAME);
    if cat_path.exists() {
        let len = std::fs::metadata(&cat_path).map(|m| m.len()).unwrap_or(0);
        report.gen_bytes_in += len;
        let parsed = std::fs::read_to_string(&cat_path)
            .ok()
            .and_then(|t| Catalog::parse(&t));
        match parsed {
            None => {
                quarantine(dir, &cat_path, &mut report.gen_bytes_quarantined)?;
                report.catalog_quarantined = true;
            }
            Some(mut cat) => {
                let before = cat.clone();
                cat.generations
                    .retain(|g| surviving.iter().any(|s| s == &g.file));
                let listed_current = cat.current;
                if listed_current.is_some_and(|c| cat.entry(c).is_none()) {
                    // Roll back to the newest generation that survived.
                    cat.current = cat.generations.iter().map(|g| g.index).max();
                }
                if cat == before {
                    report.gen_bytes_kept += len;
                } else {
                    report.catalog_rollbacks += 1;
                    if cat.generations.is_empty() {
                        // Nothing left to point at; remove rather than
                        // publish an empty lie. Removal is accounted as
                        // quarantine of the old bytes.
                        quarantine(dir, &cat_path, &mut report.gen_bytes_quarantined)?;
                    } else {
                        cat.save(dir)?;
                        report.gen_bytes_kept += len;
                    }
                }
            }
        }
    }
    // A stale `CATALOG.tmp` from a crashed save: the sealed catalog (or
    // its absence) is authoritative; the tmp is unpublished work.
    let cat_tmp = dir.join(format!("{CATALOG_NAME}.tmp"));
    if cat_tmp.exists() {
        let len = std::fs::metadata(&cat_tmp).map(|m| m.len()).unwrap_or(0);
        report.gen_bytes_in += len;
        quarantine(dir, &cat_tmp, &mut report.gen_bytes_quarantined)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uc-cat-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn n(name: &str) -> NodeId {
        NodeId::from_name(name).unwrap()
    }

    fn error_line(node: &str, t: i64, actual: &str) -> String {
        format!(
            "ERROR t={t} node={node} vaddr=0x00000400 page=0x000000 \
             expected=0xffffffff actual={actual} temp=33.0"
        )
    }

    #[test]
    fn catalog_roundtrips_and_rejects_tampering() {
        let cat = Catalog {
            generations: vec![
                GenEntry {
                    index: 1,
                    file: gen_file_name(1),
                    records: 10,
                    stream_crc: 0xDEAD_BEEF,
                },
                GenEntry {
                    index: 2,
                    file: gen_file_name(2),
                    records: 25,
                    stream_crc: 0x0BAD_F00D,
                },
            ],
            current: Some(2),
            epoch: 3,
        };
        let text = cat.render();
        assert_eq!(Catalog::parse(&text).unwrap(), cat);
        // Flip one byte anywhere → parse refuses.
        let mut bad = text.clone().into_bytes();
        bad[8] ^= 0x20;
        assert!(Catalog::parse(&String::from_utf8(bad).unwrap()).is_none());
        // Truncation → refuses.
        assert!(Catalog::parse(&text[..text.len() - 2]).is_none());
        // current pointing at an unlisted gen → refuses.
        let orphan = Catalog {
            generations: vec![],
            current: Some(9),
            epoch: 0,
        };
        assert!(Catalog::parse(&orphan.render()).is_none());
    }

    #[test]
    fn live_db_open_on_empty_dir_serves_empty_generation() {
        let dir = tmpdir("empty");
        let (live, report) = LiveDb::open(&dir).unwrap();
        assert!(!report.served_existing);
        assert_eq!(report.generation, 1);
        let db = live.handle().current();
        assert_eq!(db.rows(), 0);
        let r = db
            .query("count", &crate::db::QueryOptions::default())
            .unwrap();
        assert_eq!(r.lines, vec!["0".to_string()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_discipline_dup_and_gap() {
        let dir = tmpdir("seq");
        let (live, _) = LiveDb::open(&dir).unwrap();
        let node = n("01-01");
        assert_eq!(
            live.ingest(node, 0, &error_line("01-01", 60, "0xfffffffe"))
                .unwrap(),
            IngestOutcome::Accepted
        );
        assert_eq!(
            live.ingest(node, 0, &error_line("01-01", 60, "0xfffffffe"))
                .unwrap(),
            IngestOutcome::Duplicate
        );
        assert_eq!(
            live.ingest(node, 5, "whatever").unwrap(),
            IngestOutcome::Gap { expected: 1 }
        );
        assert_eq!(live.next_seq(node), 1);
        assert!(live.ingest(node, 1, "two\nlines").is_err());
        let s = live.status();
        assert_eq!((s.records, s.duplicates, s.gaps), (1, 1, 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seal_then_reopen_serves_existing_generation_without_rebuild() {
        let dir = tmpdir("adopt");
        let (live, _) = LiveDb::open(&dir).unwrap();
        for i in 0..5 {
            live.ingest(
                n("01-01"),
                i,
                &error_line("01-01", 60 + i as i64 * 7200, "0xfffffffe"),
            )
            .unwrap();
        }
        live.seal().unwrap();
        drop(live);
        let (live2, report) = LiveDb::open(&dir).unwrap();
        assert!(
            report.served_existing,
            "exact provenance match → no rebuild"
        );
        assert_eq!(live2.status().records, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unflushed_ingest_after_seal_forces_rebuild_on_reopen() {
        let dir = tmpdir("rebuild");
        let (live, _) = LiveDb::open(&dir).unwrap();
        // Two nodes: a single-node corpus would trip the flood filter
        // (100% > the 50% share) and extract zero faults.
        live.ingest(n("01-01"), 0, &error_line("01-01", 60, "0xfffffffe"))
            .unwrap();
        live.ingest(n("01-02"), 0, &error_line("01-02", 60, "0xfffffffe"))
            .unwrap();
        live.seal().unwrap();
        live.ingest(n("01-01"), 1, &error_line("01-01", 7260, "0xfffffffe"))
            .unwrap();
        live.ingest(n("01-02"), 1, &error_line("01-02", 7260, "0xfffffffe"))
            .unwrap();
        live.flush().unwrap();
        drop(live);
        let (live2, report) = LiveDb::open(&dir).unwrap();
        assert!(
            !report.served_existing,
            "post-seal records ⇒ catalog mismatch"
        );
        assert_eq!(live2.status().records, 4);
        let db = live2.handle().current();
        assert_eq!(db.rows(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_isolation_in_flight_handle_survives_seal() {
        let dir = tmpdir("iso");
        let (live, _) = LiveDb::open(&dir).unwrap();
        live.ingest(n("01-01"), 0, &error_line("01-01", 60, "0xfffffffe"))
            .unwrap();
        live.ingest(n("01-02"), 0, &error_line("01-02", 60, "0xfffffffe"))
            .unwrap();
        live.seal().unwrap();
        let before = live.handle().current();
        live.ingest(n("01-01"), 1, &error_line("01-01", 7260, "0xfffffffe"))
            .unwrap();
        live.ingest(n("01-02"), 1, &error_line("01-02", 7260, "0xfffffffe"))
            .unwrap();
        live.seal().unwrap();
        let after = live.handle().current();
        assert_eq!(before.rows(), 2, "pinned generation is immutable");
        assert_eq!(after.rows(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_promotes_complete_gen_tmp_and_rolls_back_catalog() {
        let dir = tmpdir("fsck-gen");
        let (live, _) = LiveDb::open(&dir).unwrap();
        for i in 0..3 {
            live.ingest(
                n("01-01"),
                i,
                &error_line("01-01", 60 + i as i64 * 7200, "0xfffffffe"),
            )
            .unwrap();
        }
        live.seal().unwrap();
        drop(live);

        // Fabricate a crash mid-seal of gen 3: complete bytes under the
        // tmp name (rename never happened), catalog still naming gen 2.
        let g2 = fs::read(dir.join(gen_file_name(2))).unwrap();
        fs::write(dir.join(format!("{}.tmp", gen_file_name(3))), &g2).unwrap();
        // And a torn tmp for gen 4 (first half only).
        fs::write(
            dir.join(format!("{}.tmp", gen_file_name(4))),
            &g2[..g2.len() / 2],
        )
        .unwrap();
        // And quarantine bait: corrupt sealed gen 1 (flip a payload byte).
        let g1path = dir.join(gen_file_name(1));
        let mut g1 = fs::read(&g1path).unwrap();
        let mid = g1.len() / 2;
        g1[mid] ^= 0xFF;
        fs::write(&g1path, &g1).unwrap();

        let report = fsck_live_dir(&dir).unwrap();
        assert!(report.is_conserved(), "{}", report.render());
        assert_eq!(report.gens_promoted, 1, "complete tmp promoted");
        assert!(report.gens_quarantined >= 2, "torn tmp + corrupt sealed");
        assert!(dir.join(gen_file_name(3)).exists());
        assert!(!dir.join(format!("{}.tmp", gen_file_name(4))).exists());
        // Catalog dropped the dead gen-1 entry.
        let cat = Catalog::load(&dir).unwrap();
        assert!(cat.entry(1).is_none());
        assert_eq!(cat.current, Some(2));

        // Second run: nothing left to repair.
        let again = fsck_live_dir(&dir).unwrap();
        assert!(again.is_conserved());
        assert_eq!(again.gens_promoted + again.gens_quarantined, 0);

        // And the live db still opens and serves the right answer.
        let (live2, _) = LiveDb::open(&dir).unwrap();
        assert_eq!(live2.status().records, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_quarantines_damaged_catalog() {
        let dir = tmpdir("fsck-cat");
        let (live, _) = LiveDb::open(&dir).unwrap();
        live.ingest(n("01-01"), 0, &error_line("01-01", 60, "0xfffffffe"))
            .unwrap();
        live.seal().unwrap();
        drop(live);
        fs::write(
            dir.join(CATALOG_NAME),
            b"UCCAT1\ngarbage that is not a catalog\n",
        )
        .unwrap();
        let report = fsck_live_dir(&dir).unwrap();
        assert!(report.catalog_quarantined);
        assert!(report.is_conserved(), "{}", report.render());
        assert!(!dir.join(CATALOG_NAME).exists());
        // Open reseals from the WAL; records survive.
        let (live2, report2) = LiveDb::open(&dir).unwrap();
        assert!(!report2.served_existing);
        assert_eq!(live2.status().records, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_renders_only_when_set_and_promotion_persists() {
        // Epoch 0 renders exactly as the pre-replication format did.
        let plain = Catalog::default().render();
        assert!(!plain.contains("epoch"));
        assert_eq!(Catalog::parse(&plain).unwrap().epoch, 0);

        let dir = tmpdir("epoch");
        let (live, _) = LiveDb::open(&dir).unwrap();
        assert_eq!(live.epoch(), 0);
        assert_eq!(live.promote().unwrap(), 1);
        assert_eq!(live.promote().unwrap(), 2);
        live.adopt_epoch(1).unwrap(); // stale: monotonicity holds
        assert_eq!(live.epoch(), 2);
        live.adopt_epoch(7).unwrap();
        drop(live);
        let (live2, _) = LiveDb::open(&dir).unwrap();
        assert_eq!(live2.epoch(), 7, "epoch survives restart");
        assert_eq!(live2.status().epoch, 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_open_of_live_dir_is_refused_while_locked() {
        let dir = tmpdir("locked");
        let (live, _) = LiveDb::open(&dir).unwrap();
        match LiveDb::open(&dir) {
            Err(DbError::Locked { .. }) => {}
            other => panic!("expected Locked, got {:?}", other.map(|(_, r)| r)),
        }
        match fsck_live_dir(&dir) {
            Err(DbError::Locked { .. }) => {}
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(live);
        assert!(fsck_live_dir(&dir).is_ok(), "lock released on drop");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn is_live_dir_discriminates() {
        let dir = tmpdir("isld");
        fs::create_dir_all(&dir).unwrap();
        assert!(!is_live_dir(&dir));
        fs::write(dir.join("wal-000001.dlog"), b"x").unwrap();
        assert!(is_live_dir(&dir));
        fs::remove_dir_all(&dir).unwrap();
    }
}
