//! Sharded faultdb: a root catalog (`UCFDBROOT`) over (time window ×
//! rack) segment files, each an ordinary UCFDB1 database.
//!
//! ```text
//! <dir>/ROOT               catalog: shard index + zone maps + provenance
//! <dir>/shard-00000.ucfdb  one (window, rack) cell, normal UCFDB1 file
//! <dir>/shard-00001.ucfdb  ...
//! ```
//!
//! The ROOT file is `magic "UCFDBROOT1\n" + body + crc32(body)`, sealed
//! with tmp + fsync + rename like every other artifact. The body holds,
//! per shard: its (window, rack) key, row count, file name, and a
//! shard-level [`ZoneMap`] — the planner consults those before opening a
//! byte of the shard, so a pruned shard costs one zone-map comparison.
//! The campaign's [`Provenance`] is stored once in the ROOT (shard files
//! carry an empty one): the root is the database, shards are its blocks.
//!
//! **Partitioning.** `write_sharded` splits the global fault stream
//! (sorted by `fault_sort_key`) into `windows` equal time slices, and
//! each slice by rack. Occupied cells become shards in (window, rack)
//! order. Because time is the leading sort-key field and a rack is a
//! function of the node (the second field), every shard's row stream is
//! itself sorted by `fault_sort_key`.
//!
//! **Determinism of the fan-out (§6).** Queries prune shards by the
//! catalog zone maps, scan survivors on `par_map` (order-preserving; the
//! per-shard scan is sequential so shards, not blocks, are the unit of
//! parallelism), and merge per-shard aggregates *in shard order*. Counts,
//! histograms, and keyed counts are commutative sums, so any order gives
//! the same bytes; row lists are k-way merged on the fully discriminating
//! `fault_sort_key` (the `analysis::extract` merge), which reassembles
//! exactly the single-file row order: the key is total, and two faults
//! with equal keys would have landed in the same shard (same time ⇒ same
//! window, same node ⇒ same rack), so cross-shard ties cannot occur.
//! Hence every query answers byte-identically to the single-file engine
//! at any thread count — the differential suite in
//! `tests/shard_roundtrip.rs` proves it across encodings × shard counts
//! × thread limits.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use uc_analysis::extract::merge_sorted_fault_streams;
use uc_analysis::fault::Fault;
use uc_faultlog::durable::crc::crc32;

use crate::cache::CacheStats;
use crate::db::{DbOptions, FaultDb, QueryOptions, QueryResult, ScanAccounting};
use crate::error::DbError;
use crate::format::{self, Provenance, Reader, WriteOptions, ZoneMap};
use crate::kernel::{self, Aggregate};
use crate::query::{parse_query, Action, Query};
use crate::snapshot::Snapshot;

/// Root catalog magic.
pub const ROOT_MAGIC: &[u8; 11] = b"UCFDBROOT1\n";
/// Root catalog file name inside the shard directory.
pub const ROOT_FILE: &str = "ROOT";
/// Root catalog format version.
pub const ROOT_VERSION: u32 = 1;

/// One shard's entry in the root catalog.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardEntry {
    /// Time-window index (0-based).
    pub window: u32,
    /// 0-based rack number.
    pub rack: u32,
    /// Rows in the shard file.
    pub rows: u64,
    /// File name relative to the root directory.
    pub name: String,
    /// Shard-level zone map: the union of the shard's block zones.
    pub zone: ZoneMap,
}

/// Decoded root catalog.
#[derive(Clone, Debug, PartialEq)]
pub struct RootCatalog {
    pub version: u32,
    /// How many time windows the build requested.
    pub windows: u32,
    pub total_rows: u64,
    pub shards: Vec<ShardEntry>,
    pub provenance: Provenance,
}

/// What a sharded build produced.
#[derive(Clone, Debug)]
pub struct RootWriteSummary {
    pub dir: PathBuf,
    pub rows: u64,
    pub shards: usize,
    pub bytes: u64,
}

/// Does this path look like a root catalog directory?
pub fn is_root_dir(path: &Path) -> bool {
    path.is_dir() && path.join(ROOT_FILE).is_file()
}

fn shard_file_name(index: usize) -> String {
    format!("shard-{index:05}.ucfdb")
}

/// 0-based rack of a fault's node.
fn rack_of(f: &Fault) -> u32 {
    f.node.blade().rack()
}

// ---------------------------------------------------------------- encode

fn encode_root(catalog: &RootCatalog) -> Vec<u8> {
    let mut body = Vec::with_capacity(64 + catalog.shards.len() * 80);
    body.extend_from_slice(&catalog.version.to_le_bytes());
    body.extend_from_slice(&catalog.windows.to_le_bytes());
    body.extend_from_slice(&catalog.total_rows.to_le_bytes());
    body.extend_from_slice(&(catalog.shards.len() as u32).to_le_bytes());
    for s in &catalog.shards {
        body.extend_from_slice(&s.window.to_le_bytes());
        body.extend_from_slice(&s.rack.to_le_bytes());
        body.extend_from_slice(&s.rows.to_le_bytes());
        body.extend_from_slice(&(s.name.len() as u32).to_le_bytes());
        body.extend_from_slice(s.name.as_bytes());
        body.extend_from_slice(&s.zone.min_time.to_le_bytes());
        body.extend_from_slice(&s.zone.max_time.to_le_bytes());
        body.extend_from_slice(&s.zone.min_node.to_le_bytes());
        body.extend_from_slice(&s.zone.max_node.to_le_bytes());
        body.extend_from_slice(&s.zone.min_vaddr.to_le_bytes());
        body.extend_from_slice(&s.zone.max_vaddr.to_le_bytes());
        body.push(s.zone.class_map);
        body.push(s.zone.dir_map);
    }
    format::encode_provenance(&mut body, &catalog.provenance);

    let mut out = Vec::with_capacity(ROOT_MAGIC.len() + body.len() + 4);
    out.extend_from_slice(ROOT_MAGIC);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

fn decode_root(bytes: &[u8]) -> Result<RootCatalog, DbError> {
    if bytes.len() < ROOT_MAGIC.len() + 4 {
        return Err(DbError::TooShort {
            len: bytes.len() as u64,
        });
    }
    if &bytes[..ROOT_MAGIC.len()] != ROOT_MAGIC {
        return Err(DbError::BadMagic);
    }
    let body = &bytes[ROOT_MAGIC.len()..bytes.len() - 4];
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(body) != crc {
        return Err(DbError::BadFooter("root catalog CRC mismatch".into()));
    }
    let mut r = Reader::new(body);
    let version = r.u32()?;
    if version != ROOT_VERSION {
        return Err(DbError::BadVersion(version));
    }
    let windows = r.u32()?;
    let total_rows = r.u64()?;
    let shard_count = r.u32()?;
    // Each entry is at least 66 bytes; bound the allocation.
    if (shard_count as usize).saturating_mul(66) > body.len() {
        return Err(DbError::BadFooter(format!(
            "shard count {shard_count} larger than the catalog"
        )));
    }
    let mut shards = Vec::with_capacity(shard_count as usize);
    let mut rows_sum = 0u64;
    for i in 0..shard_count {
        let window = r.u32()?;
        let rack = r.u32()?;
        let rows = r.u64()?;
        let name_len = r.u32()? as usize;
        if name_len > 255 {
            return Err(DbError::BadFooter(format!("shard {i} name too long")));
        }
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| DbError::BadFooter(format!("shard {i} name not UTF-8")))?;
        if name.contains(['/', '\\']) || name == ".." {
            return Err(DbError::BadFooter(format!(
                "shard {i} name {name:?} escapes the root directory"
            )));
        }
        let zone = ZoneMap {
            min_time: r.i64()?,
            max_time: r.i64()?,
            min_node: r.u32()?,
            max_node: r.u32()?,
            min_vaddr: r.u64()?,
            max_vaddr: r.u64()?,
            class_map: r.u8()?,
            dir_map: r.u8()?,
        };
        if rows == 0 {
            return Err(DbError::BadFooter(format!("shard {i} claims zero rows")));
        }
        rows_sum += rows;
        shards.push(ShardEntry {
            window,
            rack,
            rows,
            name,
            zone,
        });
    }
    if rows_sum != total_rows {
        return Err(DbError::BadFooter(format!(
            "row counts disagree: shards hold {rows_sum}, catalog claims {total_rows}"
        )));
    }
    let provenance = format::decode_provenance(&mut r)?;
    if !r.done() {
        return Err(DbError::BadFooter("trailing bytes after catalog".into()));
    }
    Ok(RootCatalog {
        version,
        windows,
        total_rows,
        shards,
        provenance,
    })
}

/// Partition a snapshot into (time window × rack) shards under `dir` and
/// seal the root catalog. Shard files are normal UCFDB1 databases (with
/// empty provenance); the snapshot's provenance is stored once in ROOT.
///
/// The split is pure arithmetic over the already-sorted fault stream, so
/// the resulting files are byte-identical at any thread count.
pub fn write_sharded(
    snapshot: &Snapshot,
    dir: &Path,
    windows: usize,
    opts: &WriteOptions,
) -> Result<RootWriteSummary, DbError> {
    let windows = windows.clamp(1, 1 << 16) as u32;
    fs::create_dir_all(dir).map_err(|e| DbError::io(dir, e))?;

    // Assign each fault to its (window, rack) cell. Window width covers
    // the full observed span in `windows` equal slices; arithmetic in
    // i128 so adversarial timestamps cannot overflow.
    let faults = &snapshot.faults;
    let mut cells: std::collections::BTreeMap<(u32, u32), Vec<Fault>> =
        std::collections::BTreeMap::new();
    if !faults.is_empty() {
        let t_min = faults.iter().map(|f| f.time.as_secs()).min().unwrap();
        let t_max = faults.iter().map(|f| f.time.as_secs()).max().unwrap();
        let span = (t_max as i128 - t_min as i128) + 1;
        // Ceiling division; span and windows are both positive.
        let width = (span + windows as i128 - 1) / windows as i128;
        for f in faults {
            let w = ((f.time.as_secs() as i128 - t_min as i128) / width) as u32;
            cells.entry((w, rack_of(f))).or_default().push(*f);
        }
    }

    let mut entries = Vec::with_capacity(cells.len());
    let mut bytes = 0u64;
    for (i, ((window, rack), cell)) in cells.into_iter().enumerate() {
        let name = shard_file_name(i);
        let zone = ZoneMap::of(&cell);
        let rows = cell.len() as u64;
        let shard_snapshot = Snapshot {
            faults: cell,
            flood_nodes: vec![],
            stats: Default::default(),
            node_logs: 0,
            raw_records: 0,
            raw_errors: 0,
            day_volume: Default::default(),
        };
        let summary = format::write_db(&shard_snapshot, &dir.join(&name), opts)?;
        bytes += summary.bytes;
        entries.push(ShardEntry {
            window,
            rack,
            rows,
            name,
            zone,
        });
    }

    let catalog = RootCatalog {
        version: ROOT_VERSION,
        windows,
        total_rows: faults.len() as u64,
        shards: entries,
        provenance: Provenance {
            node_logs: snapshot.node_logs,
            raw_records: snapshot.raw_records,
            raw_errors: snapshot.raw_errors,
            stats: snapshot.stats,
            flood_nodes: snapshot.flood_nodes.clone(),
            day_volume: snapshot
                .day_volume
                .iter()
                .map(|(d, v)| (d, v.to_bits()))
                .collect(),
        },
    };
    let root_bytes = encode_root(&catalog);
    let tmp = dir.join(format!("{ROOT_FILE}.tmp"));
    let seal = || -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&root_bytes)?;
        f.sync_all()?;
        Ok(())
    };
    seal().map_err(|e| DbError::io(&tmp, e))?;
    fs::rename(&tmp, dir.join(ROOT_FILE)).map_err(|e| DbError::io(dir, e))?;

    Ok(RootWriteSummary {
        dir: dir.to_path_buf(),
        rows: catalog.total_rows,
        shards: catalog.shards.len(),
        bytes: bytes + root_bytes.len() as u64,
    })
}

// ---------------------------------------------------------------- engine

/// An open sharded database: the catalog plus every shard, with
/// per-shard scan counters for the server's STATS response.
pub struct RootDb {
    dir: PathBuf,
    catalog: RootCatalog,
    shards: Vec<FaultDb>,
    scan_counts: Vec<AtomicU64>,
}

impl std::fmt::Debug for RootDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RootDb")
            .field("dir", &self.dir)
            .field("shards", &self.shards.len())
            .field("rows", &self.catalog.total_rows)
            .finish()
    }
}

impl RootDb {
    pub fn open(dir: &Path) -> Result<RootDb, DbError> {
        RootDb::open_with(dir, &DbOptions::default())
    }

    /// Open the catalog and every shard. Validation mirrors the single
    /// file's outside-in pass: ROOT CRC and structure first, then each
    /// shard's own footer, then catalog-vs-shard row agreement.
    pub fn open_with(dir: &Path, opts: &DbOptions) -> Result<RootDb, DbError> {
        let root_path = dir.join(ROOT_FILE);
        let bytes = fs::read(&root_path).map_err(|e| DbError::io(&root_path, e))?;
        let catalog = decode_root(&bytes)?;
        let mut shards = Vec::with_capacity(catalog.shards.len());
        for entry in &catalog.shards {
            let db = FaultDb::open_with(&dir.join(&entry.name), opts)?;
            if db.rows() != entry.rows {
                return Err(DbError::BadFooter(format!(
                    "shard {} holds {} rows, catalog claims {}",
                    entry.name,
                    db.rows(),
                    entry.rows
                )));
            }
            shards.push(db);
        }
        let scan_counts = (0..shards.len()).map(|_| AtomicU64::new(0)).collect();
        Ok(RootDb {
            dir: dir.to_path_buf(),
            catalog,
            shards,
            scan_counts,
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn catalog(&self) -> &RootCatalog {
        &self.catalog
    }

    pub fn rows(&self) -> u64 {
        self.catalog.total_rows
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Blocks across all shards.
    pub fn blocks(&self) -> u32 {
        self.shards.iter().map(FaultDb::blocks).sum()
    }

    pub fn size_bytes(&self) -> u64 {
        self.shards.iter().map(FaultDb::size_bytes).sum()
    }

    /// Cache counters summed over shards.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            let c = s.cache_stats();
            total.hits += c.hits;
            total.misses += c.misses;
            total.evictions += c.evictions;
        }
        total
    }

    /// How many times each shard has been scanned (not pruned) by a
    /// query, in shard order.
    pub fn scan_counts(&self) -> Vec<u64> {
        self.scan_counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// One shard by index (the day-stream's fan-out unit).
    pub(crate) fn shard(&self, index: usize) -> &FaultDb {
        &self.shards[index]
    }

    /// [`RootDb::survivors`] for sibling modules (the day stream mirrors
    /// the list fan-out without rendering a `QueryResult`).
    pub(crate) fn day_survivors(&self, q: &Query) -> Vec<usize> {
        self.survivors(q)
    }

    /// Shards surviving catalog-level zone pruning, in shard order.
    fn survivors(&self, q: &Query) -> Vec<usize> {
        self.catalog
            .shards
            .iter()
            .enumerate()
            .filter(|(_, e)| q.pred.may_match(&e.zone))
            .map(|(i, _)| i)
            .collect()
    }

    /// Parse and run a query.
    pub fn query(&self, text: &str, opts: &QueryOptions) -> Result<QueryResult, DbError> {
        self.run(&parse_query(text)?, opts)
    }

    /// Run a parsed query: prune shards, fan out, merge deterministically.
    pub fn run(&self, q: &Query, opts: &QueryOptions) -> Result<QueryResult, DbError> {
        let survivors = self.survivors(q);
        let partials = uc_parallel::par_map(&survivors, |_, &s| {
            self.scan_counts[s].fetch_add(1, Ordering::Relaxed);
            // Sequential inside the shard: shards are the unit of
            // parallelism, so the pool is never nested.
            self.shards[s].run_partial(q, opts, false)
        });

        let mut aggs: Vec<Aggregate> = Vec::with_capacity(survivors.len());
        let mut acct = ScanAccounting {
            blocks_total: self.blocks(),
            ..Default::default()
        };
        for partial in partials {
            let (agg, a) = partial?;
            acct.blocks_scanned += a.blocks_scanned;
            acct.rows_scanned += a.rows_scanned;
            aggs.push(agg);
        }

        // Row lists need the k-way merge; everything else is a sum, and
        // sums are merged in shard (survivor) order anyway.
        let merged = if matches!(q.action, Action::List { .. }) {
            let mut streams = Vec::with_capacity(aggs.len());
            let mut total = Aggregate::new();
            for mut agg in aggs {
                streams.push(std::mem::take(&mut agg.rows));
                total.absorb(agg);
            }
            total.set_rows(merge_sorted_fault_streams(streams));
            total
        } else {
            let mut total = Aggregate::new();
            for agg in aggs {
                total.absorb(agg);
            }
            total
        };

        Ok(QueryResult {
            lines: merged.render(&q.action),
            matched: merged.matched,
            shards_total: self.shards.len() as u32,
            shards_scanned: survivors.len() as u32,
            blocks_total: acct.blocks_total,
            blocks_scanned: acct.blocks_scanned,
            rows_scanned: acct.rows_scanned,
        })
    }

    /// Validate every block of every shard (CRC + layout + values).
    pub fn verify_deep(&self) -> Result<(), DbError> {
        for s in &self.shards {
            s.verify_deep()?;
        }
        Ok(())
    }

    /// Rebuild the full analyze [`Snapshot`]: k-way merge the shard row
    /// streams (each sorted by `fault_sort_key`) under the root
    /// provenance. Byte-identical to the single-file snapshot.
    pub fn snapshot(&self) -> Result<Snapshot, DbError> {
        let streams = self
            .shards
            .iter()
            .map(FaultDb::faults_all)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(format::snapshot_from_parts(
            &self.catalog.provenance,
            merge_sorted_fault_streams(streams),
        ))
    }

    /// All faults in global sort order (the snapshot's fault stream).
    pub fn faults_all(&self) -> Result<Vec<Fault>, DbError> {
        let streams = self
            .shards
            .iter()
            .map(FaultDb::faults_all)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(merge_sorted_fault_streams(streams))
    }
}

/// A query engine over either database shape. Cloning is cheap (two
/// words); the server's [`crate::db::DbHandle`] swaps whole engines.
#[derive(Clone)]
pub enum Engine {
    Single(Arc<FaultDb>),
    Root(Arc<RootDb>),
}

impl From<Arc<FaultDb>> for Engine {
    fn from(db: Arc<FaultDb>) -> Engine {
        Engine::Single(db)
    }
}

impl From<Arc<RootDb>> for Engine {
    fn from(db: Arc<RootDb>) -> Engine {
        Engine::Root(db)
    }
}

impl Engine {
    /// Open whichever shape lives at `path`: a directory containing a
    /// ROOT catalog opens sharded, anything else as a single file.
    pub fn open_auto(path: &Path) -> Result<Engine, DbError> {
        Engine::open_auto_with(path, &DbOptions::default())
    }

    pub fn open_auto_with(path: &Path, opts: &DbOptions) -> Result<Engine, DbError> {
        if is_root_dir(path) {
            Ok(Engine::Root(Arc::new(RootDb::open_with(path, opts)?)))
        } else {
            Ok(Engine::Single(Arc::new(FaultDb::open_with(path, opts)?)))
        }
    }

    pub fn query(&self, text: &str, opts: &QueryOptions) -> Result<QueryResult, DbError> {
        match self {
            Engine::Single(db) => db.query(text, opts),
            Engine::Root(db) => db.query(text, opts),
        }
    }

    pub fn run(&self, q: &Query, opts: &QueryOptions) -> Result<QueryResult, DbError> {
        match self {
            Engine::Single(db) => db.run(q, opts),
            Engine::Root(db) => db.run(q, opts),
        }
    }

    pub fn rows(&self) -> u64 {
        match self {
            Engine::Single(db) => db.rows(),
            Engine::Root(db) => db.rows(),
        }
    }

    pub fn blocks(&self) -> u32 {
        match self {
            Engine::Single(db) => db.blocks(),
            Engine::Root(db) => db.blocks(),
        }
    }

    pub fn size_bytes(&self) -> u64 {
        match self {
            Engine::Single(db) => db.size_bytes(),
            Engine::Root(db) => db.size_bytes(),
        }
    }

    pub fn cache_stats(&self) -> CacheStats {
        match self {
            Engine::Single(db) => db.cache_stats(),
            Engine::Root(db) => db.cache_stats(),
        }
    }

    pub fn snapshot(&self) -> Result<Snapshot, DbError> {
        match self {
            Engine::Single(db) => db.snapshot(),
            Engine::Root(db) => db.snapshot(),
        }
    }

    pub fn verify_deep(&self) -> Result<(), DbError> {
        match self {
            Engine::Single(db) => db.verify_deep(),
            Engine::Root(db) => db.verify_deep(),
        }
    }

    /// Extra STATS lines for the server: shard topology and per-shard
    /// scan counts. Empty for a single-file engine.
    pub fn stats_lines(&self) -> Vec<String> {
        match self {
            Engine::Single(_) => vec![],
            Engine::Root(db) => {
                let mut lines = vec![format!("shards {}", db.shard_count())];
                for (entry, scans) in db.catalog.shards.iter().zip(db.scan_counts()) {
                    lines.push(format!(
                        "shard_scans {} window={} rack={} {scans}",
                        entry.name, entry.window, entry.rack
                    ));
                }
                lines
            }
        }
    }

    /// Render the query plan without scanning: shard pruning, block
    /// pruning, per-block encodings, and the kernel that would run.
    pub fn explain(&self, text: &str) -> Result<Vec<String>, DbError> {
        let q = parse_query(text)?;
        let mut lines = vec![format!("action {}", kernel::kernel_name(&q.action))];
        let file_plan = |lines: &mut Vec<String>, label: &str, db: &FaultDb| {
            let plan = db.plan(&q);
            let scanned = plan.iter().filter(|b| b.scan).count();
            lines.push(format!(
                "{label} blocks total={} pruned={} scanned={scanned}",
                plan.len(),
                plan.len() - scanned,
            ));
            for b in plan {
                lines.push(format!(
                    "{label} block {} rows={} enc={} {}",
                    b.index,
                    b.rows,
                    b.encoding.label(),
                    if b.scan { "scan" } else { "prune" }
                ));
            }
        };
        match self {
            Engine::Single(db) => {
                lines.push("shards total=1 pruned=0 scanned=1".to_string());
                file_plan(&mut lines, "shard 0", db);
            }
            Engine::Root(db) => {
                let survivors = db.survivors(&q);
                lines.push(format!(
                    "shards total={} pruned={} scanned={}",
                    db.shard_count(),
                    db.shard_count() - survivors.len(),
                    survivors.len()
                ));
                for (i, entry) in db.catalog.shards.iter().enumerate() {
                    let label = format!("shard {i}");
                    if survivors.contains(&i) {
                        lines.push(format!(
                            "{label} file={} window={} rack={} scan",
                            entry.name, entry.window, entry.rack
                        ));
                        file_plan(&mut lines, &label, &db.shards[i]);
                    } else {
                        lines.push(format!(
                            "{label} file={} window={} rack={} prune",
                            entry.name, entry.window, entry.rack
                        ));
                    }
                }
            }
        }
        Ok(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;
    use uc_simclock::SimTime;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("uc-faultdb-shard-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snapshot(n: usize) -> Snapshot {
        let mut faults: Vec<Fault> = (0..n)
            .map(|i| Fault {
                // Spread nodes over both racks (rack = node/540).
                node: NodeId(((i * 97) % 1080) as u32),
                time: SimTime::from_secs((i as i64 * 977) % 500_000),
                vaddr: 0x1000 + (i as u64 % 13) * 0x40,
                expected: 0xFFFF_FFFF,
                actual: if i % 5 == 0 { 0xFFFF_FFFC } else { 0xFFFF_FFFE },
                temp: (i % 3 == 0).then_some(30.0 + (i % 50) as f32),
                raw_logs: 1 + (i as u64 % 4),
            })
            .collect();
        faults.sort_by_key(uc_analysis::extract::fault_sort_key);
        Snapshot {
            faults,
            flood_nodes: vec![NodeId(7)],
            stats: Default::default(),
            node_logs: 42,
            raw_records: n as u64 * 3,
            raw_errors: n as u64,
            day_volume: Default::default(),
        }
    }

    fn build_root(tag: &str, n: usize, windows: usize) -> (PathBuf, RootDb) {
        let dir = tempdir(tag);
        let snap = snapshot(n);
        write_sharded(
            &snap,
            &dir,
            windows,
            &WriteOptions {
                rows_per_block: 64,
                ..WriteOptions::default()
            },
        )
        .unwrap();
        let db = RootDb::open(&dir).unwrap();
        (dir, db)
    }

    #[test]
    fn root_catalog_roundtrips() {
        let (_dir, db) = build_root("roundtrip", 1000, 4);
        assert_eq!(db.rows(), 1000);
        assert!(db.shard_count() > 4, "windows × racks cells occupied");
        assert_eq!(db.catalog().windows, 4);
        let back = db.faults_all().unwrap();
        assert_eq!(back, snapshot(1000).faults, "merge restores sort order");
    }

    #[test]
    fn sharded_answers_match_single_file() {
        let dir = tempdir("diff");
        let snap = snapshot(1200);
        let opts = WriteOptions {
            rows_per_block: 64,
            ..WriteOptions::default()
        };
        format::write_db(&snap, &dir.join("single.ucfdb"), &opts).unwrap();
        write_sharded(&snap, &dir.join("root"), 3, &opts).unwrap();
        let single = FaultDb::open(&dir.join("single.ucfdb")).unwrap();
        let root = RootDb::open(&dir.join("root")).unwrap();
        for q in [
            "count",
            "count where multibit",
            "count where rack=2",
            "group class",
            "group rack",
            "top 5 node",
            "hist bits",
            "list limit 20",
            "list limit 5 where time>=100000 and time<300000",
        ] {
            let a = single.query(q, &QueryOptions::default()).unwrap();
            let b = root.query(q, &QueryOptions::default()).unwrap();
            assert_eq!(a.lines, b.lines, "{q}");
            assert_eq!(a.matched, b.matched, "{q}");
        }
        // Snapshot (analyze --db) agrees byte-for-byte too.
        assert_eq!(
            single.snapshot().unwrap().report_text(),
            root.snapshot().unwrap().report_text()
        );
    }

    #[test]
    fn shard_pruning_skips_whole_shards() {
        let (_dir, db) = build_root("prune", 2000, 8);
        let r = db
            .query("count where rack=1", &QueryOptions::default())
            .unwrap();
        assert!(
            r.shards_scanned < r.shards_total,
            "rack predicate must prune rack-disjoint shards ({}/{})",
            r.shards_scanned,
            r.shards_total
        );
        // Pruning is conservative: the count matches an unpruned scan.
        let full = db
            .query("count where not not rack=1", &QueryOptions::default())
            .unwrap();
        assert_eq!(full.shards_scanned, full.shards_total);
        assert_eq!(full.lines, r.lines);
        // Scan counters moved only for scanned shards.
        let scans: u64 = db.scan_counts().iter().sum();
        assert_eq!(scans, (r.shards_scanned + full.shards_scanned) as u64);
    }

    #[test]
    fn root_results_identical_across_thread_counts() {
        let (_dir, db) = build_root("threads", 1500, 5);
        for q in [
            "count where multibit",
            "group rack",
            "list limit 10",
            "hist bits",
        ] {
            let one = uc_parallel::with_thread_limit(1, || db.query(q, &QueryOptions::default()))
                .unwrap();
            let eight = uc_parallel::with_thread_limit(8, || db.query(q, &QueryOptions::default()))
                .unwrap();
            assert_eq!(one, eight, "{q}");
        }
    }

    #[test]
    fn damaged_root_crc_is_typed() {
        let (dir, _db) = build_root("crc", 300, 2);
        let root_path = dir.join(ROOT_FILE);
        let mut bytes = fs::read(&root_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&root_path, &bytes).unwrap();
        match RootDb::open(&dir) {
            Err(DbError::BadFooter(_)) | Err(DbError::BadMagic) | Err(DbError::BadVersion(_)) => {}
            other => panic!("damaged ROOT must be typed, got {other:?}"),
        }
    }

    #[test]
    fn shard_row_disagreement_is_typed() {
        let (dir, _db) = build_root("rows", 300, 2);
        // Overwrite shard 0 with a shard holding different rows.
        let snap = snapshot(7);
        format::write_db(
            &snap,
            &dir.join(shard_file_name(0)),
            &WriteOptions::default(),
        )
        .unwrap();
        match RootDb::open(&dir) {
            Err(DbError::BadFooter(msg)) => assert!(msg.contains("catalog claims"), "{msg}"),
            other => panic!("row disagreement must be typed, got {other:?}"),
        }
    }

    #[test]
    fn explain_reports_pruning_without_scanning() {
        let (_dir, db) = build_root("explain", 1000, 4);
        let engine = Engine::Root(Arc::new(db));
        let lines = engine.explain("count where rack=1").unwrap();
        assert!(lines[0].contains("count/popcount"), "{:?}", lines[0]);
        assert!(lines[1].starts_with("shards total="), "{:?}", lines[1]);
        assert!(lines.iter().any(|l| l.ends_with(" prune")), "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("enc=")), "{lines:?}");
        // Planning decodes nothing.
        assert_eq!(engine.cache_stats().misses, 0);
    }

    #[test]
    fn empty_snapshot_builds_an_empty_root() {
        let dir = tempdir("empty");
        let snap = Snapshot {
            faults: vec![],
            flood_nodes: vec![],
            stats: Default::default(),
            node_logs: 0,
            raw_records: 0,
            raw_errors: 0,
            day_volume: Default::default(),
        };
        write_sharded(&snap, &dir, 4, &WriteOptions::default()).unwrap();
        let db = RootDb::open(&dir).unwrap();
        assert_eq!(db.rows(), 0);
        assert_eq!(db.shard_count(), 0);
        let r = db.query("count", &QueryOptions::default()).unwrap();
        assert_eq!(r.lines, vec!["0".to_string()]);
    }
}
