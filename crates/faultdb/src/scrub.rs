//! Rate-limited background scrubber for live directories.
//!
//! Latent sector corruption is only dangerous while it stays latent: a
//! damaged generation block discovered *at query time* is an outage, the
//! same block discovered by a background scrub is a non-event — because
//! the WAL is the record of truth and every generation is a disposable
//! index over it, a damaged generation is **repaired by resealing from
//! the WAL** through the identical batch pipeline, reproducing the
//! original file byte for byte.
//!
//! One scrub pass, under the directory's PID lock:
//!
//! 1. **WAL segments** — every frame CRC re-verified via the durable
//!    scanner. WAL damage is *reported, never mutated*: the WAL is the
//!    only copy of history, and salvage decisions belong to `uc fsck`.
//! 2. **Generation files** — every catalog entry deep-validated (footer
//!    and all block CRCs). A damaged file's original bytes are
//!    quarantined to `.lost+found` (the fsck conservation law: every
//!    byte examined is still in the directory or in `.lost+found`), then
//!    the generation is rebuilt from the WAL and verified against the
//!    catalog's recorded `(records, crc)` cursor. If the WAL cannot
//!    reproduce that cursor the generation is unrecoverable: the
//!    quarantined bytes are all that remains and the catalog entry is
//!    dropped (rolling the current pointer back if needed) so readers
//!    fail typed instead of reading garbage.
//!
//! The scrubber throttles itself by bytes read (`max_bytes_per_sec`), so
//! a background [`Scrubber`] can patrol a large directory without
//! starving the serving path of disk bandwidth.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use uc_faultlog::durable::scan_segment_slices;

use crate::catalog::{gen_is_valid, quarantine, Catalog, ReplayState};
use crate::error::DbError;
use crate::format::{write_db, WriteOptions};
use crate::lock::LiveLock;
use crate::wal::{decode_wal_payload, list_wal_segments, WalRecord};

/// Scrub tuning; `Default` repairs at full disk speed.
#[derive(Clone, Debug)]
pub struct ScrubConfig {
    /// Repair damaged generations (quarantine + reseal). `false` is a
    /// dry run: damage is detected and reported, nothing is touched.
    pub repair: bool,
    /// Throttle: sleep so sustained read bandwidth stays under this.
    /// `None` scrubs flat out.
    pub max_bytes_per_sec: Option<u64>,
}

impl Default for ScrubConfig {
    fn default() -> ScrubConfig {
        ScrubConfig {
            repair: true,
            max_bytes_per_sec: None,
        }
    }
}

/// What one scrub pass found and did. Conservation law: every byte of a
/// generation file examined is accounted for — kept in place, or moved
/// to `.lost+found`.
#[derive(Clone, Debug, Default)]
pub struct ScrubReport {
    /// WAL segments scanned.
    pub wal_segments: u64,
    /// Intact WAL frames verified.
    pub wal_frames: u64,
    /// WAL bytes that failed frame CRCs (reported, not mutated; run
    /// `uc fsck` to salvage).
    pub wal_damaged_bytes: u64,
    /// Catalog entries examined.
    pub gens_checked: u64,
    /// Entries whose file deep-validated clean.
    pub gens_ok: u64,
    /// Damaged entries found (dry run counts them here too).
    pub gens_damaged: u64,
    /// Damaged entries rebuilt from the WAL, byte-identical.
    pub gens_repaired: u64,
    /// Damaged entries the WAL could not reproduce; original bytes are
    /// in `.lost+found`, the catalog entry is dropped.
    pub gens_unrecoverable: u64,
    /// Catalog edits persisted (dropped entries, current rollbacks).
    pub catalog_fixups: u64,
    /// Total bytes read (WAL + generations) — the throttled quantity.
    pub bytes_scanned: u64,
    /// Generation bytes examined.
    pub gen_bytes_in: u64,
    /// Generation bytes left in place (valid files).
    pub gen_bytes_kept: u64,
    /// Generation bytes moved to `.lost+found`.
    pub gen_bytes_quarantined: u64,
    /// Times the throttle put the scrubber to sleep.
    pub throttle_sleeps: u64,
}

impl ScrubReport {
    /// The fsck conservation law, applied to the generation pass.
    pub fn is_conserved(&self) -> bool {
        self.gen_bytes_in == self.gen_bytes_kept + self.gen_bytes_quarantined
    }

    /// Did this pass find anything wrong (repaired or not)?
    pub fn found_damage(&self) -> bool {
        self.gens_damaged > 0 || self.wal_damaged_bytes > 0
    }

    pub fn render(&self) -> String {
        format!(
            "scrub: wal[{} segments, {} frames ok, {} damaged bytes] \
             gens[{} checked, {} ok, {} damaged, {} repaired, {} unrecoverable] \
             catalog[{} fixups] bytes[{} in = {} kept + {} quarantined] \
             conserved={}",
            self.wal_segments,
            self.wal_frames,
            self.wal_damaged_bytes,
            self.gens_checked,
            self.gens_ok,
            self.gens_damaged,
            self.gens_repaired,
            self.gens_unrecoverable,
            self.catalog_fixups,
            self.gen_bytes_in,
            self.gen_bytes_kept,
            self.gen_bytes_quarantined,
            self.is_conserved(),
        )
    }
}

/// Byte-budget throttle: charge what was read, sleep off the excess.
struct Throttle {
    rate: Option<u64>,
    window_start: Instant,
    window_bytes: u64,
    sleeps: u64,
}

impl Throttle {
    fn new(rate: Option<u64>) -> Throttle {
        Throttle {
            rate,
            window_start: Instant::now(),
            window_bytes: 0,
            sleeps: 0,
        }
    }

    fn charge(&mut self, bytes: u64) {
        let Some(rate) = self.rate else { return };
        let rate = rate.max(1);
        self.window_bytes += bytes;
        let owed = Duration::from_secs_f64(self.window_bytes as f64 / rate as f64);
        let elapsed = self.window_start.elapsed();
        if owed > elapsed {
            thread::sleep(owed - elapsed);
            self.sleeps += 1;
        }
    }
}

/// One full scrub pass over a live directory. Takes the directory's PID
/// lock for the duration — repairing generation files under a live
/// server would race seals; a busy directory returns [`DbError::Locked`]
/// (the background [`Scrubber`] treats that as "skip this round").
pub fn scrub_live_dir(dir: &Path, cfg: &ScrubConfig) -> Result<ScrubReport, DbError> {
    let _lock = LiveLock::acquire(dir)?;
    let mut report = ScrubReport::default();
    let mut throttle = Throttle::new(cfg.max_bytes_per_sec);

    // Pass 1 — WAL segments: verify every frame CRC, collect the decoded
    // records once for all repairs.
    let mut records: Vec<WalRecord> = Vec::new();
    for (_idx, path) in list_wal_segments(dir)? {
        let bytes = std::fs::read(&path).map_err(|e| DbError::io(&path, e))?;
        report.wal_segments += 1;
        report.bytes_scanned += bytes.len() as u64;
        throttle.charge(bytes.len() as u64);
        let scan = scan_segment_slices(&bytes);
        report.wal_frames += scan.payloads.len() as u64;
        report.wal_damaged_bytes += scan.torn_bytes();
        for payload in &scan.payloads {
            if let Some(rec) = decode_wal_payload(payload) {
                records.push(rec);
            }
        }
    }

    // Pass 2 — generation files, through the catalog (files the catalog
    // never heard of are fsck's department; scrub guards what queries
    // can actually reach).
    let Some(mut catalog) = Catalog::load(dir) else {
        report.throttle_sleeps = throttle.sleeps;
        return Ok(report);
    };
    let mut dropped: Vec<u64> = Vec::new();
    for entry in catalog.generations.clone() {
        report.gens_checked += 1;
        let path = dir.join(&entry.file);
        let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        report.gen_bytes_in += len;
        report.bytes_scanned += len;
        throttle.charge(len);
        if path.exists() && gen_is_valid(&path) {
            report.gens_ok += 1;
            report.gen_bytes_kept += len;
            continue;
        }
        report.gens_damaged += 1;
        if !cfg.repair {
            // Dry run: the damaged bytes stay where they are.
            report.gen_bytes_kept += len;
            continue;
        }
        if path.exists() {
            quarantine(dir, &path, &mut report.gen_bytes_quarantined)?;
        }
        if let Some(rebuilt) = rebuild_generation(dir, &records, &entry)? {
            report.gens_repaired += 1;
            report.bytes_scanned += rebuilt;
        } else {
            report.gens_unrecoverable += 1;
            dropped.push(entry.index);
        }
    }
    if !dropped.is_empty() {
        catalog.generations.retain(|g| !dropped.contains(&g.index));
        if catalog.current.is_some_and(|c| dropped.contains(&c)) {
            catalog.current = catalog.generations.iter().map(|g| g.index).max();
        }
        report.catalog_fixups += 1;
        if catalog.generations.is_empty() {
            let cat_path = dir.join(crate::catalog::CATALOG_NAME);
            std::fs::remove_file(&cat_path).map_err(|e| DbError::io(&cat_path, e))?;
        } else {
            catalog.save(dir)?;
        }
    }
    report.throttle_sleeps = throttle.sleeps;
    Ok(report)
}

/// Reseal one generation from the WAL record stream. Returns the new
/// file's size, or `None` when the WAL cannot reproduce the catalog's
/// recorded cursor (too few records, or a CRC that says the history
/// differs — resealing would fabricate a generation that never existed).
fn rebuild_generation(
    dir: &Path,
    records: &[WalRecord],
    entry: &crate::catalog::GenEntry,
) -> Result<Option<u64>, DbError> {
    let replay = ReplayState::replay(records, Some(entry.records));
    if replay.records != entry.records || replay.crc.finish() != entry.stream_crc {
        return Ok(None);
    }
    let snapshot = replay.snapshot();
    let path = dir.join(&entry.file);
    write_db(&snapshot, &path, &WriteOptions::default())?;
    if !gen_is_valid(&path) {
        return Err(DbError::Catalog(format!(
            "rebuilt generation {} failed validation immediately",
            entry.file
        )));
    }
    let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    Ok(Some(len))
}

// ------------------------------------------------------------ scrubber

/// Background patrol: run [`scrub_live_dir`] every `interval`, skipping
/// rounds while the directory is busy (locked by a live server or an
/// fsck). Scrub results accumulate into counters a health endpoint can
/// poll; a pass that finds damage is the signal, not the outage.
pub struct Scrubber {
    stop: Arc<AtomicBool>,
    rounds: Arc<AtomicU64>,
    busy_skips: Arc<AtomicU64>,
    repaired: Arc<AtomicU64>,
    last_render: Arc<parking_lot::Mutex<Option<String>>>,
    thread: Option<JoinHandle<()>>,
}

impl Scrubber {
    pub fn start(dir: &Path, interval: Duration, cfg: ScrubConfig) -> Scrubber {
        let stop = Arc::new(AtomicBool::new(false));
        let rounds = Arc::new(AtomicU64::new(0));
        let busy_skips = Arc::new(AtomicU64::new(0));
        let repaired = Arc::new(AtomicU64::new(0));
        let last_render = Arc::new(parking_lot::Mutex::new(None));
        let thread = {
            let dir: PathBuf = dir.to_path_buf();
            let (stop, rounds, busy_skips, repaired, last_render) = (
                Arc::clone(&stop),
                Arc::clone(&rounds),
                Arc::clone(&busy_skips),
                Arc::clone(&repaired),
                Arc::clone(&last_render),
            );
            thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match scrub_live_dir(&dir, &cfg) {
                        Ok(report) => {
                            rounds.fetch_add(1, Ordering::Relaxed);
                            repaired.fetch_add(report.gens_repaired, Ordering::Relaxed);
                            *last_render.lock() = Some(report.render());
                        }
                        Err(DbError::Locked { .. }) => {
                            busy_skips.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            *last_render.lock() = Some(format!("scrub failed: {e}"));
                        }
                    }
                    let deadline = Instant::now() + interval;
                    while Instant::now() < deadline && !stop.load(Ordering::SeqCst) {
                        thread::sleep(Duration::from_millis(10).min(interval));
                    }
                }
            })
        };
        Scrubber {
            stop,
            rounds,
            busy_skips,
            repaired,
            last_render,
            thread: Some(thread),
        }
    }

    /// Completed scrub rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Rounds skipped because the directory was locked.
    pub fn busy_skips(&self) -> u64 {
        self.busy_skips.load(Ordering::Relaxed)
    }

    /// Generations repaired across all rounds.
    pub fn repaired(&self) -> u64 {
        self.repaired.load(Ordering::Relaxed)
    }

    /// Rendered report of the most recent round.
    pub fn last_report(&self) -> Option<String> {
        self.last_render.lock().clone()
    }

    /// Stop the patrol and wait for it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Scrubber {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{gen_file_name, LiveDb};
    use std::fs;
    use uc_cluster::NodeId;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uc-scrub-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn n(name: &str) -> NodeId {
        NodeId::from_name(name).unwrap()
    }

    fn error_line(node: &str, t: i64) -> String {
        format!(
            "ERROR t={t} node={node} vaddr=0x00000400 page=0x000000 \
             expected=0xffffffff actual=0xfffffffe temp=33.0"
        )
    }

    fn seeded_dir(tag: &str) -> (PathBuf, u64) {
        let dir = tmpdir(tag);
        let (live, _) = LiveDb::open(&dir).unwrap();
        for i in 0..12 {
            live.ingest(n("01-01"), i, &error_line("01-01", 60 + i as i64 * 7200))
                .unwrap();
        }
        live.seal().unwrap();
        for i in 12..20 {
            live.ingest(n("01-01"), i, &error_line("01-01", 60 + i as i64 * 7200))
                .unwrap();
        }
        let status = live.seal().unwrap();
        (dir, status.generation)
    }

    #[test]
    fn clean_directory_scrubs_clean() {
        let (dir, _) = seeded_dir("clean");
        let report = scrub_live_dir(&dir, &ScrubConfig::default()).unwrap();
        // Three entries: the initial seal from `LiveDb::open` plus two
        // explicit ones.
        assert_eq!(report.gens_checked, 3);
        assert_eq!(report.gens_ok, 3);
        assert!(!report.found_damage(), "{}", report.render());
        assert!(report.is_conserved());
        assert!(report.wal_frames >= 20);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_generation_is_repaired_byte_identical() {
        let (dir, gen) = seeded_dir("repair");
        let path = dir.join(gen_file_name(gen));
        let original = fs::read(&path).unwrap();
        // Flip one byte mid-file (inside a block, past the header).
        let mut bytes = original.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let report = scrub_live_dir(&dir, &ScrubConfig::default()).unwrap();
        assert_eq!(report.gens_damaged, 1, "{}", report.render());
        assert_eq!(report.gens_repaired, 1);
        assert_eq!(report.gens_unrecoverable, 0);
        assert!(report.is_conserved());
        assert_eq!(
            fs::read(&path).unwrap(),
            original,
            "repair must reproduce the original file byte for byte"
        );
        // The damaged original is conserved in .lost+found.
        let quarantined = dir.join(".lost+found").join(gen_file_name(gen));
        assert_eq!(fs::read(quarantined).unwrap(), bytes);
        // Second pass: nothing left to do.
        let again = scrub_live_dir(&dir, &ScrubConfig::default()).unwrap();
        assert!(!again.found_damage());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dry_run_reports_without_touching() {
        let (dir, gen) = seeded_dir("dry");
        let path = dir.join(gen_file_name(gen));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let cfg = ScrubConfig {
            repair: false,
            ..ScrubConfig::default()
        };
        let report = scrub_live_dir(&dir, &cfg).unwrap();
        assert_eq!(report.gens_damaged, 1);
        assert_eq!(report.gens_repaired, 0);
        assert!(report.is_conserved());
        assert_eq!(fs::read(&path).unwrap(), bytes, "dry run must not write");
        assert!(!dir.join(".lost+found").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unrecoverable_generation_is_quarantined_and_dropped() {
        let (dir, gen) = seeded_dir("unrec");
        // Destroy the WAL history *and* the generation: the cursor can no
        // longer be reproduced, so the entry must be dropped, typed.
        for entry in fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()) {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("wal-") {
                fs::remove_file(entry.path()).unwrap();
            }
        }
        let path = dir.join(gen_file_name(gen));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let report = scrub_live_dir(&dir, &ScrubConfig::default()).unwrap();
        assert_eq!(report.gens_unrecoverable, 1, "{}", report.render());
        assert_eq!(report.catalog_fixups, 1);
        assert!(report.is_conserved());
        assert!(!path.exists());
        // The catalog no longer points at the dead generation.
        let cat = Catalog::load(&dir).unwrap();
        assert!(cat.entry(gen).is_none());
        assert_eq!(cat.current, cat.generations.iter().map(|g| g.index).max());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn throttle_sleeps_when_rate_limited() {
        let (dir, _) = seeded_dir("rate");
        let cfg = ScrubConfig {
            repair: true,
            max_bytes_per_sec: Some(64 * 1024),
        };
        let report = scrub_live_dir(&dir, &cfg).unwrap();
        assert!(report.throttle_sleeps > 0, "{}", report.render());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrubber_daemon_patrols_and_skips_busy_dirs() {
        let (dir, gen) = seeded_dir("daemon");
        let path = dir.join(gen_file_name(gen));
        let original = fs::read(&path).unwrap();
        let mut bytes = original.clone();
        bytes[original.len() / 2] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let scrubber = Scrubber::start(&dir, Duration::from_millis(20), ScrubConfig::default());
        let deadline = Instant::now() + Duration::from_secs(10);
        while scrubber.repaired() == 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(scrubber.repaired(), 1);
        assert!(scrubber.last_report().unwrap().contains("repaired"));
        assert_eq!(fs::read(&path).unwrap(), original);

        // While the directory is locked, rounds are skipped, not failed.
        let lock = LiveLock::acquire(&dir).unwrap();
        let skips_before = scrubber.busy_skips();
        let deadline = Instant::now() + Duration::from_secs(10);
        while scrubber.busy_skips() == skips_before && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        assert!(scrubber.busy_skips() > skips_before);
        drop(lock);
        scrubber.stop();
        fs::remove_dir_all(&dir).unwrap();
    }
}
