//! The unit a fault database stores: extracted faults plus the
//! provenance needed to reproduce `uc analyze`'s report *byte for byte*
//! without the text logs.
//!
//! `uc analyze` prints more than the fault list — ingest accounting,
//! flood exclusions, and a Pearson correlation against per-day scanned
//! volume reconstructed from START/END records. None of that is
//! derivable from the faults alone, so a [`Snapshot`] carries it
//! alongside, and both analyze paths (text re-ingest and `--db`) render
//! through the same [`Snapshot::report_text`]. Equality of the two paths
//! then reduces to lossless round-tripping of this struct, which the
//! binary format guarantees (f64 day volumes travel as raw bits).

use std::fmt::Write as _;

use uc_analysis::daily::{DailySeries, DayVolume};
use uc_analysis::extract::{extract_recovered, ExtractConfig};
use uc_analysis::fault::Fault;
use uc_analysis::multibit::{multibit_stats, table_i};
use uc_analysis::spatial::top_nodes;
use uc_cluster::NodeId;
use uc_faultlog::ingest::IngestStats;
use uc_faultlog::store::ClusterLog;

/// The flood filter share `uc analyze` has always used: a node producing
/// more than half of all raw error logs is excluded as a flood.
pub const FLOOD_SHARE: f64 = 0.5;

/// Extraction output plus report provenance; see the module docs.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Independent faults, sorted by the fully discriminating
    /// `fault_sort_key` (extraction's output order).
    pub faults: Vec<Fault>,
    /// Nodes excluded by the flood filter, ascending by id.
    pub flood_nodes: Vec<NodeId>,
    /// Ingest accounting for the source logs.
    pub stats: IngestStats,
    /// Number of node logs loaded.
    pub node_logs: u64,
    /// Raw records across all logs (runs at full multiplicity).
    pub raw_records: u64,
    /// Raw ERROR records across all logs.
    pub raw_errors: u64,
    /// Per-day scanned volume (TBh) over the logs' full range.
    pub day_volume: DayVolume,
}

impl Snapshot {
    /// Run the standard extraction (default merge window, 50% flood
    /// share) over an ingested cluster log and capture the provenance.
    pub fn from_cluster(cluster: &ClusterLog, stats: IngestStats) -> Snapshot {
        let recovered = extract_recovered(cluster, stats, &ExtractConfig::default(), FLOOD_SHARE);
        let mut day_volume = DayVolume::default();
        for log in cluster.node_logs() {
            day_volume.add_node_log(log);
        }
        Snapshot {
            faults: recovered.faults,
            flood_nodes: recovered.flood_nodes,
            stats: recovered.stats,
            node_logs: cluster.node_logs().len() as u64,
            raw_records: cluster.raw_record_count(),
            raw_errors: cluster.raw_error_count(),
            day_volume,
        }
    }

    /// The `uc analyze` stdout report. Every line derives from this
    /// struct alone, so a snapshot read back from a database renders the
    /// identical bytes as one computed from the raw logs.
    pub fn report_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(
            out,
            "loaded {} node logs, {} raw records ({} raw errors)",
            self.node_logs, self.raw_records, self.raw_errors
        );
        if !self.flood_nodes.is_empty() {
            let _ = writeln!(
                out,
                "excluded flood node(s): {:?}",
                self.flood_nodes
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
            );
        }
        let _ = writeln!(out, "independent faults: {}", self.faults.len());

        let mb = multibit_stats(&self.faults);
        let _ = writeln!(
            out,
            "multi-bit: {} (double {}, >2-bit {}), max in-word gap {}",
            mb.multi_bit_faults, mb.double_bit_faults, mb.over_two_bit_faults, mb.max_bit_distance
        );
        let _ = writeln!(out, "top nodes by fault count:");
        for (node, count) in top_nodes(&self.faults, 5) {
            let _ = writeln!(out, "  {node}  {count}");
        }
        let _ = writeln!(
            out,
            "multi-bit corruption table rows: {}",
            table_i(&self.faults).len()
        );

        // Daily window spanning the faults, volume copied from provenance.
        let first_day = self.faults.first().map(|f| f.time.day_index()).unwrap_or(0);
        let days = self
            .faults
            .last()
            .map(|f| (f.time.day_index() - first_day + 1) as usize)
            .unwrap_or(1);
        let mut daily = DailySeries::new(first_day, days.max(1));
        daily.add_day_volume(&self.day_volume);
        daily.add_faults(&self.faults);
        let p = daily.scan_error_correlation();
        let _ = writeln!(
            out,
            "scan-volume vs daily-error Pearson: r = {:.4}, p = {:.4} over {} days",
            p.r, p.p_value, p.n
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_faultlog::ingest::recover_text;

    fn error_line(node: &str, t: i64, vaddr: u64, actual: u32) -> String {
        format!(
            "ERROR t={t} node={node} vaddr=0x{vaddr:08x} page=0x{page:06x} \
             expected=0xffffffff actual=0x{actual:08x} temp=35.0",
            page = vaddr >> 12
        )
    }

    pub(crate) fn small_cluster() -> (ClusterLog, IngestStats) {
        let mut stats = IngestStats::default();
        let mut logs = Vec::new();
        for (i, name) in ["01-01", "01-02", "02-01"].iter().enumerate() {
            let mut text = format!("START t=0 node={name} alloc=3221225472 temp=30.0\n");
            for k in 0..20 {
                let t = 100 + 1000 * k + i as i64;
                text.push_str(&error_line(name, t, 0x100 * (k as u64 + 1), 0xffff_fffe));
                text.push('\n');
            }
            text.push_str(&format!("END t=90000 node={name} temp=31.0\n"));
            let rec = recover_text(&text);
            assert!(rec.stats.is_conserved());
            stats.merge(&rec.stats);
            logs.push(rec.log);
        }
        (ClusterLog::new(logs), stats)
    }

    #[test]
    fn report_has_every_section_and_is_deterministic() {
        let (cluster, stats) = small_cluster();
        let snap = Snapshot::from_cluster(&cluster, stats);
        let text = snap.report_text();
        assert!(text.starts_with("loaded 3 node logs"));
        assert!(text.contains("independent faults:"));
        assert!(text.contains("multi-bit:"));
        assert!(text.contains("Pearson"));
        assert_eq!(text, Snapshot::from_cluster(&cluster, stats).report_text());
    }
}
