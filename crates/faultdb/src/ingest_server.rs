//! Framed TCP push ingest for a live database — `uc stream` on the node
//! side, `uc serve --ingest` on the server side.
//!
//! The wire protocol *is* the durable segment format
//! ([`uc_faultlog::durable`]): each direction opens with the `UCSEG1\n`
//! magic and then speaks length-prefixed, CRC-framed payloads — the same
//! bytes a node's durable logger writes to disk, so a torn TCP stream and
//! a torn file are the same problem with the same detector. Client
//! payloads:
//!
//! ```text
//! HELLO <node>        open a session for one node  → ACK <next-seq>
//! REC <seq> <line>    push record <seq> (no per-record reply)
//! FLUSH               make everything pushed durable → ACK <next-seq>
//! SEAL                flush + rebuild the served generation → ACK <next-seq>
//! BYE                 flush + close                 → ACK <next-seq>
//! ```
//!
//! Server payloads are `ACK <next-seq>` or `ERR <kind>: <message>`. The
//! `ACK` is the *only* durability signal: it is sent after the WAL
//! flush, never before, and it carries the server's cursor. A client
//! that reconnects (after a drop, a garbage frame, a crash) re-HELLOs,
//! reads the cursor, and resumes from there — records below the cursor
//! are never re-sent, records the server never flushed are; the
//! server ignores the duplicates a crashed-ack race can produce
//! ([`IngestOutcome::Duplicate`]). No loss, no double-count, for any
//! interleaving of failures. Sequence numbers *ahead* of the cursor are
//! a client-side bug and are rejected hard (`ERR gap`).
//!
//! Hostile-input posture mirrors the query server: bounded admission
//! (overload ⇒ typed `ERR overloaded`, never a hang), a per-connection
//! read deadline, a frame-size cap inherited from the segment format,
//! and any damaged frame ends the connection with a typed error — the
//! stream past unverifiable bytes is unverifiable too.

use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use uc_cluster::NodeId;
use uc_faultlog::chaos::{ChaosStream, NetChaosConfig, NetChaosTally};
use uc_faultlog::durable::{write_frame, FrameEvent, FrameReader, RetryPolicy, MAGIC};

use crate::catalog::{IngestOutcome, LiveDb};
use crate::error::DbError;
use crate::server::Admission;

/// Ingest-side tuning; `Default` suits tests.
#[derive(Clone, Debug)]
pub struct IngestConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads handling admitted node sessions.
    pub workers: usize,
    /// Admission queue capacity; sessions beyond it are rejected.
    pub queue: usize,
    /// Per-connection read deadline: a stalled or silent peer is
    /// disconnected, never waited on forever.
    pub idle_timeout: Duration,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue: 16,
            idle_timeout: Duration::from_secs(10),
        }
    }
}

/// Monotonic ingest counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestServerStats {
    /// Sessions admitted and handled.
    pub sessions: u64,
    /// Sessions shed at admission with `ERR overloaded`.
    pub rejected: u64,
    /// Connections ended by a typed protocol error (bad magic, damaged
    /// frame, gap, bad node …).
    pub protocol_errors: u64,
}

struct Inner {
    live: Arc<LiveDb>,
    cfg: IngestConfig,
    admission: Admission,
    addr: SocketAddr,
    sessions: AtomicU64,
    rejected: AtomicU64,
    protocol_errors: AtomicU64,
    /// Replication role, when this node is part of a replicated pair:
    /// replicas refuse pushes, fenced nodes refuse everything.
    role: Option<Arc<crate::repl::Role>>,
}

impl Inner {
    fn stats(&self) -> IngestServerStats {
        IngestServerStats {
            sessions: self.sessions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }

    fn shutdown(&self) {
        self.admission.stop();
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running ingest server over a shared [`LiveDb`].
pub struct IngestServer {
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Cloneable remote control for [`IngestServer::shutdown`].
#[derive(Clone)]
pub struct IngestShutdownHandle {
    inner: Arc<Inner>,
}

impl IngestShutdownHandle {
    pub fn shutdown(&self) {
        self.inner.shutdown();
    }
}

impl IngestServer {
    pub fn start(live: Arc<LiveDb>, cfg: &IngestConfig) -> Result<IngestServer, DbError> {
        IngestServer::start_with_role(live, cfg, None)
    }

    /// [`IngestServer::start`] with a replication [`crate::repl::Role`]:
    /// pushes are refused on replicas (`readonly`) and on fenced nodes
    /// (`fenced`); `SYNC` sessions are served according to the role's
    /// fencing state.
    pub fn start_with_role(
        live: Arc<LiveDb>,
        cfg: &IngestConfig,
        role: Option<Arc<crate::repl::Role>>,
    ) -> Result<IngestServer, DbError> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| DbError::io(std::path::Path::new(&cfg.addr), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| DbError::io(std::path::Path::new(&cfg.addr), e))?;
        let inner = Arc::new(Inner {
            live,
            cfg: cfg.clone(),
            admission: Admission::new(cfg.queue),
            addr,
            sessions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            role,
        });

        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                thread::spawn(move || {
                    while let Some(conn) = inner.admission.pop() {
                        inner.sessions.fetch_add(1, Ordering::Relaxed);
                        handle_session(&inner, conn);
                    }
                })
            })
            .collect();

        let acceptor = {
            let inner = Arc::clone(&inner);
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if inner.admission.stopping() {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if let Err(mut refused) = inner.admission.try_push(stream) {
                        if inner.admission.stopping() {
                            break;
                        }
                        inner.rejected.fetch_add(1, Ordering::Relaxed);
                        // Framed rejection: the client's frame reader
                        // parses it like any other server reply.
                        let _ = refused.write_all(MAGIC);
                        let _ = write_frame(
                            &mut refused,
                            b"ERR overloaded: ingest admission queue full, retry later",
                        );
                        let _ = refused.flush();
                    }
                }
            })
        };

        Ok(IngestServer {
            inner,
            acceptor: Some(acceptor),
            workers,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    pub fn stats(&self) -> IngestServerStats {
        self.inner.stats()
    }

    pub fn shutdown(&self) {
        self.inner.shutdown();
    }

    pub fn shutdown_handle(&self) -> IngestShutdownHandle {
        IngestShutdownHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    pub fn join(mut self) -> IngestServerStats {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.inner.stats()
    }
}

/// Send one framed `ERR` and give up on the connection.
fn refuse(inner: &Inner, w: &mut impl Write, kind: &str, msg: &str) {
    inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
    let _ = write_frame(w, format!("ERR {kind}: {msg}").as_bytes());
    let _ = w.flush();
}

fn ack(w: &mut impl Write, next_seq: u64) -> io::Result<()> {
    write_frame(w, format!("ACK {next_seq}").as_bytes())?;
    w.flush()
}

fn handle_session(inner: &Inner, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(inner.cfg.idle_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    if writer.write_all(MAGIC).is_err() {
        return;
    }
    let mut reader = FrameReader::new(BufReader::new(read_half));
    match reader.expect_magic() {
        Ok(true) => {}
        Ok(false) | Err(_) => {
            refuse(
                inner,
                &mut writer,
                "badmagic",
                "stream does not open with UCSEG1",
            );
            return;
        }
    }

    let mut node: Option<NodeId> = None;
    // Records accepted since the last WAL flush on *this* connection.
    // On any exit — clean BYE, damaged frame, timeout — they are flushed
    // so a reconnecting client's HELLO cursor reflects them; without
    // this, the final ack the client never saw would also lose the
    // records behind it.
    let mut unflushed = false;
    macro_rules! flush_residue {
        () => {
            if unflushed {
                let _ = inner.live.flush();
            }
        };
    }
    loop {
        let event = match reader.next_frame() {
            Ok(ev) => ev,
            Err(_) => {
                flush_residue!();
                return;
            }
        };
        let payload = match event {
            FrameEvent::Eof => {
                flush_residue!();
                return;
            }
            FrameEvent::Damaged(damage) => {
                flush_residue!();
                refuse(inner, &mut writer, "badframe", &damage.to_string());
                return;
            }
            FrameEvent::Frame(p) => p,
        };
        let Ok(text) = std::str::from_utf8(&payload) else {
            flush_residue!();
            refuse(inner, &mut writer, "badframe", "payload is not UTF-8");
            return;
        };

        if let Some(rest) = text.strip_prefix("SYNC ") {
            // A replication session: hand the connection to the shipper.
            // It owns the wire from here; typed refusals come back as
            // errors for the usual framed ERR path.
            let rest = rest.to_string();
            if let Err(e) = crate::repl::serve_shipping(
                &inner.live,
                inner.role.as_deref(),
                &rest,
                &mut reader,
                &mut writer,
            ) {
                refuse(inner, &mut writer, e.kind(), &e.to_string());
            }
            return;
        }
        if let Some(name) = text.strip_prefix("HELLO ") {
            if let Some(role) = &inner.role {
                // Typed, fail-fast refusal before any state changes: a
                // client pushing at the wrong node learns *why* (and, for
                // readonly, where the primary is) instead of timing out.
                let refusal = if role.is_fenced() {
                    Some(DbError::Fenced {
                        local_epoch: inner.live.epoch(),
                        peer_epoch: 0,
                        detail: role
                            .fence_reason()
                            .unwrap_or_else(|| "this node is fenced".into()),
                    })
                } else if role.is_readonly() {
                    Some(DbError::ReadOnly {
                        upstream: role.upstream().unwrap_or_default(),
                    })
                } else {
                    None
                };
                if let Some(e) = refusal {
                    refuse(inner, &mut writer, e.kind(), &e.to_string());
                    return;
                }
            }
            let Some(id) = NodeId::from_name(name.trim()) else {
                refuse(
                    inner,
                    &mut writer,
                    "badnode",
                    &format!("unknown node {name}"),
                );
                return;
            };
            node = Some(id);
            if ack(&mut writer, inner.live.next_seq(id)).is_err() {
                return;
            }
            continue;
        }
        if let Some(rest) = text.strip_prefix("REC ") {
            let Some(id) = node else {
                refuse(inner, &mut writer, "badcmd", "REC before HELLO");
                return;
            };
            let Some((seq_s, line)) = rest.split_once(' ') else {
                refuse(inner, &mut writer, "badcmd", "REC needs <seq> <line>");
                return;
            };
            let Ok(seq) = seq_s.parse::<u64>() else {
                refuse(inner, &mut writer, "badcmd", "REC sequence is not a number");
                return;
            };
            match inner.live.ingest(id, seq, line) {
                Ok(IngestOutcome::Accepted) => unflushed = true,
                Ok(IngestOutcome::Duplicate) => {}
                Ok(IngestOutcome::Gap { expected }) => {
                    flush_residue!();
                    refuse(
                        inner,
                        &mut writer,
                        "gap",
                        &format!("expected sequence {expected}, got {seq}"),
                    );
                    return;
                }
                Err(e) => {
                    flush_residue!();
                    refuse(inner, &mut writer, e.kind(), &e.to_string());
                    return;
                }
            }
            continue;
        }
        match text {
            "FLUSH" | "BYE" | "SEAL" => {
                let Some(id) = node else {
                    refuse(
                        inner,
                        &mut writer,
                        "badcmd",
                        &format!("{text} before HELLO"),
                    );
                    return;
                };
                let result = if text == "SEAL" {
                    inner.live.seal().map(drop)
                } else {
                    inner.live.flush()
                };
                if let Err(e) = result {
                    refuse(inner, &mut writer, e.kind(), &e.to_string());
                    return;
                }
                unflushed = false;
                if ack(&mut writer, inner.live.next_seq(id)).is_err() {
                    return;
                }
                if text == "BYE" {
                    return;
                }
            }
            other => {
                flush_residue!();
                let head: String = other.chars().take(32).collect();
                refuse(
                    inner,
                    &mut writer,
                    "badcmd",
                    &format!("unknown command {head}"),
                );
                return;
            }
        }
    }
}

// ------------------------------------------------------------- client side

/// Transport selector for [`stream_lines`]: production TCP or the same
/// socket wrapped in the fault-injecting [`ChaosStream`].
pub enum Wire {
    Plain(TcpStream),
    Chaos(Box<ChaosStream<TcpStream>>),
}

impl Read for Wire {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Wire::Plain(s) => s.read(buf),
            Wire::Chaos(s) => s.read(buf),
        }
    }
}

impl Write for Wire {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Wire::Plain(s) => s.write(buf),
            Wire::Chaos(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Wire::Plain(s) => s.flush(),
            Wire::Chaos(s) => s.flush(),
        }
    }
}

/// Client-side streaming knobs.
#[derive(Clone, Debug)]
pub struct StreamOptions {
    /// Records pushed between FLUSH/ACK checkpoints.
    pub batch: usize,
    /// Reconnect policy: `max_attempts` connection attempts with no
    /// cursor progress before giving up, with bounded exponential
    /// backoff (jittered per node/connect) between attempts. Progress
    /// (any ACK advancing the cursor) resets the budget — a lossy link
    /// that still moves forward eventually finishes.
    pub retry: RetryPolicy,
    /// Ask the server to seal a generation after the last record.
    pub seal_at_end: bool,
    /// Fault injection (None ⇒ plain TCP).
    pub chaos: Option<NetChaosConfig>,
}

impl Default for StreamOptions {
    fn default() -> StreamOptions {
        StreamOptions {
            batch: 64,
            retry: RetryPolicy {
                max_attempts: 10,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(100),
            },
            seal_at_end: false,
            chaos: None,
        }
    }
}

/// What a completed stream did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamReport {
    /// Records the server had durably accepted by the final ACK.
    pub acked: u64,
    /// TCP connections opened (1 = no failure ever forced a retry).
    pub connects: u32,
    /// Soft failures survived (resets, injected drops, overload sheds).
    pub retries: u32,
}

enum AttemptEnd {
    /// Every record acked (and the final SEAL/BYE answered).
    Done,
    /// Connection lost / shed; reconnect and resume from the cursor.
    Soft(io::Error),
    /// The server rejected the session for a reason retrying cannot fix.
    Hard(DbError),
}

/// One server reply, read through the frame layer.
fn read_reply(wire: &mut Wire) -> io::Result<Result<u64, (String, String)>> {
    let event = FrameReader::new(&mut *wire).next_frame()?;
    let payload = match event {
        FrameEvent::Frame(p) => p,
        FrameEvent::Eof => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed mid-reply",
            ))
        }
        FrameEvent::Damaged(d) => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("damaged server frame: {d}"),
            ))
        }
    };
    let text = String::from_utf8_lossy(&payload).into_owned();
    if let Some(n) = text.strip_prefix("ACK ") {
        let next = n
            .trim()
            .parse::<u64>()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "unparseable ACK"))?;
        return Ok(Ok(next));
    }
    if let Some(rest) = text.strip_prefix("ERR ") {
        let (kind, msg) = rest.split_once(": ").unwrap_or((rest, ""));
        return Ok(Err((kind.to_string(), msg.to_string())));
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unparseable server reply: {text}"),
    ))
}

/// Stream `lines` (record `i` has sequence number `i`) for one node,
/// surviving disconnects, injected faults, and overload sheds by
/// reconnecting and resuming from the server's acked cursor. Returns
/// only once every record is durably acked (plus the final seal, if
/// requested) — or a hard, typed failure.
pub fn stream_lines(
    addr: SocketAddr,
    node: NodeId,
    lines: &[String],
    opts: &StreamOptions,
    tally: Option<Arc<NetChaosTally>>,
) -> Result<StreamReport, DbError> {
    let mut report = StreamReport::default();
    let mut cursor: u64 = 0;
    let mut attempts_without_progress: u32 = 0;
    loop {
        report.connects += 1;
        let before = cursor;
        let end = attempt(
            addr,
            node,
            lines,
            opts,
            &tally,
            &mut cursor,
            report.connects,
        );
        match end {
            AttemptEnd::Done => {
                report.acked = cursor;
                return Ok(report);
            }
            AttemptEnd::Hard(e) => return Err(e),
            AttemptEnd::Soft(e) => {
                report.retries += 1;
                if cursor > before {
                    attempts_without_progress = 0;
                } else {
                    attempts_without_progress += 1;
                    if attempts_without_progress >= opts.retry.max_attempts.max(1) {
                        return Err(DbError::io(
                            std::path::Path::new(&addr.to_string()),
                            io::Error::new(
                                e.kind(),
                                format!(
                                    "gave up after {} attempts without progress: {e}",
                                    attempts_without_progress
                                ),
                            ),
                        ));
                    }
                }
                // Jitter keyed by (node, connect): concurrent streamers
                // knocked over by the same fault desynchronize instead
                // of reconnecting in lockstep, deterministically.
                let key = (u64::from(node.0) << 32) | u64::from(report.connects);
                thread::sleep(
                    opts.retry
                        .delay_for_jittered(attempts_without_progress.max(1), key),
                );
            }
        }
    }
}

fn classify_err(kind: &str, msg: &str) -> AttemptEnd {
    match kind {
        // Shed or transient server-side I/O: the record set is intact,
        // retry with backoff.
        "overloaded" | "io" | "timeout" => AttemptEnd::Soft(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("{kind}: {msg}"),
        )),
        // Everything else means the session itself is wrong (gap, bad
        // node, protocol damage the server attributes to us): retrying
        // the same bytes cannot succeed.
        _ => AttemptEnd::Hard(DbError::Query(format!(
            "server rejected stream: {kind}: {msg}"
        ))),
    }
}

fn attempt(
    addr: SocketAddr,
    node: NodeId,
    lines: &[String],
    opts: &StreamOptions,
    tally: &Option<Arc<NetChaosTally>>,
    cursor: &mut u64,
    connect_index: u32,
) -> AttemptEnd {
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => return AttemptEnd::Soft(e),
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut wire = match &opts.chaos {
        None => Wire::Plain(stream),
        Some(cfg) => {
            let tally = tally.clone().unwrap_or_default();
            // A fresh stream key per connection: each attempt draws its
            // own deterministic fault schedule instead of replaying the
            // last one (which could fail forever at the same byte).
            let key = (u64::from(node.0) << 32) | u64::from(connect_index);
            Wire::Chaos(Box::new(ChaosStream::new(stream, *cfg, key, tally)))
        }
    };

    macro_rules! soft {
        ($e:expr) => {
            return AttemptEnd::Soft($e)
        };
    }

    if let Err(e) = wire.write_all(MAGIC) {
        soft!(e);
    }
    if let Err(e) = write_frame(&mut wire, format!("HELLO {node}").as_bytes()) {
        soft!(e);
    }
    if let Err(e) = wire.flush() {
        soft!(e);
    }
    match FrameReader::new(&mut wire).expect_magic() {
        Ok(true) => {}
        Ok(false) => soft!(io::Error::new(
            io::ErrorKind::InvalidData,
            "server did not open with UCSEG1"
        )),
        Err(e) => soft!(e),
    }
    match read_reply(&mut wire) {
        Ok(Ok(next)) => {
            // An empty line set is a control session (e.g. seal-only);
            // the server legitimately remembers records from earlier
            // sessions, so the collision check only applies when we
            // actually carry a corpus.
            if !lines.is_empty() && next > lines.len() as u64 {
                return AttemptEnd::Hard(DbError::Query(format!(
                    "server cursor {next} is past our {} records — node name collision?",
                    lines.len()
                )));
            }
            *cursor = (*cursor).max(next);
        }
        Ok(Err((kind, msg))) => return classify_err(&kind, &msg),
        Err(e) => soft!(e),
    }

    let batch = opts.batch.max(1);
    let mut i = *cursor as usize;
    while i < lines.len() {
        let upto = (i + batch).min(lines.len());
        for (seq, line) in lines.iter().enumerate().take(upto).skip(i) {
            if let Err(e) = write_frame(&mut wire, format!("REC {seq} {line}").as_bytes()) {
                soft!(e);
            }
        }
        if let Err(e) = write_frame(&mut wire, b"FLUSH") {
            soft!(e);
        }
        if let Err(e) = wire.flush() {
            soft!(e);
        }
        match read_reply(&mut wire) {
            Ok(Ok(next)) => {
                if next < *cursor || next > upto as u64 {
                    return AttemptEnd::Hard(DbError::Query(format!(
                        "server cursor moved {} → {next}, outside the batch we pushed",
                        *cursor
                    )));
                }
                *cursor = next;
                i = next as usize;
            }
            Ok(Err((kind, msg))) => return classify_err(&kind, &msg),
            Err(e) => soft!(e),
        }
    }

    let parting: &[u8] = if opts.seal_at_end { b"SEAL" } else { b"BYE" };
    if let Err(e) = write_frame(&mut wire, parting) {
        soft!(e);
    }
    if let Err(e) = wire.flush() {
        soft!(e);
    }
    match read_reply(&mut wire) {
        Ok(Ok(_)) => AttemptEnd::Done,
        Ok(Err((kind, msg))) => classify_err(&kind, &msg),
        Err(e) => AttemptEnd::Soft(e),
    }
}

// --------------------------------------------------------------- selftest

/// What `uc serve --ingest --selftest N` reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct IngestSelftestReport {
    pub clients: usize,
    pub records_sent: u64,
    pub records_acked: u64,
    pub reconnects: u64,
    pub chaos_events: u64,
    pub sheds: u64,
    /// Divergences between the live database and the batch oracle —
    /// zero or the selftest failed.
    pub mismatches: u64,
}

/// Deterministic synthetic corpus for one node: a session with a burst
/// of single-bit errors, shaped like the campaign's real logs.
fn synthetic_lines(node: &str, client: usize, records: usize) -> Vec<String> {
    let mut lines = Vec::with_capacity(records + 2);
    lines.push(format!("START t=0 node={node} alloc=3221225472 temp=30.0"));
    for k in 0..records {
        let vaddr = 0x400 + 0x100 * (k as u64) + ((client as u64) << 20);
        lines.push(format!(
            "ERROR t={t} node={node} vaddr=0x{vaddr:08x} page=0x{page:06x} \
             expected=0xffffffff actual=0xfffffffe temp=33.0",
            t = 60 + 7200 * (k as i64),
            page = vaddr >> 12
        ));
    }
    lines.push(format!(
        "END t={t} node={node} temp=31.0",
        t = 7200 * records as i64 + 120
    ));
    lines
}

/// End-to-end proof of the live path under fault injection: N chaos-
/// wrapped clients stream synthetic corpora into an *under-provisioned*
/// ingest server (so overload sheds happen) while a query client hammers
/// the live handle; afterwards the sealed generation must answer every
/// selftest query byte-identically to a batch-built oracle over the same
/// records — and the generation file itself must be byte-identical to
/// the oracle's database file.
pub fn ingest_selftest(
    live_dir: &std::path::Path,
    clients: usize,
    seed: u64,
) -> Result<IngestSelftestReport, DbError> {
    use crate::format::WriteOptions;
    use crate::server::{Client, Response, ServeConfig, Server, SELFTEST_QUERIES};

    let clients = clients.clamp(1, 16);
    let records_per_client = 40;
    let (live, _) = LiveDb::open(live_dir)?;
    let live = Arc::new(live);

    // Deliberately tight: 2 workers, queue of 2 — with more clients than
    // that, sheds are likely and the retry path gets exercised for real.
    let cfg = IngestConfig {
        workers: 2,
        queue: 2,
        ..IngestConfig::default()
    };
    let ingest = IngestServer::start(Arc::clone(&live), &cfg)?;
    let ingest_addr = ingest.local_addr();
    let query_server = Server::start(live.handle(), &ServeConfig::default())?;
    let query_addr = query_server.local_addr();

    // Queries run *while* ingest is in flight: every answer must come
    // from exactly one sealed generation (snapshot isolation), so the
    // only acceptable responses are clean answers or typed sheds.
    let query_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let query_thread = {
        let stop = Arc::clone(&query_stop);
        thread::spawn(move || -> u64 {
            let mut errors = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if let Ok(mut c) = Client::connect(query_addr) {
                    match c.request("count") {
                        Ok(Response::Ok(lines)) => {
                            if lines.len() != 1 || lines[0].parse::<u64>().is_err() {
                                errors += 1;
                            }
                        }
                        Ok(Response::Err { kind, .. }) if kind == "overloaded" => {}
                        _ => errors += 1,
                    }
                }
                thread::sleep(Duration::from_millis(2));
            }
            errors
        })
    };

    let tally = Arc::new(NetChaosTally::default());
    let mut report = IngestSelftestReport {
        clients,
        ..IngestSelftestReport::default()
    };
    let streams: Vec<JoinHandle<Result<(StreamReport, u64), DbError>>> = (0..clients)
        .map(|c| {
            let name = format!("{:02}-{:02}", 1 + c / 8, 1 + c % 8);
            let lines = synthetic_lines(&name, c, records_per_client);
            let opts = StreamOptions {
                batch: 16,
                retry: RetryPolicy {
                    max_attempts: 50,
                    base_delay: Duration::from_millis(2),
                    max_delay: Duration::from_millis(50),
                },
                seal_at_end: false,
                chaos: Some(NetChaosConfig::hostile(
                    seed ^ (c as u64).wrapping_mul(0x9E37),
                )),
            };
            let tally = Arc::clone(&tally);
            thread::spawn(move || {
                let node = NodeId::from_name(&name).expect("selftest names are valid");
                let sent = lines.len() as u64;
                stream_lines(ingest_addr, node, &lines, &opts, Some(tally)).map(|r| (r, sent))
            })
        })
        .collect();
    for t in streams {
        match t.join() {
            Ok(Ok((r, sent))) => {
                report.records_sent += sent;
                report.records_acked += r.acked;
                report.reconnects += u64::from(r.connects.saturating_sub(1));
            }
            Ok(Err(_)) | Err(_) => report.mismatches += 1,
        }
    }
    report.chaos_events = tally.total();
    report.sheds = ingest.stats().rejected;

    // Seal the final generation and stop the churn.
    live.seal()?;
    query_stop.store(true, Ordering::Relaxed);
    report.mismatches += query_thread.join().unwrap_or(1);

    // Batch oracle: the same records as plain text log files.
    let oracle_dir = live_dir.join("selftest-oracle");
    let _ = std::fs::remove_dir_all(&oracle_dir);
    std::fs::create_dir_all(&oracle_dir).map_err(|e| DbError::io(&oracle_dir, e))?;
    for c in 0..clients {
        let name = format!("{:02}-{:02}", 1 + c / 8, 1 + c % 8);
        let lines = synthetic_lines(&name, c, records_per_client);
        let mut text = lines.join("\n");
        text.push('\n');
        std::fs::write(oracle_dir.join(format!("node-{name}.log")), text)
            .map_err(|e| DbError::io(&oracle_dir, e))?;
    }
    let oracle_db_path = live_dir.join("selftest-oracle.ucfdb");
    crate::build::build_db(&oracle_dir, &oracle_db_path, &WriteOptions::default())?;

    // Strongest possible equivalence: the served generation *file* is
    // byte-identical to the batch-built database.
    let status = live.status();
    let gen_path = live_dir.join(crate::catalog::gen_file_name(status.generation));
    let live_bytes = std::fs::read(&gen_path).map_err(|e| DbError::io(&gen_path, e))?;
    let oracle_bytes =
        std::fs::read(&oracle_db_path).map_err(|e| DbError::io(&oracle_db_path, e))?;
    if live_bytes != oracle_bytes {
        report.mismatches += 1;
    }

    // And the query layer agrees, over the wire.
    let oracle = crate::db::FaultDb::open(&oracle_db_path)?;
    if let Ok(mut c) = Client::connect(query_addr) {
        for q in SELFTEST_QUERIES {
            let expected = uc_parallel::with_thread_limit(1, || {
                oracle
                    .query(q, &crate::db::QueryOptions::default())
                    .map(|r| r.lines)
            })?;
            match c.request(q) {
                Ok(Response::Ok(lines)) if lines == expected => {}
                _ => report.mismatches += 1,
            }
        }
    } else {
        report.mismatches += 1;
    }

    ingest.shutdown();
    ingest.join();
    query_server.shutdown();
    query_server.join();
    let _ = std::fs::remove_dir_all(&oracle_dir);
    let _ = std::fs::remove_file(&oracle_db_path);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::{Path, PathBuf};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uc-ing-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn n(name: &str) -> NodeId {
        NodeId::from_name(name).unwrap()
    }

    fn error_lines(node: &str, count: usize) -> Vec<String> {
        synthetic_lines(node, 0, count)
    }

    fn start_pair(dir: &Path, cfg: &IngestConfig) -> (Arc<LiveDb>, IngestServer) {
        let (live, _) = LiveDb::open(dir).unwrap();
        let live = Arc::new(live);
        let server = IngestServer::start(Arc::clone(&live), cfg).unwrap();
        (live, server)
    }

    #[test]
    fn clean_stream_is_acked_and_replay_is_idempotent() {
        let dir = tmpdir("clean");
        let (live, server) = start_pair(&dir, &IngestConfig::default());
        let lines = error_lines("01-01", 10);
        let r = stream_lines(
            server.local_addr(),
            n("01-01"),
            &lines,
            &StreamOptions::default(),
            None,
        )
        .unwrap();
        assert_eq!(r.acked, 12);
        assert_eq!(r.connects, 1);
        // The whole stream again — every record is a duplicate; the
        // cursor from HELLO skips them all without a single re-append.
        let r2 = stream_lines(
            server.local_addr(),
            n("01-01"),
            &lines,
            &StreamOptions::default(),
            None,
        )
        .unwrap();
        assert_eq!(r2.acked, 12);
        assert_eq!(live.status().records, 12);
        server.shutdown();
        server.join();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gap_is_rejected_hard() {
        let dir = tmpdir("gap");
        let (_live, server) = start_pair(&dir, &IngestConfig::default());
        let addr = server.local_addr();
        let mut wire = Wire::Plain(TcpStream::connect(addr).unwrap());
        wire.write_all(MAGIC).unwrap();
        write_frame(&mut wire, b"HELLO 01-01").unwrap();
        wire.flush().unwrap();
        assert!(FrameReader::new(&mut wire).expect_magic().unwrap());
        assert_eq!(read_reply(&mut wire).unwrap(), Ok(0));
        write_frame(&mut wire, b"REC 7 skipped ahead").unwrap();
        write_frame(&mut wire, b"FLUSH").unwrap();
        wire.flush().unwrap();
        match read_reply(&mut wire).unwrap() {
            Err((kind, msg)) => {
                assert_eq!(kind, "gap");
                assert!(msg.contains("expected sequence 0"), "{msg}");
            }
            other => panic!("expected gap rejection, got {other:?}"),
        }
        server.shutdown();
        server.join();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_frame_gets_typed_badframe() {
        let dir = tmpdir("garbage");
        let (_live, server) = start_pair(&dir, &IngestConfig::default());
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.write_all(MAGIC).unwrap();
        s.write_all(&[0xFF; 64]).unwrap(); // not a frame
        s.flush().unwrap();
        let mut r = FrameReader::new(BufReader::new(s.try_clone().unwrap()));
        assert!(r.expect_magic().unwrap());
        match r.next_frame().unwrap() {
            FrameEvent::Frame(p) => {
                let text = String::from_utf8_lossy(&p).into_owned();
                assert!(text.starts_with("ERR badframe:"), "{text}");
            }
            other => panic!("expected framed error, got {other:?}"),
        }
        assert!(server.stats().protocol_errors >= 1);
        server.shutdown();
        server.join();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_node_name_is_rejected_hard() {
        let dir = tmpdir("badnode");
        let (_live, server) = start_pair(&dir, &IngestConfig::default());
        let lines = error_lines("01-01", 2);
        let err = stream_lines(
            server.local_addr(),
            n("01-01"),
            &lines,
            &StreamOptions::default(),
            None,
        );
        assert!(err.is_ok());
        // Forge a HELLO with an off-topology name straight on the wire.
        let mut wire = Wire::Plain(TcpStream::connect(server.local_addr()).unwrap());
        wire.write_all(MAGIC).unwrap();
        write_frame(&mut wire, b"HELLO 99-99").unwrap();
        wire.flush().unwrap();
        assert!(FrameReader::new(&mut wire).expect_magic().unwrap());
        match read_reply(&mut wire).unwrap() {
            Err((kind, _)) => assert_eq!(kind, "badnode"),
            other => panic!("expected badnode, got {other:?}"),
        }
        server.shutdown();
        server.join();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overload_is_shed_framed_and_typed() {
        let dir = tmpdir("overload");
        let cfg = IngestConfig {
            workers: 1,
            queue: 1,
            idle_timeout: Duration::from_millis(400),
            ..IngestConfig::default()
        };
        let (_live, server) = start_pair(&dir, &cfg);
        let addr = server.local_addr();
        // Park a session in the worker and one in the queue.
        let parked = TcpStream::connect(addr).unwrap();
        thread::sleep(Duration::from_millis(50));
        let _queued = TcpStream::connect(addr).unwrap();
        thread::sleep(Duration::from_millis(50));
        let shed = TcpStream::connect(addr).unwrap();
        let mut r = FrameReader::new(BufReader::new(shed));
        assert!(r.expect_magic().unwrap());
        match r.next_frame().unwrap() {
            FrameEvent::Frame(p) => {
                let text = String::from_utf8_lossy(&p).into_owned();
                assert!(text.starts_with("ERR overloaded:"), "{text}");
            }
            other => panic!("expected overload frame, got {other:?}"),
        }
        drop(parked);
        assert!(server.stats().rejected >= 1);
        server.shutdown();
        server.join();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_stream_delivers_everything_exactly_once() {
        let dir = tmpdir("chaos");
        let (live, server) = start_pair(&dir, &IngestConfig::default());
        // A quiet second node keeps the chaos node under the flood
        // filter's 50% share, so its faults actually appear in queries.
        let quiet = error_lines("01-02", 30);
        stream_lines(
            server.local_addr(),
            n("01-02"),
            &quiet,
            &StreamOptions::default(),
            None,
        )
        .unwrap();
        let lines = error_lines("01-01", 30);
        let tally = Arc::new(NetChaosTally::default());
        let opts = StreamOptions {
            batch: 4,
            retry: RetryPolicy {
                max_attempts: 100,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(20),
            },
            seal_at_end: true,
            chaos: Some(NetChaosConfig::hostile(7)),
        };
        let r = stream_lines(
            server.local_addr(),
            n("01-01"),
            &lines,
            &opts,
            Some(Arc::clone(&tally)),
        )
        .unwrap();
        assert_eq!(r.acked, lines.len() as u64, "all records durable");
        assert_eq!(
            live.status().records,
            (lines.len() + quiet.len()) as u64,
            "no duplicates appended despite {} retries",
            r.retries
        );
        assert!(tally.total() > 0, "chaos actually fired");
        assert_eq!(live.handle().current().rows(), 60, "sealed and served");
        server.shutdown();
        server.join();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn selftest_under_chaos_matches_batch_oracle_byte_for_byte() {
        let dir = tmpdir("selftest");
        let report = ingest_selftest(&dir, 3, 42).unwrap();
        assert_eq!(report.mismatches, 0, "{report:?}");
        assert_eq!(report.records_acked, report.records_sent, "{report:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
