//! `uc build-db`: text log directory → sealed columnar database.
//!
//! The build path is deliberately the analyze path with a different
//! sink: the same recovering ingest, the same extraction, the same
//! provenance capture ([`Snapshot::from_cluster`]) — then [`write_db`]
//! instead of a printed report. That shared spine is what makes
//! `uc analyze --db` byte-identical to `uc analyze` on the raw logs.

use std::io;
use std::path::Path;

use uc_faultlog::ingest::read_cluster_log_recovering;

use crate::error::DbError;
use crate::format::{write_db, WriteOptions, WriteSummary};
use crate::shard::{write_sharded, RootWriteSummary};
use crate::snapshot::Snapshot;

/// Ingest a log directory (with recovery) and seal it as a database.
pub fn build_db(logdir: &Path, out: &Path, opts: &WriteOptions) -> Result<WriteSummary, DbError> {
    let (cluster, stats) = read_cluster_log_recovering(logdir)
        .map_err(|e| DbError::io(logdir, io::Error::other(e.to_string())))?;
    let snapshot = Snapshot::from_cluster(&cluster, stats);
    write_db(&snapshot, out, opts)
}

/// `uc build-db --shard N`: the same ingest-and-extract spine, sealed as
/// a (time window × rack) sharded root directory instead of one file.
pub fn build_sharded_db(
    logdir: &Path,
    out: &Path,
    windows: usize,
    opts: &WriteOptions,
) -> Result<RootWriteSummary, DbError> {
    let (cluster, stats) = read_cluster_log_recovering(logdir)
        .map_err(|e| DbError::io(logdir, io::Error::other(e.to_string())))?;
    let snapshot = Snapshot::from_cluster(&cluster, stats);
    write_sharded(&snapshot, out, windows, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::FaultDb;
    use std::fs;

    #[test]
    fn build_from_logs_roundtrips_the_snapshot() {
        let dir = std::env::temp_dir().join(format!("uc-faultdb-build-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let logs = dir.join("logs");
        fs::create_dir_all(&logs).unwrap();
        for name in ["01-01", "01-02"] {
            let mut text = format!("START t=0 node={name} alloc=3221225472 temp=30.0\n");
            for k in 0..10 {
                let t = 50 + 600 * k;
                let vaddr = 0x80u64 * (k as u64 + 1);
                text.push_str(&format!(
                    "ERROR t={t} node={name} vaddr=0x{vaddr:08x} page=0x{page:06x} \
                     expected=0xffffffff actual=0xfffffffe temp=33.0\n",
                    page = vaddr >> 12
                ));
            }
            text.push_str(&format!("END t=90000 node={name} temp=31.0\n"));
            fs::write(logs.join(format!("node-{name}.log")), text).unwrap();
        }

        let out = dir.join("faults.fdb");
        let summary = build_db(&logs, &out, &WriteOptions::default()).unwrap();
        assert!(summary.rows > 0);

        // The database snapshot must render the same report as a fresh
        // ingest-and-extract over the same logs.
        let (cluster, stats) = read_cluster_log_recovering(&logs).unwrap();
        let direct = Snapshot::from_cluster(&cluster, stats);
        let db = FaultDb::open(&out).unwrap();
        let roundtripped = db.snapshot().unwrap();
        assert_eq!(roundtripped, direct);
        assert_eq!(roundtripped.report_text(), direct.report_text());
    }

    #[test]
    fn missing_log_directory_is_an_io_error() {
        let out = std::env::temp_dir().join("uc-faultdb-build-missing.fdb");
        let err = build_db(
            Path::new("/nonexistent/uc-logs"),
            &out,
            &WriteOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, DbError::Io { .. }));
    }
}
