//! Typed errors for every way a fault database can fail.
//!
//! The corruption-safety contract is: damage is *detected and named*,
//! never silently folded into query results. Any truncation or bit flip
//! in a database file surfaces as one of these variants — either at
//! [`crate::FaultDb::open`] (magic, trailer, footer) or at block-decode
//! time (payload CRC) — and the engine propagates it instead of
//! answering from a corrupt block.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Why a block failed its integrity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockDamage {
    /// Stored CRC-32 does not match the payload bytes.
    ChecksumMismatch,
    /// The footer's (offset, length) points outside the block region.
    OutOfBounds,
    /// Payload length disagrees with the row count's column layout.
    LayoutMismatch,
    /// A decoded column value is not representable (e.g. bad node id).
    BadValue,
}

impl fmt::Display for BlockDamage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockDamage::ChecksumMismatch => write!(f, "checksum mismatch"),
            BlockDamage::OutOfBounds => write!(f, "offset/length out of bounds"),
            BlockDamage::LayoutMismatch => write!(f, "payload length disagrees with layout"),
            BlockDamage::BadValue => write!(f, "column value out of range"),
        }
    }
}

/// Database open/decode/query failure.
#[derive(Debug)]
pub enum DbError {
    /// I/O error touching the database file.
    Io { path: PathBuf, source: io::Error },
    /// File too short to even hold magic + trailer.
    TooShort { len: u64 },
    /// Leading magic bytes are not a faultdb's.
    BadMagic,
    /// Trailer or footer failed validation (bounds or CRC); the index
    /// cannot be trusted, so nothing can.
    BadFooter(String),
    /// Unsupported format version.
    BadVersion(u32),
    /// Block `index` failed its integrity check.
    BlockCorrupt { index: u32, damage: BlockDamage },
    /// Query text failed to parse.
    Query(String),
    /// The per-request deadline passed before the scan finished.
    Timeout,
    /// A live-db durability operation (WAL append/flush/seal) failed.
    Durable(uc_faultlog::DurabilityError),
    /// The live directory's generation catalog is damaged or inconsistent.
    Catalog(String),
    /// A request line exceeded the server's cap; the connection is closed
    /// rather than growing an unbounded buffer.
    LineTooLong { limit: usize },
    /// Another process owns the live directory (its PID is stamped in the
    /// lock file); concurrent serve/fsck/scrub would race the catalog.
    Locked { path: PathBuf, pid: u32 },
    /// A replication peer from a superseded epoch tried to push or serve
    /// history that conflicts with the promoted timeline.
    Fenced {
        local_epoch: u64,
        peer_epoch: u64,
        detail: String,
    },
    /// Two nodes disagree about the record stream at the same cursor —
    /// one of them holds forked history that must not be merged silently.
    Diverged(String),
    /// This node is a syncing replica; writes must go to the primary.
    ReadOnly { upstream: String },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            DbError::TooShort { len } => {
                write!(f, "file of {len} bytes is too short to be a faultdb")
            }
            DbError::BadMagic => write!(f, "not a faultdb file (bad magic)"),
            DbError::BadFooter(why) => write!(f, "corrupt footer: {why}"),
            DbError::BadVersion(v) => write!(f, "unsupported faultdb format version {v}"),
            DbError::BlockCorrupt { index, damage } => {
                write!(f, "block {index} corrupt: {damage}")
            }
            DbError::Query(why) => write!(f, "bad query: {why}"),
            DbError::Timeout => write!(f, "query deadline exceeded"),
            DbError::Durable(e) => write!(f, "durability failure: {e}"),
            DbError::Catalog(why) => write!(f, "catalog: {why}"),
            DbError::LineTooLong { limit } => {
                write!(f, "request exceeds the {limit}-byte line cap")
            }
            DbError::Locked { path, pid } => {
                write!(f, "{} is locked by live pid {pid}", path.display())
            }
            DbError::Fenced {
                local_epoch,
                peer_epoch,
                detail,
            } => write!(
                f,
                "fenced: peer epoch {peer_epoch} vs local epoch {local_epoch}: {detail}"
            ),
            DbError::Diverged(why) => write!(f, "history diverged: {why}"),
            DbError::ReadOnly { upstream } => {
                write!(f, "replica of {upstream} is read-only; push to the primary")
            }
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io { source, .. } => Some(source),
            DbError::Durable(source) => Some(source),
            _ => None,
        }
    }
}

impl From<uc_faultlog::DurabilityError> for DbError {
    fn from(e: uc_faultlog::DurabilityError) -> DbError {
        DbError::Durable(e)
    }
}

impl DbError {
    pub fn io(path: impl Into<PathBuf>, source: io::Error) -> DbError {
        DbError::Io {
            path: path.into(),
            source,
        }
    }

    /// Short machine-readable category, used as the wire error kind by the
    /// server (`ERR <kind>: <detail>`).
    pub fn kind(&self) -> &'static str {
        match self {
            DbError::Io { .. } => "io",
            DbError::TooShort { .. } | DbError::BadMagic => "notadb",
            DbError::BadFooter(_) | DbError::BadVersion(_) => "corrupt",
            DbError::BlockCorrupt { .. } => "corrupt",
            DbError::Query(_) => "parse",
            DbError::Timeout => "timeout",
            DbError::Durable(_) => "io",
            DbError::Catalog(_) => "corrupt",
            DbError::LineTooLong { .. } => "line-too-long",
            DbError::Locked { .. } => "locked",
            DbError::Fenced { .. } => "fenced",
            DbError::Diverged(_) => "diverged",
            DbError::ReadOnly { .. } => "readonly",
        }
    }
}
