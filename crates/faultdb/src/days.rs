//! Day-ordered streaming iteration over an [`Engine`] — the replay feed
//! for the online mitigation policy engine (`crates/policy`, `uc policy`).
//!
//! The policy engine consumes the fault stream one simulated day at a
//! time. Rather than decoding the whole database up front, [`DayStream`]
//! issues one window query per day — `time >= d·86400 and
//! time < (d+1)·86400` — through the normal query path, so zone-map
//! pruning (block-level for a single file, shard-level then block-level
//! for a root) skips every block whose time range misses the day. A
//! year-long database answers each day's pull by touching only the
//! handful of blocks that overlap it.
//!
//! Boundary contract: day `d` covers `[d·86400, (d+1)·86400)` — half-open,
//! exactly [`SimTime::day_index`]'s `div_euclid` partition — so a fault at
//! exactly midnight belongs to the *starting* day and to no other. The
//! stream yields **every** day in the database's span, including empty
//! ones (a policy charges daily costs whether or not faults landed), and
//! concatenating the per-day faults reproduces `faults_all()` exactly.
//! `tests/faultdb_days.rs` proves both properties against a brute-force
//! `day_index` partition.

use uc_analysis::extract::merge_sorted_fault_streams;
use uc_analysis::fault::Fault;
use uc_simclock::SimTime;

use crate::error::DbError;
use crate::query::{Action, Pred, Query};
use crate::shard::Engine;
use crate::QueryOptions;

/// One simulated day of the fault stream.
#[derive(Clone, Debug, PartialEq)]
pub struct DayFaults {
    /// Day index (`SimTime::day_index` of every fault in `faults`).
    pub day: i64,
    /// The day's faults in global sort order. May be empty.
    pub faults: Vec<Fault>,
}

/// The half-open window query for day `d`: `[d·86400, (d+1)·86400)`.
fn day_query(day: i64) -> Query {
    let lo = SimTime::from_secs(day.saturating_mul(86_400));
    let hi = SimTime::from_secs(day.saturating_add(1).saturating_mul(86_400));
    Query {
        action: Action::List { limit: None },
        pred: Pred::And(Box::new(Pred::TimeGe(lo)), Box::new(Pred::TimeLt(hi))),
    }
}

impl Engine {
    /// Inclusive `(first_day, last_day)` bounds of the stored stream,
    /// straight from the footer/catalog zone maps — no block is decoded.
    /// `None` for an empty database.
    pub fn day_bounds(&self) -> Option<(i64, i64)> {
        let mut bounds: Option<(i64, i64)> = None;
        let mut fold = |min_time: i64, max_time: i64| {
            let lo = SimTime::from_secs(min_time).day_index();
            let hi = SimTime::from_secs(max_time).day_index();
            bounds = Some(match bounds {
                None => (lo, hi),
                Some((a, b)) => (a.min(lo), b.max(hi)),
            });
        };
        match self {
            Engine::Single(db) => {
                for block in &db.footer().blocks {
                    fold(block.zone.min_time, block.zone.max_time);
                }
            }
            Engine::Root(db) => {
                for shard in &db.catalog().shards {
                    fold(shard.zone.min_time, shard.zone.max_time);
                }
            }
        }
        bounds
    }

    /// All faults of one day, in global sort order. Zone maps prune the
    /// scan to blocks overlapping the window; a day outside the stored
    /// span decodes nothing and returns empty.
    pub fn faults_on_day(&self, day: i64) -> Result<Vec<Fault>, DbError> {
        let q = day_query(day);
        let opts = QueryOptions::default();
        match self {
            Engine::Single(db) => {
                let (mut agg, _) = db.run_partial(&q, &opts, true)?;
                Ok(std::mem::take(&mut agg.rows))
            }
            Engine::Root(db) => {
                // Mirror the root list path: shards are the unit of
                // parallelism (sequential inside, so the pool is never
                // nested), merged with the deterministic k-way merge.
                let survivors = db.day_survivors(&q);
                let partials = uc_parallel::par_map(&survivors, |_, &s| {
                    db.shard(s).run_partial(&q, &opts, false)
                });
                let mut streams = Vec::with_capacity(partials.len());
                for partial in partials {
                    let (mut agg, _) = partial?;
                    streams.push(std::mem::take(&mut agg.rows));
                }
                Ok(merge_sorted_fault_streams(streams))
            }
        }
    }

    /// Iterate the stored stream one day at a time, **including empty
    /// days**, from the first stored day through the last. Each pull
    /// runs one pruned window scan; nothing is buffered across days.
    pub fn day_stream(&self) -> DayStream<'_> {
        let bounds = self.day_bounds();
        DayStream {
            engine: self,
            next: bounds.map(|(lo, _)| lo).unwrap_or(0),
            last: bounds.map(|(_, hi)| hi).unwrap_or(-1),
            failed: false,
        }
    }

    /// Collect the whole day stream; the policy replay driver's feed.
    pub fn collect_days(&self) -> Result<Vec<DayFaults>, DbError> {
        self.day_stream().collect()
    }
}

/// Iterator over [`DayFaults`], day by ascending day. After the first
/// error the stream fuses (a corrupt block would otherwise error on
/// every subsequent overlapping day).
pub struct DayStream<'a> {
    engine: &'a Engine,
    next: i64,
    last: i64,
    failed: bool,
}

impl Iterator for DayStream<'_> {
    type Item = Result<DayFaults, DbError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.next > self.last {
            return None;
        }
        let day = self.next;
        self.next += 1;
        match self.engine.faults_on_day(day) {
            Ok(faults) => {
                debug_assert!(
                    faults.iter().all(|f| f.time.day_index() == day),
                    "window query leaked a fault across the day boundary"
                );
                Some(Ok(DayFaults { day, faults }))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_query_window_is_half_open() {
        let q = day_query(3);
        let mk = |secs: i64| Fault {
            node: uc_cluster::NodeId(1),
            time: SimTime::from_secs(secs),
            vaddr: 0,
            expected: 0,
            actual: 1,
            temp: None,
            raw_logs: 1,
        };
        // First second of day 3 is in; last second of day 2 and the
        // exact start of day 4 are out.
        assert!(q.pred.matches(&mk(3 * 86_400)));
        assert!(q.pred.matches(&mk(4 * 86_400 - 1)));
        assert!(!q.pred.matches(&mk(3 * 86_400 - 1)));
        assert!(!q.pred.matches(&mk(4 * 86_400)));
    }

    #[test]
    fn negative_days_partition_consistently() {
        // div_euclid day indexing: second -1 is day -1, second -86400 too.
        let q = day_query(-1);
        let mk = |secs: i64| Fault {
            node: uc_cluster::NodeId(1),
            time: SimTime::from_secs(secs),
            vaddr: 0,
            expected: 0,
            actual: 1,
            temp: None,
            raw_logs: 1,
        };
        assert!(q.pred.matches(&mk(-1)));
        assert!(q.pred.matches(&mk(-86_400)));
        assert!(!q.pred.matches(&mk(0)));
        assert!(!q.pred.matches(&mk(-86_401)));
    }
}
