//! Node/blade identifiers and the machine layout.

use core::fmt;

use crate::{
    BLADES_PER_CHASSIS, CHASSIS_PER_RACK, MONITORED_BLADES, SOCS_PER_BLADE, TOTAL_BLADES,
    TOTAL_NODES,
};

/// A blade index, `0..TOTAL_BLADES`. Displayed 1-based, as in the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BladeId(pub u32);

/// A node (SoC) index, `0..TOTAL_NODES`. Dense, usable as an array index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// The paper's `BB-SS` node naming (blade and SoC, both 1-based, zero
/// padded): node "02-04" is blade 2, SoC 4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeName {
    pub blade: u32, // 1-based
    pub soc: u32,   // 1-based
}

impl BladeId {
    /// Rack of this blade, `0..RACKS`.
    pub fn rack(self) -> u32 {
        self.0 / (CHASSIS_PER_RACK * BLADES_PER_CHASSIS)
    }

    /// Chassis within the machine, `0..RACKS*CHASSIS_PER_RACK`.
    pub fn chassis(self) -> u32 {
        self.0 / BLADES_PER_CHASSIS
    }

    /// Position of the blade within its chassis, `0..BLADES_PER_CHASSIS`.
    pub fn slot(self) -> u32 {
        self.0 % BLADES_PER_CHASSIS
    }
}

impl NodeId {
    pub fn new(blade: BladeId, soc: u32) -> NodeId {
        assert!(blade.0 < TOTAL_BLADES, "blade {} out of range", blade.0);
        assert!(soc < SOCS_PER_BLADE, "soc {soc} out of range");
        NodeId(blade.0 * SOCS_PER_BLADE + soc)
    }

    /// Parse the paper's `BB-SS` name (1-based components).
    ///
    /// Hot in log ingest (every record names its node), so the common
    /// all-digit components skip `str::parse`; odd shapes (`+` signs,
    /// absurdly long digit strings) delegate to it, keeping acceptance
    /// identical.
    pub fn from_name(name: &str) -> Option<NodeId> {
        fn parse_u32(s: &str) -> Option<u32> {
            let b = s.as_bytes();
            if b.is_empty() || b.len() > 9 {
                return s.parse().ok();
            }
            let mut v = 0u32;
            for &c in b {
                let d = c.wrapping_sub(b'0');
                if d > 9 {
                    return s.parse().ok();
                }
                v = v * 10 + u32::from(d);
            }
            Some(v)
        }
        let (b, s) = name.split_once('-')?;
        let blade = parse_u32(b)?;
        let soc = parse_u32(s)?;
        if blade == 0 || blade > TOTAL_BLADES || soc == 0 || soc > SOCS_PER_BLADE {
            return None;
        }
        Some(NodeId::new(BladeId(blade - 1), soc - 1))
    }

    /// Blade this node sits on.
    pub fn blade(self) -> BladeId {
        BladeId(self.0 / SOCS_PER_BLADE)
    }

    /// SoC position within the blade, `0..SOCS_PER_BLADE`.
    pub fn soc(self) -> u32 {
        self.0 % SOCS_PER_BLADE
    }

    /// Display name in the paper's format.
    pub fn name(self) -> NodeName {
        NodeName {
            blade: self.blade().0 + 1,
            soc: self.soc() + 1,
        }
    }

    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Physical adjacency within a blade: SoCs at distance 1 in slot order.
    /// Used to place the paper's isolated SDCs "near the SoC 12" positions.
    pub fn is_adjacent_soc(self, other: NodeId) -> bool {
        self.blade() == other.blade() && self.soc().abs_diff(other.soc()) == 1
    }
}

impl fmt::Display for BladeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blade{:02}", self.0 + 1)
    }
}

impl fmt::Display for NodeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}-{:02}", self.blade, self.soc)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The machine layout: which blades/nodes exist and which are monitored.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Number of blades participating in the study (the rest are the
    /// excluded chassis).
    pub monitored_blades: u32,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            monitored_blades: MONITORED_BLADES,
        }
    }
}

impl Topology {
    /// A scaled-down topology for tests and examples: the first
    /// `monitored_blades` blades participate.
    pub fn scaled(monitored_blades: u32) -> Topology {
        assert!(monitored_blades <= TOTAL_BLADES);
        Topology { monitored_blades }
    }

    /// All nodes in the machine (monitored or not).
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..TOTAL_NODES).map(NodeId)
    }

    /// Nodes on monitored blades (the excluded chassis filtered out).
    /// Further role filtering (login nodes, dead hardware) happens in
    /// [`crate::roles::RoleMap`].
    pub fn monitored_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.monitored_blades * SOCS_PER_BLADE).map(NodeId)
    }

    /// Number of nodes on monitored blades.
    pub fn monitored_node_count(&self) -> u32 {
        self.monitored_blades * SOCS_PER_BLADE
    }

    /// Whether the node is on a blade participating in the study.
    pub fn is_monitored_blade(&self, node: NodeId) -> bool {
        node.blade().0 < self.monitored_blades
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn machine_dimensions() {
        assert_eq!(TOTAL_BLADES, 72);
        assert_eq!(TOTAL_NODES, 1080);
        assert_eq!(MONITORED_BLADES, 63);
        assert_eq!(Topology::default().monitored_node_count(), 945);
    }

    #[test]
    fn node_id_round_trips_blade_soc() {
        for blade in 0..TOTAL_BLADES {
            for soc in 0..SOCS_PER_BLADE {
                let id = NodeId::new(BladeId(blade), soc);
                assert_eq!(id.blade().0, blade);
                assert_eq!(id.soc(), soc);
            }
        }
    }

    #[test]
    fn paper_node_names_parse() {
        // The three hot nodes the paper names in Fig 12.
        let n = NodeId::from_name("02-04").unwrap();
        assert_eq!(n.blade().0, 1);
        assert_eq!(n.soc(), 3);
        assert_eq!(n.to_string(), "02-04");
        assert_eq!(NodeId::from_name("58-02").unwrap().to_string(), "58-02");
        assert_eq!(NodeId::from_name("04-05").unwrap().to_string(), "04-05");
    }

    #[test]
    fn bad_names_rejected() {
        assert!(NodeId::from_name("00-01").is_none());
        assert!(NodeId::from_name("73-01").is_none());
        assert!(NodeId::from_name("01-16").is_none());
        assert!(NodeId::from_name("01-00").is_none());
        assert!(NodeId::from_name("junk").is_none());
        assert!(NodeId::from_name("1").is_none());
    }

    #[test]
    fn rack_chassis_slot_math() {
        let b0 = BladeId(0);
        assert_eq!((b0.rack(), b0.chassis(), b0.slot()), (0, 0, 0));
        let b35 = BladeId(35);
        assert_eq!(b35.rack(), 0);
        assert_eq!(b35.chassis(), 3);
        assert_eq!(b35.slot(), 8);
        let b36 = BladeId(36);
        assert_eq!(b36.rack(), 1);
        assert_eq!(b36.chassis(), 4);
        assert_eq!(b36.slot(), 0);
        let b71 = BladeId(71);
        assert_eq!(b71.rack(), 1);
        assert_eq!(b71.chassis(), 7);
    }

    #[test]
    fn monitored_filter() {
        let t = Topology::default();
        assert_eq!(t.monitored_nodes().count(), 945);
        assert!(t.is_monitored_blade(NodeId::new(BladeId(62), 0)));
        assert!(!t.is_monitored_blade(NodeId::new(BladeId(63), 0)));
    }

    #[test]
    fn scaled_topology() {
        let t = Topology::scaled(4);
        assert_eq!(t.monitored_node_count(), 60);
        assert_eq!(t.monitored_nodes().count(), 60);
        assert_eq!(t.all_nodes().count(), 1080);
    }

    #[test]
    fn adjacency_within_blade() {
        let a = NodeId::new(BladeId(5), 10);
        let b = NodeId::new(BladeId(5), 11);
        let c = NodeId::new(BladeId(5), 12);
        let d = NodeId::new(BladeId(6), 11);
        assert!(a.is_adjacent_soc(b));
        assert!(b.is_adjacent_soc(c));
        assert!(!a.is_adjacent_soc(c));
        assert!(!b.is_adjacent_soc(d));
    }

    proptest! {
        #[test]
        fn name_roundtrip(blade in 0u32..TOTAL_BLADES, soc in 0u32..SOCS_PER_BLADE) {
            let id = NodeId::new(BladeId(blade), soc);
            let parsed = NodeId::from_name(&id.to_string()).unwrap();
            prop_assert_eq!(parsed, id);
        }

        #[test]
        fn dense_index_bijective(raw in 0u32..TOTAL_NODES) {
            let id = NodeId(raw);
            prop_assert_eq!(NodeId::new(id.blade(), id.soc()), id);
        }
    }
}
