//! Node roles and operational status.
//!
//! Beyond the excluded chassis, the paper removes further nodes from the
//! monitored pool: 9 login nodes (the first SoC of the first nine blades
//! per Fig. 1), and nodes with permanent hardware failures. 923 of the 945
//! candidate nodes were continuously scanned.

use crate::topology::{BladeId, NodeId, Topology};
use crate::{SOCS_PER_BLADE, TOTAL_NODES};

/// Role of a node during the study.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum NodeRole {
    /// Scanned for errors whenever idle.
    #[default]
    Scanned,
    /// Login node: never scanned.
    Login,
    /// Part of the chassis dedicated to another study.
    ExcludedChassis,
    /// Permanent hardware failure before/at study start: never scanned.
    DeadHardware,
}

/// Per-node role assignment.
#[derive(Clone, Debug)]
pub struct RoleMap {
    roles: Vec<NodeRole>,
}

/// Number of login nodes in the real machine.
pub const LOGIN_NODES: u32 = 9;

/// Nodes that never got scanned due to permanent hardware failures, chosen
/// so the scanned-node census matches the paper's 923.
pub const DEAD_NODES: u32 = 945 - LOGIN_NODES - 923; // = 13

impl RoleMap {
    /// The paper's configuration: excluded chassis, 9 login SoCs (first SoC
    /// of blades 1..=9), and `DEAD_NODES` dead nodes spread deterministically
    /// over the monitored blades.
    pub fn paper_defaults(topology: &Topology) -> RoleMap {
        let mut roles = vec![NodeRole::Scanned; TOTAL_NODES as usize];
        for node in topology.all_nodes() {
            if !topology.is_monitored_blade(node) {
                roles[node.index()] = NodeRole::ExcludedChassis;
            }
        }
        for blade in 0..LOGIN_NODES.min(topology.monitored_blades) {
            let id = NodeId::new(BladeId(blade), 0);
            roles[id.index()] = NodeRole::Login;
        }
        // Dead nodes: a deterministic scatter over monitored blades, away
        // from the login SoCs. Spread with a stride that avoids collisions.
        let monitored = topology.monitored_blades;
        if monitored > 0 {
            let mut placed = 0;
            let mut k = 0u32;
            while placed < DEAD_NODES && k < 10_000 {
                let blade = (7 + k * 11) % monitored;
                let soc = 1 + (k * 5) % (SOCS_PER_BLADE - 1);
                let id = NodeId::new(BladeId(blade), soc);
                if roles[id.index()] == NodeRole::Scanned {
                    roles[id.index()] = NodeRole::DeadHardware;
                    placed += 1;
                }
                k += 1;
            }
        }
        RoleMap { roles }
    }

    /// A role map with every monitored node scanned (tests, small runs).
    pub fn all_scanned(topology: &Topology) -> RoleMap {
        let mut roles = vec![NodeRole::Scanned; TOTAL_NODES as usize];
        for node in topology.all_nodes() {
            if !topology.is_monitored_blade(node) {
                roles[node.index()] = NodeRole::ExcludedChassis;
            }
        }
        RoleMap { roles }
    }

    pub fn role(&self, node: NodeId) -> NodeRole {
        self.roles[node.index()]
    }

    /// Force the given nodes to be scanned if they were placed in the
    /// dead-hardware pool, preserving the dead-node census by moving the
    /// dead role to the next free compute node. Used when a fault scenario
    /// designates specific nodes (they demonstrably ran).
    pub fn ensure_scanned(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            if self.roles[n.index()] != NodeRole::DeadHardware {
                continue;
            }
            self.roles[n.index()] = NodeRole::Scanned;
            // Re-home the dead role on the next scanned node not in `nodes`.
            let replacement = (0..TOTAL_NODES)
                .map(NodeId)
                .find(|m| self.roles[m.index()] == NodeRole::Scanned && !nodes.contains(m));
            if let Some(m) = replacement {
                self.roles[m.index()] = NodeRole::DeadHardware;
            }
        }
    }

    /// Whether the node takes part in memory scanning.
    pub fn is_scanned(&self, node: NodeId) -> bool {
        self.role(node) == NodeRole::Scanned
    }

    /// All nodes with the [`NodeRole::Scanned`] role, in id order.
    pub fn scanned_nodes(&self) -> Vec<NodeId> {
        (0..TOTAL_NODES)
            .map(NodeId)
            .filter(|n| self.is_scanned(*n))
            .collect()
    }

    /// Census by role: (scanned, login, excluded, dead).
    pub fn census(&self) -> (u32, u32, u32, u32) {
        let mut c = (0, 0, 0, 0);
        for r in &self.roles {
            match r {
                NodeRole::Scanned => c.0 += 1,
                NodeRole::Login => c.1 += 1,
                NodeRole::ExcludedChassis => c.2 += 1,
                NodeRole::DeadHardware => c.3 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_census_matches() {
        let topo = Topology::default();
        let roles = RoleMap::paper_defaults(&topo);
        let (scanned, login, excluded, dead) = roles.census();
        assert_eq!(scanned, 923, "923 continuously scanned nodes");
        assert_eq!(login, 9);
        assert_eq!(excluded, 135, "one chassis of 9 blades x 15 SoCs");
        assert_eq!(dead, 13);
        assert_eq!(scanned + login + excluded + dead, 1080);
    }

    #[test]
    fn login_nodes_are_first_soc_of_first_blades() {
        let topo = Topology::default();
        let roles = RoleMap::paper_defaults(&topo);
        for blade in 0..9 {
            let id = NodeId::new(BladeId(blade), 0);
            assert_eq!(roles.role(id), NodeRole::Login, "{id}");
        }
        assert_eq!(
            roles.role(NodeId::new(BladeId(9), 0)),
            NodeRole::Scanned,
            "blade 10's first SoC is a compute node"
        );
    }

    #[test]
    fn excluded_chassis_not_scanned() {
        let topo = Topology::default();
        let roles = RoleMap::paper_defaults(&topo);
        for blade in 63..72 {
            for soc in 0..SOCS_PER_BLADE {
                assert_eq!(
                    roles.role(NodeId::new(BladeId(blade), soc)),
                    NodeRole::ExcludedChassis
                );
            }
        }
    }

    #[test]
    fn scanned_nodes_sorted_and_consistent() {
        let topo = Topology::default();
        let roles = RoleMap::paper_defaults(&topo);
        let nodes = roles.scanned_nodes();
        assert_eq!(nodes.len(), 923);
        assert!(nodes.windows(2).all(|w| w[0] < w[1]));
        assert!(nodes.iter().all(|n| roles.is_scanned(*n)));
    }

    #[test]
    fn all_scanned_variant() {
        let topo = Topology::default();
        let roles = RoleMap::all_scanned(&topo);
        let (scanned, login, excluded, dead) = roles.census();
        assert_eq!(scanned, 945);
        assert_eq!(login, 0);
        assert_eq!(excluded, 135);
        assert_eq!(dead, 0);
    }

    #[test]
    fn scaled_topology_roles() {
        let topo = Topology::scaled(4);
        let roles = RoleMap::paper_defaults(&topo);
        let (scanned, login, excluded, dead) = roles.census();
        assert_eq!(excluded, (72 - 4) * 15);
        assert_eq!(login, 4);
        assert_eq!(scanned + login + dead, 60);
    }
}
