//! # uc-cluster — the prototype machine's topology
//!
//! Models the Mont-Blanc-style prototype the paper studies:
//!
//! - 2 racks, 4 chassis per rack, 9 blades per chassis, 15 SoC nodes per
//!   blade — 72 blades / 1080 nodes total;
//! - each node: 2 ARM cores @ 1.7 GHz, 4 GB ECC-less LPDDR, of which at most
//!   3 GB is allocatable by applications (and by the memory scanner);
//! - one chassis (9 blades) dedicated to another study and excluded, leaving
//!   63 monitored blades / 945 nodes;
//! - 9 login nodes (the first SoC of the first nine blades);
//! - a handful of nodes dead from permanent hardware failures;
//! - the SoC-12 position overheats (rack airflow) and is powered off for
//!   long stretches; blade 33 was shut down for hardware issues.
//!
//! The paper names nodes `BB-SS` (blade-SoC); [`NodeName`] reproduces that.

pub mod roles;
pub mod topology;

pub use roles::{NodeRole, RoleMap};
pub use topology::{BladeId, NodeId, NodeName, Topology};

/// Bytes per node of installed LPDDR (4 GB).
pub const NODE_DRAM_BYTES: u64 = 4 * 1024 * 1024 * 1024;

/// Largest allocation applications (and the scanner) can make: 3 GB.
pub const NODE_SCANNABLE_BYTES: u64 = 3 * 1024 * 1024 * 1024;

/// Memory word size the scanner checks, in bytes (32-bit words).
pub const WORD_BYTES: u64 = 4;

/// Number of SoC nodes per blade.
pub const SOCS_PER_BLADE: u32 = 15;

/// Number of blades per chassis.
pub const BLADES_PER_CHASSIS: u32 = 9;

/// Number of chassis per rack.
pub const CHASSIS_PER_RACK: u32 = 4;

/// Number of racks.
pub const RACKS: u32 = 2;

/// Total blades in the machine.
pub const TOTAL_BLADES: u32 = RACKS * CHASSIS_PER_RACK * BLADES_PER_CHASSIS;

/// Total SoC nodes in the machine.
pub const TOTAL_NODES: u32 = TOTAL_BLADES * SOCS_PER_BLADE;

/// Blades that take part in the memory study (one chassis is excluded).
pub const MONITORED_BLADES: u32 = TOTAL_BLADES - BLADES_PER_CHASSIS;

/// The SoC position (0-based) that overheats due to its rack location.
/// The paper calls it "SoC 12" in 1-based numbering.
pub const OVERHEATING_SOC: u32 = 11;

/// The blade (0-based) shut down during the year for hardware issues
/// ("Blade 33" in the paper's 1-based numbering).
pub const SHUTDOWN_BLADE: u32 = 32;
