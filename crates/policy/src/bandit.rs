//! Tabular epsilon-greedy contextual bandit over discretized states.
//!
//! Pure-Rust, integer-only, fully deterministic given a seed: the value
//! table keeps exact `(pulls, total cost)` per (state, action) cell and
//! compares empirical means by u128 cross-multiplication, so there is
//! no float accumulation and no ordering hazard. Exploration draws come
//! from the repo's own [`StreamRng`] (seeded splitmix + Lemire bounded
//! sampling), and the replay driver calls `choose`/`learn` in one fixed
//! sequential order, so a run is byte-reproducible across thread counts.
//!
//! ## Hierarchical backoff
//!
//! Every observation is recorded at three resolutions: the full state
//! cell, its activity-level aggregate, and a global per-action row.
//! Training decisions stay optimistic on the full-resolution table
//! (untried = mean 0) so every action in a visited state gets tried.
//! Frozen evaluation instead reads each action's mean from the most
//! specific level with data ([`Bandit::exploit`]): feature axes like
//! repeat share drift monotonically over a campaign, so evaluation days
//! routinely land in states training never visited — without backoff
//! those all-untried states tie at optimistic 0 and degenerate to
//! `Observe`, silently missing every fault behind them.

use uc_resilience::MitigationAction;
use uc_simclock::StreamRng;

use crate::features::{state_activity, ACTIVITY_LEVELS, STATE_BINS};

const N_ACTIONS: usize = MitigationAction::ALL.len();

/// Exact running statistics for one (state, action) cell.
#[derive(Clone, Copy, Debug, Default)]
struct Cell {
    pulls: u64,
    total_mnh: u128,
}

/// Epsilon-greedy tabular learner: explore a fixed percent of training
/// decisions uniformly, otherwise pick the action with the lowest
/// empirical mean cost (untried actions count as optimistic mean 0, so
/// every action in a visited state gets tried; ties resolve to the
/// lowest action index).
pub struct Bandit {
    rng: StreamRng,
    explore_pct: u64,
    cells: Vec<[Cell; N_ACTIONS]>,
    activity: [[Cell; N_ACTIONS]; ACTIVITY_LEVELS],
    global: [Cell; N_ACTIONS],
}

impl Bandit {
    pub fn new(seed: u64) -> Bandit {
        Bandit {
            rng: StreamRng::from_seed(seed),
            explore_pct: 10,
            cells: vec![[Cell::default(); N_ACTIONS]; STATE_BINS],
            activity: [[Cell::default(); N_ACTIONS]; ACTIVITY_LEVELS],
            global: [Cell::default(); N_ACTIONS],
        }
    }

    /// Pick an action for `state`. Training decisions explore
    /// `explore_pct`% of the time, otherwise follow the optimistic
    /// full-resolution greedy; evaluation decisions (`training = false`)
    /// are frozen backoff-greedy ([`Bandit::exploit`]) and consume no
    /// randomness, so the eval phase is a pure function of the learned
    /// table.
    pub fn choose(&mut self, state: usize, training: bool) -> MitigationAction {
        if training {
            if self.rng.below(100) < self.explore_pct {
                return MitigationAction::ALL[self.rng.below(N_ACTIONS as u64) as usize];
            }
            return self.greedy(state);
        }
        self.exploit(state)
    }

    /// The current greedy action for `state` on the full-resolution
    /// table (lowest empirical mean, untried = 0, tie → lowest index).
    pub fn greedy(&self, state: usize) -> MitigationAction {
        let cells = &self.cells[state];
        let mut best = 0usize;
        for cand in 1..N_ACTIONS {
            if mean_lt(&cells[cand], &cells[best]) {
                best = cand;
            }
        }
        MitigationAction::ALL[best]
    }

    /// The frozen evaluation action for `state`: each action's mean is
    /// read from the most specific level with at least one pull — full
    /// state, then activity aggregate, then global — so a state unseen
    /// in training inherits the judgment of its activity level instead
    /// of defaulting to optimistic `Observe`. Fully untried actions
    /// still count as mean 0.
    pub fn exploit(&self, state: usize) -> MitigationAction {
        let act = state_activity(state);
        let resolve = |a: usize| -> Cell {
            for cell in [self.cells[state][a], self.activity[act][a], self.global[a]] {
                if cell.pulls > 0 {
                    return cell;
                }
            }
            Cell::default()
        };
        let mut best = 0usize;
        let mut best_cell = resolve(0);
        for cand in 1..N_ACTIONS {
            let cell = resolve(cand);
            if mean_lt(&cell, &best_cell) {
                best = cand;
                best_cell = cell;
            }
        }
        MitigationAction::ALL[best]
    }

    /// Record the realized cost of taking `action` in `state`, at every
    /// resolution level.
    pub fn learn(&mut self, state: usize, action: MitigationAction, cost_mnh: u64) {
        let a = action.index();
        for cell in [
            &mut self.cells[state][a],
            &mut self.activity[state_activity(state)][a],
            &mut self.global[a],
        ] {
            cell.pulls = cell.pulls.saturating_add(1);
            cell.total_mnh = cell.total_mnh.saturating_add(u128::from(cost_mnh));
        }
    }

    /// Total training decisions recorded (full-resolution pulls).
    pub fn pulls(&self) -> u64 {
        self.cells
            .iter()
            .flat_map(|row| row.iter())
            .map(|c| c.pulls)
            .fold(0u64, u64::saturating_add)
    }
}

/// Is `a`'s empirical mean strictly lower than `b`'s? Untried cells act
/// as mean 0 (optimistic): untried vs untried is a tie (false → keep
/// the earlier index); untried vs tried-with-cost is strictly lower
/// unless the tried mean is also 0.
fn mean_lt(a: &Cell, b: &Cell) -> bool {
    let (at, ap) = (a.total_mnh, u128::from(a.pulls.max(1)));
    let (bt, bp) = (b.total_mnh, u128::from(b.pulls.max(1)));
    // a.total/a.pulls < b.total/b.pulls  ⇔  a.total·b.pulls < b.total·a.pulls
    at.saturating_mul(bp) < bt.saturating_mul(ap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_prefers_lowest_mean_and_breaks_ties_low() {
        let mut b = Bandit::new(7);
        // Untried everywhere → lowest index (Observe).
        assert_eq!(b.greedy(0), MitigationAction::Observe);
        b.learn(0, MitigationAction::Observe, 1_000);
        b.learn(0, MitigationAction::CheckpointNow, 100);
        // Other actions are untried (mean 0) and beat both tried means;
        // lowest untried index is Quarantine.
        assert_eq!(b.greedy(0), MitigationAction::QuarantineNode);
        for a in MitigationAction::ALL {
            b.learn(0, a, 5_000);
        }
        // Now all tried: Checkpoint has mean (100+5000)/2, Observe
        // (1000+5000)/2, rest 5000 → Checkpoint wins.
        assert_eq!(b.greedy(0), MitigationAction::CheckpointNow);
    }

    #[test]
    fn exploit_backs_off_to_activity_then_global() {
        let mut b = Bandit::new(7);
        // Train only in state 48 (activity level 4): Observe is
        // expensive there, Migrate cheap.
        b.learn(48, MitigationAction::Observe, 100_000);
        b.learn(48, MitigationAction::MigrateJob, 3_000);
        // State 59 shares activity level 4 but was never visited: the
        // frozen eval choice must inherit the aggregate, not tie at
        // optimistic 0 and observe.
        assert_eq!(state_activity(59), state_activity(48));
        assert_eq!(b.exploit(59), MitigationAction::CheckpointNow); // untried → 0
        b.learn(48, MitigationAction::QuarantineNode, 24_000);
        b.learn(48, MitigationAction::CheckpointNow, 20_000);
        b.learn(48, MitigationAction::RetireRow, 50_000);
        assert_eq!(b.exploit(59), MitigationAction::MigrateJob);
        // A state in an activity level with no data at all falls back to
        // the global row.
        assert_eq!(state_activity(0), 0);
        assert_eq!(b.exploit(0), MitigationAction::MigrateJob);
        // The visited state itself still answers from full resolution.
        assert_eq!(b.exploit(48), MitigationAction::MigrateJob);
    }

    #[test]
    fn eval_decisions_consume_no_randomness() {
        let mut a = Bandit::new(42);
        let mut b = Bandit::new(42);
        // Interleave eval choices in one copy only; training draws must
        // stay aligned.
        for state in 0..STATE_BINS {
            let _ = a.choose(state, false);
            let _ = a.choose(state, false);
        }
        for _ in 0..200 {
            assert_eq!(a.choose(3, true), b.choose(3, true));
        }
    }

    #[test]
    fn same_seed_same_trajectory() {
        let run = |seed: u64| {
            let mut bandit = Bandit::new(seed);
            let mut picks = Vec::new();
            for i in 0..500u64 {
                let state = (i % STATE_BINS as u64) as usize;
                let action = bandit.choose(state, true);
                bandit.learn(state, action, (i * 37) % 9_000);
                picks.push(action);
            }
            picks
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn cross_multiplication_survives_huge_totals() {
        let a = Cell {
            pulls: 1,
            total_mnh: u128::from(u64::MAX),
        };
        let b = Cell {
            pulls: u64::MAX,
            total_mnh: 1,
        };
        assert!(mean_lt(&b, &a));
        assert!(!mean_lt(&a, &b));
    }
}
