//! Rendering a [`Comparison`] as the `uc policy` cost-vs-coverage table
//! or as CSV. Pure string formatting over exact integer mNh totals, so
//! output is byte-deterministic whenever the comparison is.

use crate::replay::{Comparison, PolicyRun};

/// Milli-node-hours → "node-hours" with exact three decimals.
pub fn fmt_nh(mnh: u64) -> String {
    format!("{}.{:03}", mnh / 1_000, mnh % 1_000)
}

/// The human table: header block with the replay parameters, then one
/// row per policy with cost, coverage, action mix, and regret.
pub fn render_table(cmp: &Comparison) -> String {
    let mut out = String::new();
    out.push_str("policy cost-vs-coverage\n");
    out.push_str(&format!(
        "  days {}..={}  train {} days  eval from day {}  seed {}\n",
        cmp.first_day, cmp.last_day, cmp.train_len, cmp.eval_start, cmp.seed
    ));
    out.push_str(&format!(
        "  faults {} total, {} in eval window  managed nodes {}\n\n",
        cmp.total_faults, cmp.eval_faults, cmp.managed_nodes
    ));
    out.push_str(&format!(
        "  {:<18} {:>12} {:>12} {:>9} {:>7} {:>9} {:>7} {:>5} {:>5} {:>7} {:>7} {:>12}\n",
        "policy",
        "cost(nh)",
        "train(nh)",
        "mitigated",
        "missed",
        "unmanaged",
        "observe",
        "ckpt",
        "quar",
        "retire",
        "migrate",
        "regret(nh)"
    ));
    for run in &cmp.runs {
        let regret = cmp
            .regret_mnh(run)
            .map(fmt_nh)
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "  {:<18} {:>12} {:>12} {:>9} {:>7} {:>9} {:>7} {:>5} {:>5} {:>7} {:>7} {:>12}\n",
            run.kind.label(),
            fmt_nh(run.eval_cost_mnh),
            fmt_nh(run.train_cost_mnh),
            run.mitigated,
            run.missed,
            run.unmanaged_missed,
            run.actions[0],
            run.actions[1],
            run.actions[2],
            run.actions[3],
            run.actions[4],
            regret,
        ));
    }
    out
}

/// CSV export: one row per policy, exact integer mNh columns.
pub fn render_csv(cmp: &Comparison) -> String {
    let mut out = String::from(
        "policy,eval_cost_mnh,train_cost_mnh,mitigated,missed,unmanaged_missed,\
         observe,checkpoint,quarantine,retire,migrate,regret_mnh\n",
    );
    for run in &cmp.runs {
        let regret = cmp
            .regret_mnh(run)
            .map(|r| r.to_string())
            .unwrap_or_default();
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}\n",
            run.kind.label(),
            run.eval_cost_mnh,
            run.train_cost_mnh,
            run.mitigated,
            run.missed,
            run.unmanaged_missed,
            run.actions[0],
            run.actions[1],
            run.actions[2],
            run.actions[3],
            run.actions[4],
            regret,
        ));
    }
    out
}

/// Convenience for tests and the selftest: the eval cost of one kind.
pub fn eval_cost_of(cmp: &Comparison, kind: crate::replay::PolicyKind) -> Option<u64> {
    cmp.runs
        .iter()
        .find(|r| r.kind == kind)
        .map(|r| r.eval_cost_mnh)
}

/// The worst (highest eval cost) static baseline in the comparison.
pub fn worst_static(cmp: &Comparison) -> Option<&PolicyRun> {
    use crate::replay::PolicyKind::*;
    cmp.runs
        .iter()
        .filter(|r| matches!(r.kind, Never | AlwaysCheckpoint | Threshold))
        .max_by_key(|r| r.eval_cost_mnh)
}

/// The best (lowest eval cost) static baseline in the comparison.
pub fn best_static(cmp: &Comparison) -> Option<&PolicyRun> {
    use crate::replay::PolicyKind::*;
    cmp.runs
        .iter()
        .filter(|r| matches!(r.kind, Never | AlwaysCheckpoint | Threshold))
        .min_by_key(|r| r.eval_cost_mnh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{run_comparison, PolicyKind, ReplayConfig};

    #[test]
    fn fmt_nh_renders_exact_millis() {
        assert_eq!(fmt_nh(0), "0.000");
        assert_eq!(fmt_nh(1), "0.001");
        assert_eq!(fmt_nh(12_000), "12.000");
        assert_eq!(fmt_nh(24_105), "24.105");
    }

    #[test]
    fn table_and_csv_cover_every_run() {
        let cmp = run_comparison(&[], PolicyKind::ALL.as_ref(), &ReplayConfig::default());
        let table = render_table(&cmp);
        let csv = render_csv(&cmp);
        for kind in PolicyKind::ALL {
            assert!(
                table.contains(kind.label()),
                "table missing {}",
                kind.label()
            );
            assert!(csv.contains(kind.label()), "csv missing {}", kind.label());
        }
        assert_eq!(csv.lines().count(), 1 + cmp.runs.len());
        // Byte-determinism of rendering itself.
        assert_eq!(table, render_table(&cmp));
        assert_eq!(csv, render_csv(&cmp));
    }
}
