//! The day-replay driver: feed a day-ordered fault stream through a
//! policy, charging day-lease costs, and compare policies side by side.
//!
//! ## Protocol
//!
//! The stream is split into a training prefix and an evaluation suffix
//! (`train_days`, default half the span). Each day, every *managed*
//! node — one that faulted on some earlier day — gets exactly one
//! decision from strictly-past features; the chosen action is a one-day
//! lease costed by [`uc_resilience::day_cost`]. Faults on nodes not yet
//! managed (their first fault is today, or they never faulted before)
//! are charged the full miss penalty identically for every policy, so
//! they shift all totals equally and cancel in regret. At end of day the
//! faults are absorbed into the node histories; a node's first fault
//! therefore makes it managed from the *next* day onward.
//!
//! ## Why `oracle ≤ every policy` is a theorem here
//!
//! Leases last one day and histories depend only on the fault stream,
//! never on past actions — so each (node, day) cost is an independent
//! term and the clairvoyant per-day argmin ([`crate::policies::Oracle`])
//! minimizes every term separately. The integration suite proptests
//! this bound over arbitrary streams.
//!
//! ## Determinism
//!
//! One replay is strictly sequential: days ascend, nodes ascend within
//! a day (`BTreeMap` order), and the bandit's RNG is consumed in that
//! fixed order. [`run_comparison`] parallelizes *across policies* with
//! the order-preserving `uc_parallel::par_map`, so results are
//! byte-identical at any `--threads` setting.

use std::collections::BTreeMap;

use uc_analysis::fault::Fault;
use uc_faultdb::DayFaults;
use uc_resilience::{day_cost, CostModel};

use crate::features::NodeHistory;
use crate::policies::{
    AlwaysCheckpoint, BanditPolicy, Decision, Never, Oracle, Policy, ThresholdOnCount,
};

/// Which policy to replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    Never,
    AlwaysCheckpoint,
    Threshold,
    Bandit,
    Oracle,
}

impl PolicyKind {
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Never,
        PolicyKind::AlwaysCheckpoint,
        PolicyKind::Threshold,
        PolicyKind::Bandit,
        PolicyKind::Oracle,
    ];

    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Never => "never",
            PolicyKind::AlwaysCheckpoint => "always-checkpoint",
            PolicyKind::Threshold => "threshold",
            PolicyKind::Bandit => "bandit",
            PolicyKind::Oracle => "oracle",
        }
    }

    pub fn parse(s: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|k| k.label() == s)
    }

    fn instantiate(self, cfg: &ReplayConfig) -> Box<dyn Policy> {
        match self {
            PolicyKind::Never => Box::new(Never),
            PolicyKind::AlwaysCheckpoint => Box::new(AlwaysCheckpoint),
            PolicyKind::Threshold => Box::new(ThresholdOnCount {
                threshold: cfg.threshold,
            }),
            PolicyKind::Bandit => Box::new(BanditPolicy::new(cfg.seed)),
            PolicyKind::Oracle => Box::new(Oracle { cost: cfg.cost }),
        }
    }
}

/// Replay parameters shared by every policy in a comparison.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Bandit RNG seed; same seed → byte-identical run.
    pub seed: u64,
    /// Training prefix length in days; `None` = half the span.
    pub train_days: Option<i64>,
    /// Trailing-week fault count that trips the threshold baseline.
    pub threshold: u32,
    /// The cost surface, shared by execution and the oracle.
    pub cost: CostModel,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            seed: 0,
            train_days: None,
            threshold: 3,
            cost: CostModel::default(),
        }
    }
}

/// The accounting of one policy over one stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicyRun {
    pub kind: PolicyKind,
    /// Cost accrued over training days (mNh). Informational; policies
    /// are compared on evaluation cost only.
    pub train_cost_mnh: u64,
    /// Cost accrued over evaluation days (mNh), including the shared
    /// unmanaged-fault penalty.
    pub eval_cost_mnh: u64,
    /// Evaluation faults covered by a lease (checkpoint soft-landing,
    /// quarantine, migrate, or a retire hit on a hot page).
    pub mitigated: u64,
    /// Evaluation faults on managed nodes that hit unprotected.
    pub missed: u64,
    /// Evaluation faults on nodes not yet managed — charged at full miss
    /// penalty identically for every policy.
    pub unmanaged_missed: u64,
    /// Evaluation-day action counts, indexed by `MitigationAction::index`.
    pub actions: [u64; 5],
    /// Evaluation (node, day) decision points.
    pub eval_decisions: u64,
    /// Nodes that ever became managed over the whole stream.
    pub managed_nodes: u64,
}

impl PolicyRun {
    /// Total faults this run accounted for in the evaluation window.
    pub fn eval_faults(&self) -> u64 {
        self.mitigated + self.missed + self.unmanaged_missed
    }
}

/// One full comparison: every requested policy over the same stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comparison {
    pub first_day: i64,
    pub last_day: i64,
    /// First evaluation day (= `first_day + train_len`).
    pub eval_start: i64,
    pub train_len: i64,
    pub seed: u64,
    /// Faults in the whole stream.
    pub total_faults: u64,
    /// Faults in the evaluation window.
    pub eval_faults: u64,
    /// Nodes that ever became managed.
    pub managed_nodes: u64,
    pub runs: Vec<PolicyRun>,
}

impl Comparison {
    /// The oracle's run, if it was part of the comparison.
    pub fn oracle(&self) -> Option<&PolicyRun> {
        self.runs.iter().find(|r| r.kind == PolicyKind::Oracle)
    }

    /// `run.eval_cost_mnh - oracle.eval_cost_mnh`, the realized regret.
    pub fn regret_mnh(&self, run: &PolicyRun) -> Option<u64> {
        self.oracle()
            .map(|o| run.eval_cost_mnh.saturating_sub(o.eval_cost_mnh))
    }
}

/// How many leading days of `days` are training under `cfg`.
pub fn train_len(days: &[DayFaults], cfg: &ReplayConfig) -> i64 {
    let span = days.len() as i64;
    cfg.train_days.unwrap_or(span / 2).clamp(0, span)
}

/// Replay one policy over a day-ordered stream (as produced by
/// `Engine::collect_days` — contiguous ascending days, empties included).
pub fn replay(days: &[DayFaults], kind: PolicyKind, cfg: &ReplayConfig) -> PolicyRun {
    let mut policy = kind.instantiate(cfg);
    let mut run = PolicyRun {
        kind,
        train_cost_mnh: 0,
        eval_cost_mnh: 0,
        mitigated: 0,
        missed: 0,
        unmanaged_missed: 0,
        actions: [0; 5],
        eval_decisions: 0,
        managed_nodes: 0,
    };
    let eval_start = days
        .first()
        .map(|d| d.day + train_len(days, cfg))
        .unwrap_or(0);
    let mut histories: BTreeMap<u32, NodeHistory> = BTreeMap::new();

    for day in days {
        let training = day.day < eval_start;
        let mut by_node: BTreeMap<u32, Vec<&Fault>> = BTreeMap::new();
        for f in &day.faults {
            by_node.entry(f.node.0).or_default().push(f);
        }
        static NO_FAULTS: &[&Fault] = &[];
        // Every managed node gets exactly one decision, ascending.
        for (&node, hist) in &histories {
            let today = by_node.get(&node).map(Vec::as_slice).unwrap_or(NO_FAULTS);
            let features = hist.features(day.day);
            let d = Decision {
                day: day.day,
                node,
                features,
                state: features.state_bin(),
                training,
                faults_today: today.len() as u64,
                faults_on_hot_pages: hist.hot_faults(today),
            };
            let action = policy.decide(&d);
            let outcome = day_cost(&cfg.cost, action, d.faults_today, d.faults_on_hot_pages);
            if std::env::var("UC_POLICY_DEBUG").is_ok() && kind == PolicyKind::Bandit {
                eprintln!(
                    "DBG {} day={} node={} state={} n={} hot={} action={:?} cost={} missed={}",
                    if training { "train" } else { "eval" },
                    d.day,
                    d.node,
                    d.state,
                    d.faults_today,
                    d.faults_on_hot_pages,
                    action,
                    outcome.cost_mnh,
                    outcome.missed
                );
            }
            policy.learn(&d, action, outcome.cost_mnh);
            if training {
                run.train_cost_mnh = run.train_cost_mnh.saturating_add(outcome.cost_mnh);
            } else {
                run.eval_cost_mnh = run.eval_cost_mnh.saturating_add(outcome.cost_mnh);
                run.mitigated += outcome.mitigated;
                run.missed += outcome.missed;
                run.actions[action.index()] += 1;
                run.eval_decisions += 1;
            }
        }
        // Faults on not-yet-managed nodes miss at full penalty for every
        // policy alike — no lease can exist before the first fault.
        for (&node, faults) in &by_node {
            if histories.contains_key(&node) {
                continue;
            }
            let penalty = cfg.cost.miss_mnh.saturating_mul(faults.len() as u64);
            if training {
                run.train_cost_mnh = run.train_cost_mnh.saturating_add(penalty);
            } else {
                run.eval_cost_mnh = run.eval_cost_mnh.saturating_add(penalty);
                run.unmanaged_missed += faults.len() as u64;
            }
        }
        // End of day: absorb. First-fault nodes enter management here,
        // so they get their first decision tomorrow.
        for (node, faults) in &by_node {
            histories
                .entry(*node)
                .or_insert_with(|| NodeHistory::new(day.day))
                .absorb_day(day.day, faults);
        }
    }
    run.managed_nodes = histories.len() as u64;
    run
}

/// Replay every requested policy over the same stream. The oracle is
/// always included (appended if absent) so regret is well-defined.
/// Policies run in parallel via the order-preserving `par_map`; each
/// individual replay is sequential, so the comparison is byte-identical
/// at any thread count.
pub fn run_comparison(days: &[DayFaults], kinds: &[PolicyKind], cfg: &ReplayConfig) -> Comparison {
    let mut kinds: Vec<PolicyKind> = kinds.to_vec();
    if !kinds.contains(&PolicyKind::Oracle) {
        kinds.push(PolicyKind::Oracle);
    }
    let runs = uc_parallel::par_map(&kinds, |_, &k| replay(days, k, cfg));
    let first_day = days.first().map(|d| d.day).unwrap_or(0);
    let last_day = days.last().map(|d| d.day).unwrap_or(-1);
    let tl = train_len(days, cfg);
    let eval_start = first_day + tl;
    let total_faults = days.iter().map(|d| d.faults.len() as u64).sum();
    let eval_faults = days
        .iter()
        .filter(|d| d.day >= eval_start)
        .map(|d| d.faults.len() as u64)
        .sum();
    let managed_nodes = runs.first().map(|r| r.managed_nodes).unwrap_or(0);
    Comparison {
        first_day,
        last_day,
        eval_start,
        train_len: tl,
        seed: cfg.seed,
        total_faults,
        eval_faults,
        managed_nodes,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;
    use uc_simclock::SimTime;

    fn fault(node: u32, secs: i64, vaddr: u64) -> Fault {
        Fault {
            node: NodeId(node),
            time: SimTime::from_secs(secs),
            vaddr,
            expected: 0xffff_ffff,
            actual: 0xffff_fffe,
            temp: None,
            raw_logs: 1,
        }
    }

    /// days 0..n with the given (day, node, vaddr) faults, empties kept.
    fn stream(n: i64, faults: &[(i64, u32, u64)]) -> Vec<DayFaults> {
        (0..n)
            .map(|day| DayFaults {
                day,
                faults: faults
                    .iter()
                    .filter(|&&(d, _, _)| d == day)
                    .map(|&(d, node, vaddr)| fault(node, d * 86_400 + i64::from(node), vaddr))
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn empty_stream_yields_zeroed_runs() {
        let cmp = run_comparison(&[], PolicyKind::ALL.as_ref(), &ReplayConfig::default());
        assert_eq!(cmp.total_faults, 0);
        for run in &cmp.runs {
            assert_eq!(run.eval_cost_mnh, 0);
            assert_eq!(run.eval_faults(), 0);
        }
    }

    #[test]
    fn conservation_and_oracle_bound_on_a_small_stream() {
        let days = stream(
            10,
            &[
                (0, 1, 0x1000),
                (2, 1, 0x1008),
                (5, 1, 0x100c),
                (6, 1, 0x1010),
                (7, 2, 0x9000),
                (8, 2, 0x9100),
                (8, 1, 0x1020),
            ],
        );
        let cfg = ReplayConfig {
            train_days: Some(4),
            ..ReplayConfig::default()
        };
        let cmp = run_comparison(&days, PolicyKind::ALL.as_ref(), &cfg);
        assert_eq!(cmp.eval_start, 4);
        assert_eq!(cmp.eval_faults, 5);
        let oracle = cmp.oracle().unwrap().eval_cost_mnh;
        for run in &cmp.runs {
            assert_eq!(run.eval_faults(), cmp.eval_faults, "{}", run.kind.label());
            assert!(run.eval_cost_mnh >= oracle, "{}", run.kind.label());
        }
        // Node 2's first fault (day 7) precedes management; its day-8
        // fault is managed. Node 1 is managed from day 1 onward.
        let never = cmp
            .runs
            .iter()
            .find(|r| r.kind == PolicyKind::Never)
            .unwrap();
        assert_eq!(never.unmanaged_missed, 1);
        assert_eq!(never.missed, 4);
        assert_eq!(never.mitigated, 0);
    }

    #[test]
    fn replay_is_deterministic_per_seed() {
        let days = stream(
            30,
            &[
                (0, 1, 0x1000),
                (3, 1, 0x1004),
                (9, 1, 0x1008),
                (15, 1, 0x100c),
                (20, 1, 0x1010),
            ],
        );
        let cfg = ReplayConfig {
            seed: 1234,
            ..ReplayConfig::default()
        };
        let a = replay(&days, PolicyKind::Bandit, &cfg);
        let b = replay(&days, PolicyKind::Bandit, &cfg);
        assert_eq!(a, b);
        let other = replay(&days, PolicyKind::Bandit, &ReplayConfig { seed: 9, ..cfg });
        // Different seed may or may not change totals, but the struct
        // equality above is the real guarantee; just exercise it.
        let _ = other;
    }

    #[test]
    fn train_days_clamp_to_span() {
        let days = stream(4, &[(0, 1, 0x1000)]);
        let cfg = ReplayConfig {
            train_days: Some(99),
            ..ReplayConfig::default()
        };
        assert_eq!(train_len(&days, &cfg), 4);
        let cmp = run_comparison(&days, &[PolicyKind::Never], &cfg);
        // Everything is training: no eval faults, no eval cost.
        assert_eq!(cmp.eval_faults, 0);
        for run in &cmp.runs {
            assert_eq!(run.eval_cost_mnh, 0);
        }
    }

    #[test]
    fn single_day_stream_has_no_managed_decisions() {
        let days = stream(1, &[(0, 3, 0x2000), (0, 4, 0x3000)]);
        let cfg = ReplayConfig {
            train_days: Some(0),
            ..ReplayConfig::default()
        };
        let cmp = run_comparison(&days, PolicyKind::ALL.as_ref(), &cfg);
        for run in &cmp.runs {
            // Both faults are first faults: unmanaged for every policy,
            // including the oracle — identical totals, zero regret.
            assert_eq!(run.unmanaged_missed, 2);
            assert_eq!(run.eval_decisions, 0);
            assert_eq!(cmp.regret_mnh(run), Some(0));
        }
    }
}
