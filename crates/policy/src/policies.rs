//! The [`Policy`] trait and its five implementations: three static
//! baselines, the learning bandit, and the clairvoyant oracle.
//!
//! A policy sees one [`Decision`] per managed node per day and returns a
//! [`MitigationAction`] — a one-day lease executed by the cost surface
//! in `uc_resilience::actions`. Only the oracle may read the decision's
//! clairvoyant fields (`faults_today`, `faults_on_hot_pages`); every
//! other policy must decide from `features` alone, which encode strictly
//! past history. Because actions are day-leases — no decision changes
//! any later day's faults or features — the oracle's per-day greedy
//! argmin is a true global optimum, which is what lets the test suite
//! assert `oracle ≤ every policy` over arbitrary fault streams.

use uc_resilience::{best_action, CostModel, MitigationAction};

use crate::bandit::Bandit;
use crate::features::Features;

/// One (node, day) decision point.
#[derive(Clone, Copy, Debug)]
pub struct Decision {
    /// Simulated day index.
    pub day: i64,
    /// Node id.
    pub node: u32,
    /// Strictly-past feature vector.
    pub features: Features,
    /// `features.state_bin()`, precomputed once per decision.
    pub state: usize,
    /// Whether this day is in the training window (bandit may explore
    /// and learn) or the evaluation window (frozen).
    pub training: bool,
    /// Clairvoyant: faults that will land on this node today.
    /// **Oracle-only** — learning policies must not read this.
    pub faults_today: u64,
    /// Clairvoyant: how many of today's faults hit already-hot pages.
    /// **Oracle-only.**
    pub faults_on_hot_pages: u64,
}

/// A mitigation policy: a (possibly stateful) map from decision points
/// to day-lease actions.
pub trait Policy {
    fn name(&self) -> &'static str;
    fn decide(&mut self, d: &Decision) -> MitigationAction;
    /// Feedback after the day resolves: the realized cost of the chosen
    /// lease. Only learning policies care.
    fn learn(&mut self, d: &Decision, action: MitigationAction, cost_mnh: u64) {
        let _ = (d, action, cost_mnh);
    }
}

/// Baseline: never mitigate anything.
pub struct Never;

impl Policy for Never {
    fn name(&self) -> &'static str {
        "never"
    }
    fn decide(&mut self, _d: &Decision) -> MitigationAction {
        MitigationAction::Observe
    }
}

/// Baseline: checkpoint every managed node every day.
pub struct AlwaysCheckpoint;

impl Policy for AlwaysCheckpoint {
    fn name(&self) -> &'static str {
        "always-checkpoint"
    }
    fn decide(&mut self, _d: &Decision) -> MitigationAction {
        MitigationAction::CheckpointNow
    }
}

/// Baseline: quarantine a node whose trailing-week fault count reaches
/// a fixed threshold, otherwise observe.
pub struct ThresholdOnCount {
    pub threshold: u32,
}

impl Policy for ThresholdOnCount {
    fn name(&self) -> &'static str {
        "threshold"
    }
    fn decide(&mut self, d: &Decision) -> MitigationAction {
        if d.features.recent7 >= self.threshold {
            MitigationAction::QuarantineNode
        } else {
            MitigationAction::Observe
        }
    }
}

/// The learning policy: tabular epsilon-greedy over
/// [`Features::state_bin`](crate::features::Features::state_bin) states.
pub struct BanditPolicy {
    bandit: Bandit,
}

impl BanditPolicy {
    pub fn new(seed: u64) -> BanditPolicy {
        BanditPolicy {
            bandit: Bandit::new(seed),
        }
    }
}

impl Policy for BanditPolicy {
    fn name(&self) -> &'static str {
        "bandit"
    }
    fn decide(&mut self, d: &Decision) -> MitigationAction {
        self.bandit.choose(d.state, d.training)
    }
    fn learn(&mut self, d: &Decision, action: MitigationAction, cost_mnh: u64) {
        if d.training {
            self.bandit.learn(d.state, action, cost_mnh);
        }
    }
}

/// Post-hoc clairvoyant: sees today's faults before choosing, picks the
/// per-day cost argmin. Under day-lease semantics this lower-bounds
/// every realizable policy's cost.
pub struct Oracle {
    pub cost: CostModel,
}

impl Policy for Oracle {
    fn name(&self) -> &'static str {
        "oracle"
    }
    fn decide(&mut self, d: &Decision) -> MitigationAction {
        best_action(&self.cost, d.faults_today, d.faults_on_hot_pages).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::Features;

    fn decision(recent7: u32, today: u64, hot: u64) -> Decision {
        Decision {
            day: 40,
            node: 7,
            features: Features {
                days_since_first: 5,
                recent7,
                recent1: 0,
                total: u64::from(recent7),
                multibit: 0,
                dominant_dir: 0,
                repeat_share_pct: 0,
                hot_pages: 0,
                mean_interarrival_h: u32::MAX,
                temp_milli: None,
            },
            state: 0,
            training: false,
            faults_today: today,
            faults_on_hot_pages: hot,
        }
    }

    #[test]
    fn static_baselines_are_static() {
        let d = decision(2, 9, 3);
        assert_eq!(Never.decide(&d), MitigationAction::Observe);
        assert_eq!(AlwaysCheckpoint.decide(&d), MitigationAction::CheckpointNow);
        let mut thr = ThresholdOnCount { threshold: 3 };
        assert_eq!(thr.decide(&decision(2, 0, 0)), MitigationAction::Observe);
        assert_eq!(
            thr.decide(&decision(3, 0, 0)),
            MitigationAction::QuarantineNode
        );
    }

    #[test]
    fn oracle_matches_best_action_on_quiet_and_loud_days() {
        let mut o = Oracle {
            cost: CostModel::default(),
        };
        // Quiet day: observing is free, everything else costs.
        assert_eq!(o.decide(&decision(0, 0, 0)), MitigationAction::Observe);
        // Loud day on hot pages: retire covers all faults at trivial cost.
        assert_eq!(o.decide(&decision(0, 12, 12)), MitigationAction::RetireRow);
        let cost = CostModel::default();
        let d = decision(0, 5, 1);
        let (want, _) = best_action(&cost, d.faults_today, d.faults_on_hot_pages);
        assert_eq!(o.decide(&d), want);
    }
}
