//! Per-node feature extraction from fault history.
//!
//! A [`NodeHistory`] accumulates everything the policies are allowed to
//! know about a node: it absorbs each day's faults at end-of-day
//! ([`NodeHistory::absorb_day`]), and [`NodeHistory::features`] derives
//! the day's feature vector from *strictly past* information — a policy
//! deciding on day `d` sees days `< d` only. The oracle's clairvoyant
//! inputs travel separately (see `policies::Decision`).
//!
//! Everything is integer (or integer-binned) so feature extraction is
//! byte-deterministic: temperatures become milli-degrees, shares become
//! whole percents, inter-arrival becomes whole hours. The discretized
//! [`Features::state_bin`] is the tabular bandit's state index.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use uc_analysis::fault::Fault;
use uc_faultdb::query::FlipDir;
use uc_resilience::retirement::PAGE_BYTES;

/// Faults on one page before the policy engine considers it *hot*
/// (retirement-eligible). Matches `RetirementConfig::default().retire_after`
/// so `RetireRow` day leases and the offline retirement replay agree on
/// what a weak page looks like.
pub const HOT_PAGE_AFTER: u32 = 2;

/// How many trailing days feed the recent-activity features.
pub const RECENT_WINDOW_DAYS: i64 = 7;

/// Number of discretized bandit states ([`Features::state_bin`] range).
pub const STATE_BINS: usize = 60;

/// Number of recent-activity levels — the leading (most significant)
/// axis of the state layout, so `state / (STATE_BINS / ACTIVITY_LEVELS)`
/// recovers it.
pub const ACTIVITY_LEVELS: usize = 5;

/// The activity level encoded in a state bin. This is the coarse axis
/// the bandit backs off to for states it never saw in training: activity
/// is the feature most predictive of tomorrow's fault volume, while the
/// finer axes (repeat share, multi-bit, temperature) drift over a
/// campaign and can push evaluation days into unvisited bins.
pub fn state_activity(state: usize) -> usize {
    debug_assert!(state < STATE_BINS);
    state / (STATE_BINS / ACTIVITY_LEVELS)
}

/// Everything known about one node from its past fault history.
#[derive(Clone, Debug)]
pub struct NodeHistory {
    first_day: i64,
    total: u64,
    multibit: u64,
    dir_counts: [u64; 3],
    /// (day, fault count) for fault-bearing days inside the recent
    /// window; pruned on absorb, filtered again on read.
    recent: VecDeque<(i64, u32)>,
    /// page index -> lifetime fault count.
    page_counts: BTreeMap<u64, u32>,
    hot_pages: u32,
    /// Faults that landed on a page already faulted before.
    repeat_faults: u64,
    temp_milli_sum: i64,
    temp_samples: u64,
    last_fault_secs: Option<i64>,
    interarrival_sum_secs: i64,
    interarrival_samples: u64,
}

/// One day's feature vector for one node, derived from strictly past
/// history. All integers; no float ordering hazards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Features {
    /// Days since the node's first observed fault.
    pub days_since_first: u32,
    /// Faults in the last [`RECENT_WINDOW_DAYS`] days (yesterday back).
    pub recent7: u32,
    /// Faults yesterday alone.
    pub recent1: u32,
    /// Lifetime fault count.
    pub total: u64,
    /// Lifetime multi-bit fault count.
    pub multibit: u64,
    /// Dominant flip direction so far (0 = 1→0, 1 = 0→1, 2 = mixed;
    /// ties resolve to the lower index).
    pub dominant_dir: u8,
    /// Share of lifetime faults that repeated an already-faulted page,
    /// in whole percent.
    pub repeat_share_pct: u8,
    /// Pages with ≥ [`HOT_PAGE_AFTER`] lifetime faults.
    pub hot_pages: u32,
    /// Mean inter-arrival between faults in whole hours; `u32::MAX`
    /// when fewer than two faults have been seen.
    pub mean_interarrival_h: u32,
    /// Mean temperature at fault time in milli-degrees C, if the node's
    /// faults carried telemetry.
    pub temp_milli: Option<i32>,
}

impl Features {
    /// Discretize into one of [`STATE_BINS`] states:
    /// 5 activity levels × 3 spatial-repeat levels × multi-bit seen ×
    /// hot temperature regime.
    pub fn state_bin(&self) -> usize {
        let activity = match self.recent7 {
            0 => 0,
            1 => 1,
            2..=3 => 2,
            4..=9 => 3,
            _ => 4,
        };
        let repeat = if self.hot_pages == 0 && self.repeat_share_pct == 0 {
            0
        } else if self.repeat_share_pct < 50 {
            1
        } else {
            2
        };
        let multi = usize::from(self.multibit > 0);
        let hot_temp = usize::from(matches!(self.temp_milli, Some(t) if t > 40_000));
        let bin = ((activity * 3 + repeat) * 2 + multi) * 2 + hot_temp;
        debug_assert!(bin < STATE_BINS);
        bin
    }
}

impl NodeHistory {
    pub fn new(first_day: i64) -> NodeHistory {
        NodeHistory {
            first_day,
            total: 0,
            multibit: 0,
            dir_counts: [0; 3],
            recent: VecDeque::new(),
            page_counts: BTreeMap::new(),
            hot_pages: 0,
            repeat_faults: 0,
            temp_milli_sum: 0,
            temp_samples: 0,
            last_fault_secs: None,
            interarrival_sum_secs: 0,
            interarrival_samples: 0,
        }
    }

    /// Lifetime fault count absorbed so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fold one day's faults in (called at end-of-day, *after* the
    /// day's decisions resolved). Faults arrive in global sort order.
    pub fn absorb_day(&mut self, day: i64, faults: &[&Fault]) {
        for f in faults {
            self.total += 1;
            if f.is_multi_bit() {
                self.multibit += 1;
            }
            self.dir_counts[FlipDir::of(f) as usize] += 1;
            let page = f.vaddr / PAGE_BYTES;
            let count = self.page_counts.entry(page).or_insert(0);
            if *count > 0 {
                self.repeat_faults += 1;
            }
            *count += 1;
            if *count == HOT_PAGE_AFTER {
                self.hot_pages += 1;
            }
            if let Some(t) = f.temp {
                // One deterministic f32→integer conversion per sample;
                // accumulation is integer, so order cannot matter.
                self.temp_milli_sum += (f64::from(t) * 1000.0) as i64;
                self.temp_samples += 1;
            }
            let secs = f.time.as_secs();
            if let Some(last) = self.last_fault_secs {
                self.interarrival_sum_secs += (secs - last).max(0);
                self.interarrival_samples += 1;
            }
            self.last_fault_secs = Some(secs);
        }
        if !faults.is_empty() {
            self.recent.push_back((day, faults.len() as u32));
        }
        while let Some(&(d, _)) = self.recent.front() {
            if d < day - RECENT_WINDOW_DAYS {
                self.recent.pop_front();
            } else {
                break;
            }
        }
    }

    /// How many of `today`'s faults land on pages already hot (≥
    /// [`HOT_PAGE_AFTER`] faults strictly before today) — the
    /// `RetireRow` lease's coverage, and the oracle's clairvoyant input.
    pub fn hot_faults(&self, today: &[&Fault]) -> u64 {
        today
            .iter()
            .filter(|f| {
                self.page_counts
                    .get(&(f.vaddr / PAGE_BYTES))
                    .is_some_and(|&c| c >= HOT_PAGE_AFTER)
            })
            .count() as u64
    }

    /// The feature vector for deciding on day `today`, from strictly
    /// past history (`absorb_day(today, ..)` has not run yet).
    pub fn features(&self, today: i64) -> Features {
        let mut recent7 = 0u32;
        let mut recent1 = 0u32;
        for &(d, n) in &self.recent {
            if d < today && d >= today - RECENT_WINDOW_DAYS {
                recent7 = recent7.saturating_add(n);
            }
            if d == today - 1 {
                recent1 = recent1.saturating_add(n);
            }
        }
        let dominant_dir = self
            .dir_counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .map(|(i, _)| i as u8)
            .unwrap_or(0);
        let repeat_share_pct = (self.repeat_faults * 100)
            .checked_div(self.total)
            .map_or(0, |pct| pct.min(100) as u8);
        let mean_interarrival_h = (self.interarrival_sum_secs.max(0) as u64)
            .checked_div(self.interarrival_samples)
            .map_or(u32::MAX, |secs| {
                u32::try_from(secs / 3_600).unwrap_or(u32::MAX)
            });
        let temp_milli = if self.temp_samples > 0 {
            i32::try_from(self.temp_milli_sum / self.temp_samples as i64).ok()
        } else {
            None
        };
        Features {
            days_since_first: u32::try_from((today - self.first_day).max(0)).unwrap_or(u32::MAX),
            recent7,
            recent1,
            total: self.total,
            multibit: self.multibit,
            dominant_dir,
            repeat_share_pct,
            hot_pages: self.hot_pages,
            mean_interarrival_h,
            temp_milli,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;
    use uc_simclock::SimTime;

    fn fault(t: i64, vaddr: u64, temp: Option<f32>) -> Fault {
        Fault {
            node: NodeId(1),
            time: SimTime::from_secs(t),
            vaddr,
            expected: 0xffff_ffff,
            actual: 0xffff_fffe,
            temp,
            raw_logs: 1,
        }
    }

    #[test]
    fn state_bins_cover_the_declared_range_exactly() {
        let mut seen = [false; STATE_BINS];
        for recent7 in [0u32, 1, 2, 5, 20] {
            for (repeat_pct, hot) in [(0u8, 0u32), (20, 1), (80, 3)] {
                for multibit in [0u64, 2] {
                    for temp in [None, Some(20_000), Some(55_000)] {
                        let f = Features {
                            days_since_first: 3,
                            recent7,
                            recent1: 0,
                            total: 10,
                            multibit,
                            dominant_dir: 0,
                            repeat_share_pct: repeat_pct,
                            hot_pages: hot,
                            mean_interarrival_h: 4,
                            temp_milli: temp,
                        };
                        let bin = f.state_bin();
                        assert!(bin < STATE_BINS);
                        seen[bin] = true;
                    }
                }
            }
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), STATE_BINS);
    }

    #[test]
    fn features_see_strictly_past_days_only() {
        let mut h = NodeHistory::new(10);
        let day10: Vec<Fault> = (0..3)
            .map(|k| fault(10 * 86_400 + k, 0x5000, None))
            .collect();
        let refs: Vec<&Fault> = day10.iter().collect();
        h.absorb_day(10, &refs);
        // Deciding on day 10 again (hypothetically) must not see day 10.
        assert_eq!(h.features(10).recent7, 0);
        // Day 11 sees them as yesterday.
        let f = h.features(11);
        assert_eq!(f.recent7, 3);
        assert_eq!(f.recent1, 3);
        assert_eq!(f.days_since_first, 1);
        // Day 17 still sees them (window edge: today-7 = 10), day 18 does not.
        assert_eq!(h.features(17).recent7, 3);
        assert_eq!(h.features(18).recent7, 0);
    }

    #[test]
    fn hot_pages_need_two_faults_and_hot_faults_is_clairvoyant_free() {
        let mut h = NodeHistory::new(0);
        let first = fault(100, 0x5000, None);
        let refs = vec![&first];
        // Before any absorption the page is cold.
        assert_eq!(h.hot_faults(&refs), 0);
        h.absorb_day(0, &refs);
        assert_eq!(h.features(1).hot_pages, 0);
        let second = fault(200, 0x5001, None); // same 4 KiB page
        h.absorb_day(0, &[&second]);
        assert_eq!(h.features(1).hot_pages, 1);
        // Now a third fault on that page counts as hot coverage.
        let third = fault(300, 0x5abc, None);
        assert_eq!(h.hot_faults(&[&third]), 1);
        // A fault on a different page does not.
        let other = fault(300, 0x9000, None);
        assert_eq!(h.hot_faults(&[&other]), 0);
        assert_eq!(h.features(1).repeat_share_pct, 50);
    }

    #[test]
    fn temperature_mean_is_integer_and_order_free() {
        let mut h = NodeHistory::new(0);
        let a = fault(0, 0x1000, Some(35.5));
        let b = fault(10, 0x2000, Some(44.5));
        h.absorb_day(0, &[&a, &b]);
        assert_eq!(h.features(1).temp_milli, Some(40_000));
        let f = h.features(1);
        assert_eq!(f.state_bin(), f.state_bin());
    }
}
