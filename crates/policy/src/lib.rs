//! policy — the online mitigation policy engine behind `uc policy`.
//!
//! The analysis stack so far asks *what happened*: raw fault rates,
//! spatial structure, correctable/uncorrectable splits. This crate asks
//! what an operator could have *done about it*, online: replay a sealed
//! campaign one simulated day at a time (through faultdb's pruned
//! [`uc_faultdb::days`] stream), and each day, for each node with fault
//! history, pick a cost-aware mitigation lease —
//! [`uc_resilience::MitigationAction`]: observe, checkpoint, quarantine,
//! retire the hot row, or migrate the job — then charge the realized
//! cost against a shared integer cost surface.
//!
//! The layers:
//!
//! * [`features`] — per-node history accumulation and the strictly-past
//!   feature vector (rates by class and flip direction, inter-arrival,
//!   spatial spread, temperature regime), discretized into the bandit's
//!   60 states.
//! * [`bandit`] — a seeded, integer-exact tabular epsilon-greedy
//!   learner; eval decisions are frozen greedy and consume no RNG.
//! * [`policies`] — the [`policies::Policy`] trait: static baselines
//!   (never / always-checkpoint / threshold-on-count), the bandit, and
//!   the clairvoyant per-day oracle.
//! * [`replay`] — the train/eval day-replay driver and the side-by-side
//!   [`replay::Comparison`]; day-lease semantics make the oracle a
//!   provable lower bound on every policy's cost.
//! * [`report`] — the cost-vs-coverage table and CSV export.
//!
//! Everything is integer milli-node-hours end to end; a comparison is
//! byte-identical across reruns at a fixed seed and across thread
//! counts (`tests/policy_replay.rs` proves both, plus the oracle bound,
//! by proptest and by exhaustive enumeration on tiny streams).

pub mod bandit;
pub mod features;
pub mod policies;
pub mod replay;
pub mod report;

pub use bandit::Bandit;
pub use features::{Features, NodeHistory, HOT_PAGE_AFTER, RECENT_WINDOW_DAYS, STATE_BINS};
pub use policies::{
    AlwaysCheckpoint, BanditPolicy, Decision, Never, Oracle, Policy, ThresholdOnCount,
};
pub use replay::{
    replay, run_comparison, train_len, Comparison, PolicyKind, PolicyRun, ReplayConfig,
};
pub use report::{best_static, eval_cost_of, fmt_nh, render_csv, render_table, worst_static};
