//! Per-word multi-bit analysis: Table I and the flip-direction /
//! bit-distance statistics of Section III-C, plus the SECDED/chipkill
//! counterfactual of Section III-D.

use std::collections::HashMap;

use uc_dram::ecc::EccOutcome;

use crate::fault::Fault;

/// One row of the reproduced Table I.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TableIRow {
    pub bits_corrupted: u32,
    pub expected: u32,
    pub corrupted: u32,
    pub occurrences: u64,
    pub consecutive: bool,
}

/// Build the multi-bit corruption table: one row per distinct
/// (expected, corrupted) pair among multi-bit faults, sorted like the paper
/// (by bit count, then by occurrences).
pub fn table_i(faults: &[Fault]) -> Vec<TableIRow> {
    let mut rows: HashMap<(u32, u32), u64> = HashMap::new();
    for f in faults.iter().filter(|f| f.is_multi_bit()) {
        *rows.entry((f.expected, f.actual)).or_insert(0) += 1;
    }
    let mut out: Vec<TableIRow> = rows
        .into_iter()
        .map(|((expected, corrupted), occurrences)| {
            let diff = uc_dram::WordDiff::new(expected, corrupted);
            TableIRow {
                bits_corrupted: diff.bits_corrupted(),
                expected,
                corrupted,
                occurrences,
                consecutive: diff.is_consecutive(),
            }
        })
        .collect();
    out.sort_by_key(|r| (r.bits_corrupted, r.occurrences, r.expected, r.corrupted));
    out
}

/// Aggregate multi-bit statistics (the Section III-C prose numbers).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MultiBitStats {
    pub multi_bit_faults: u64,
    pub double_bit_faults: u64,
    /// Faults with more than 2 corrupted bits — SECDED-escape candidates.
    pub over_two_bit_faults: u64,
    /// Faults whose corrupted bits are *not* one consecutive run.
    pub non_adjacent_faults: u64,
    /// Mean gap between successive corrupted bits, over multi-bit faults.
    pub mean_bit_distance: f64,
    /// Largest gap observed between successive corrupted bits.
    pub max_bit_distance: u32,
}

pub fn multibit_stats(faults: &[Fault]) -> MultiBitStats {
    let mut s = MultiBitStats::default();
    let mut gap_sum = 0.0;
    let mut gap_n = 0u64;
    for f in faults.iter().filter(|f| f.is_multi_bit()) {
        s.multi_bit_faults += 1;
        let bits = f.bits_corrupted();
        if bits == 2 {
            s.double_bit_faults += 1;
        } else {
            s.over_two_bit_faults += 1;
        }
        let d = f.diff();
        if !d.is_consecutive() {
            s.non_adjacent_faults += 1;
        }
        for g in d.gap_distances() {
            gap_sum += f64::from(g);
            gap_n += 1;
            s.max_bit_distance = s.max_bit_distance.max(g);
        }
    }
    s.mean_bit_distance = if gap_n > 0 {
        gap_sum / gap_n as f64
    } else {
        0.0
    };
    s
}

/// Flip-direction totals over all faults (the "90% switched from 1 to 0"
/// statistic counts corrupted *bits*, not faults).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlipDirections {
    pub one_to_zero: u64,
    pub zero_to_one: u64,
}

impl FlipDirections {
    pub fn one_to_zero_fraction(&self) -> f64 {
        let total = self.one_to_zero + self.zero_to_one;
        if total == 0 {
            0.0
        } else {
            self.one_to_zero as f64 / total as f64
        }
    }
}

pub fn flip_directions(faults: &[Fault]) -> FlipDirections {
    let mut out = FlipDirections::default();
    for f in faults {
        let (down, up) = f.diff().flip_directions();
        out.one_to_zero += u64::from(down);
        out.zero_to_one += u64::from(up);
    }
    out
}

/// ECC counterfactual: what a protected system would have done with each
/// fault (Section III-C/D's correctable / detectable / silent taxonomy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EccCounterfactual {
    pub corrected: u64,
    pub detected: u64,
    pub silent: u64,
}

pub fn secded_counterfactual(faults: &[Fault]) -> EccCounterfactual {
    let mut out = EccCounterfactual::default();
    for f in faults {
        match f.diff().secded_outcome() {
            EccOutcome::Clean | EccOutcome::Corrected => out.corrected += 1,
            EccOutcome::Detected => out.detected += 1,
            EccOutcome::Miscorrected | EccOutcome::Undetected => out.silent += 1,
        }
    }
    out
}

pub fn chipkill_counterfactual(faults: &[Fault]) -> EccCounterfactual {
    let mut out = EccCounterfactual::default();
    for f in faults {
        match f.diff().chipkill_outcome() {
            EccOutcome::Clean | EccOutcome::Corrected => out.corrected += 1,
            EccOutcome::Detected => out.detected += 1,
            EccOutcome::Miscorrected | EccOutcome::Undetected => out.silent += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;
    use uc_simclock::SimTime;

    fn fault(expected: u32, actual: u32) -> Fault {
        Fault {
            node: NodeId(1),
            time: SimTime::from_secs(0),
            vaddr: 0,
            expected,
            actual,
            temp: None,
            raw_logs: 1,
        }
    }

    /// The paper's Table I as faults (with occurrence multiplicity).
    fn paper_table_faults() -> Vec<Fault> {
        let rows: &[(u32, u32, u64)] = &[
            (0x0000_16bb, 0x0000_16b8, 1),
            (0xffff_ffff, 0xffff_eeff, 2),
            (0x0000_03c1, 0x0000_03c2, 2),
            (0xffff_ffff, 0xffff_7dff, 4),
            (0xffff_ffff, 0xffff_f5ff, 4),
            (0xffff_ffff, 0xffff_f3ff, 7),
            (0xffff_ffff, 0xffff_f9ff, 10),
            (0xffff_ffff, 0xffff_77ff, 10),
            (0xffff_ffff, 0xffff_7bff, 36),
            (0xffff_ffff, 0xffff_75ff, 1),
            (0xffff_ffff, 0xffff_f1ff, 1),
            (0x0000_0461, 0x0000_6e61, 1),
            (0x0000_2957, 0x0000_2958, 1),
            (0x0000_71b2, 0x0000_7100, 1),
            (0x0000_02e4, 0x0000_0215, 1),
            (0x0000_6ab4, 0x0000_6a5a, 1),
            (0xffff_ffff, 0xffff_ff00, 1),
            (0x0000_0058, 0xe600_6358, 1),
        ];
        let mut out = Vec::new();
        for &(e, a, n) in rows {
            for _ in 0..n {
                out.push(fault(e, a));
            }
        }
        out
    }

    #[test]
    fn paper_table_reproduces_85_multibit() {
        let faults = paper_table_faults();
        let stats = multibit_stats(&faults);
        assert_eq!(stats.multi_bit_faults, 85);
        assert_eq!(stats.double_bit_faults, 76);
        assert_eq!(stats.over_two_bit_faults, 9);
        assert_eq!(stats.max_bit_distance, 11);
        assert!(
            stats.non_adjacent_faults > stats.multi_bit_faults / 2,
            "majority non-adjacent"
        );
    }

    #[test]
    fn table_i_rows_regroup_to_18_patterns() {
        let faults = paper_table_faults();
        let rows = table_i(&faults);
        assert_eq!(rows.len(), 18);
        let total: u64 = rows.iter().map(|r| r.occurrences).sum();
        assert_eq!(total, 85);
        // The dominant row: 0xffffffff -> 0xffff7bff with 36 occurrences.
        let top = rows.iter().max_by_key(|r| r.occurrences).unwrap();
        assert_eq!(top.corrupted, 0xffff_7bff);
        assert_eq!(top.occurrences, 36);
        assert!(!top.consecutive);
        // Sorted by bit count first.
        assert!(rows
            .windows(2)
            .all(|w| w[0].bits_corrupted <= w[1].bits_corrupted));
    }

    #[test]
    fn single_bit_faults_excluded_from_table() {
        let faults = vec![fault(0xFFFF_FFFF, 0xFFFF_FFFE), fault(0, 0b11)];
        let rows = table_i(&faults);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].bits_corrupted, 2);
    }

    #[test]
    fn flip_directions_ninety_ten() {
        // 9 bits down, 1 bit up.
        let faults = vec![
            fault(0xFFFF_FFFF, 0xFFFF_FE00), // 8 bits 1->0... (0x1FF = 9 bits)
            fault(0x0000_0000, 0x0000_0001), // 1 bit 0->1
        ];
        let d = flip_directions(&faults);
        assert_eq!(d.one_to_zero, 9);
        assert_eq!(d.zero_to_one, 1);
        assert!((d.one_to_zero_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn secded_counterfactual_on_paper_table() {
        let faults = paper_table_faults();
        let c = secded_counterfactual(&faults);
        // All 76 doubles are detected; none are corrected.
        assert_eq!(c.corrected, 0);
        assert!(c.detected >= 76);
        assert_eq!(c.corrected + c.detected + c.silent, 85);
    }

    #[test]
    fn chipkill_beats_secded_on_nibble_errors() {
        // A 4-bit corruption within one nibble: chipkill corrects.
        let f = vec![fault(0xFFFF_FFFF, 0xFFFF_0FFF)];
        let ck = chipkill_counterfactual(&f);
        assert_eq!(ck.corrected, 1);
        let sd = secded_counterfactual(&f);
        assert_eq!(sd.corrected, 0);
    }

    #[test]
    fn empty_input_stats() {
        let s = multibit_stats(&[]);
        assert_eq!(s, MultiBitStats::default());
        assert_eq!(flip_directions(&[]).one_to_zero_fraction(), 0.0);
        assert!(table_i(&[]).is_empty());
    }
}
