//! # uc-analysis — the paper's analysis suite
//!
//! Everything in Section III of the paper, implemented over the log model
//! of `uc-faultlog`:
//!
//! - [`extract`]: the error-accounting methodology of Section II-C —
//!   collapse consecutive re-detections of the same cell into one
//!   independent fault, keeping the raw-log multiplicity for accounting;
//! - [`fault`]: the independent-fault record all analyses consume;
//! - [`simultaneity`]: grouping faults that share a timestamp on a node
//!   (Section III-C's per-node multi-bit accounting, Fig. 4);
//! - [`multibit`]: Table I — per-word multi-bit patterns, adjacency,
//!   distances, flip directions, and the SECDED/chipkill counterfactual;
//! - [`diurnal`]: Figs. 5-6 — error counts by wall-clock hour;
//! - [`temperature`]: Figs. 7-8 — error counts by node temperature;
//! - [`daily`]: Figs. 9-11 — per-day scanned terabyte-hours (reconstructed
//!   from START/END pairs, with the paper's conservative zero-credit rule
//!   for hard-rebooted sessions) and per-day error counts;
//! - [`spatial`]: Figs. 3 and 12 — per-node fault counts and the top-k
//!   nodes' time series;
//! - [`regime`]: Fig. 13 and the MTBF split — normal vs degraded days;
//! - [`heatmap`]: the blade x SoC grids of Figs. 1-3 with ASCII rendering;
//! - [`temporal`]: burstiness statistics and the spatio-temporal failure
//!   predictor of Section III-I;
//! - [`bitpos`]: corrupted-bit-position histograms ("majority of multi-bit
//!   corruptions in the least significant bits");
//! - [`physical`]: mapping simultaneous corruption back to (rank, bank,
//!   row, column) coordinates to test the paper's physical-proximity
//!   suspicion;
//! - [`stats`]: means, histograms, MTBF, and Pearson correlation with a
//!   two-sided p-value (ln-gamma + regularized incomplete beta + Student-t
//!   CDF, implemented from scratch).

pub mod bitpos;
pub mod daily;
pub mod diurnal;
pub mod extract;
pub mod fault;
pub mod heatmap;
pub mod multibit;
pub mod physical;
pub mod regime;
pub mod simultaneity;
pub mod spatial;
pub mod stats;
pub mod temperature;
pub mod temporal;

pub use extract::{extract_node_faults, ExtractConfig};
pub use fault::{BitClass, Fault};
pub use heatmap::NodeGrid;
pub use stats::{mtbf_hours, pearson, PearsonResult};
