//! Blade x SoC node grids — the data behind Figs. 1, 2 and 3 — with ASCII
//! rendering for the `reproduce` binary.

use uc_cluster::{NodeId, MONITORED_BLADES, SOCS_PER_BLADE};

/// A per-node value grid over the monitored blades.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeGrid {
    pub blades: u32,
    /// `values[blade][soc]`.
    pub values: Vec<Vec<f64>>,
}

impl NodeGrid {
    pub fn new(blades: u32) -> NodeGrid {
        NodeGrid {
            blades,
            values: vec![vec![0.0; SOCS_PER_BLADE as usize]; blades as usize],
        }
    }

    /// The paper's 63-blade grid.
    pub fn paper_size() -> NodeGrid {
        NodeGrid::new(MONITORED_BLADES)
    }

    pub fn set(&mut self, node: NodeId, value: f64) {
        let b = node.blade().0 as usize;
        if b < self.values.len() {
            self.values[b][node.soc() as usize] = value;
        }
    }

    pub fn add(&mut self, node: NodeId, value: f64) {
        let b = node.blade().0 as usize;
        if b < self.values.len() {
            self.values[b][node.soc() as usize] += value;
        }
    }

    pub fn get(&self, node: NodeId) -> f64 {
        let b = node.blade().0 as usize;
        if b < self.values.len() {
            self.values[b][node.soc() as usize]
        } else {
            0.0
        }
    }

    pub fn max(&self) -> f64 {
        self.values.iter().flatten().copied().fold(0.0f64, f64::max)
    }

    pub fn total(&self) -> f64 {
        self.values.iter().flatten().sum()
    }

    /// Number of cells with a non-zero value.
    pub fn nonzero_cells(&self) -> usize {
        self.values.iter().flatten().filter(|&&v| v != 0.0).count()
    }

    /// Mean over all cells.
    pub fn mean(&self) -> f64 {
        let n = (self.blades * SOCS_PER_BLADE) as f64;
        if n == 0.0 {
            0.0
        } else {
            self.total() / n
        }
    }

    /// Per-SoC-position column means — shows the SoC-12 shutdown band.
    pub fn soc_position_means(&self) -> Vec<f64> {
        let mut out = vec![0.0; SOCS_PER_BLADE as usize];
        for row in &self.values {
            for (s, v) in row.iter().enumerate() {
                out[s] += v;
            }
        }
        for v in &mut out {
            *v /= self.blades.max(1) as f64;
        }
        out
    }

    /// ASCII heat map: one row per blade, one character per SoC, with a
    /// 10-level intensity ramp. `log_scale` reproduces Fig. 3's
    /// logarithmic color scale.
    pub fn render_ascii(&self, log_scale: bool) -> String {
        const RAMP: [char; 11] = ['.', '1', '2', '3', '4', '5', '6', '7', '8', '9', '#'];
        let transform = |v: f64| if log_scale { (v + 1.0).ln() } else { v };
        let max = self
            .values
            .iter()
            .flatten()
            .map(|&v| transform(v))
            .fold(0.0f64, f64::max);
        let mut out = String::new();
        out.push_str("      soc 123456789012345\n");
        for (b, row) in self.values.iter().enumerate() {
            out.push_str(&format!("blade {:02}  ", b + 1));
            for &v in row {
                let c = if v == 0.0 {
                    RAMP[0]
                } else if max <= 0.0 {
                    RAMP[10]
                } else {
                    let level = (transform(v) / max * 10.0).ceil().clamp(1.0, 10.0) as usize;
                    RAMP[level]
                };
                out.push(c);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::BladeId;

    fn node(blade: u32, soc: u32) -> NodeId {
        NodeId::new(BladeId(blade), soc)
    }

    #[test]
    fn set_get_add() {
        let mut g = NodeGrid::paper_size();
        g.set(node(2, 3), 5.0);
        g.add(node(2, 3), 1.5);
        assert_eq!(g.get(node(2, 3)), 6.5);
        assert_eq!(g.get(node(2, 4)), 0.0);
        assert_eq!(g.total(), 6.5);
        assert_eq!(g.nonzero_cells(), 1);
    }

    #[test]
    fn out_of_range_blades_ignored() {
        let mut g = NodeGrid::new(4);
        g.set(node(60, 0), 9.0);
        assert_eq!(g.total(), 0.0);
        assert_eq!(g.get(node(60, 0)), 0.0);
    }

    #[test]
    fn soc_position_means_detect_column_band() {
        let mut g = NodeGrid::new(10);
        for b in 0..10 {
            for s in 0..SOCS_PER_BLADE {
                g.set(node(b, s), if s == 11 { 1.0 } else { 5.0 });
            }
        }
        let means = g.soc_position_means();
        assert_eq!(means[11], 1.0);
        assert_eq!(means[0], 5.0);
    }

    #[test]
    fn ascii_rendering_shape() {
        let mut g = NodeGrid::new(3);
        g.set(node(0, 0), 10.0);
        g.set(node(1, 7), 5.0);
        let s = g.render_ascii(false);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 blades");
        assert!(lines[1].ends_with("#.............."));
        assert!(lines[2].contains('5'));
        // Zero cells render as dots.
        assert_eq!(lines[3].matches('.').count(), 15);
    }

    #[test]
    fn log_scale_compresses_range() {
        let mut g = NodeGrid::new(2);
        g.set(node(0, 0), 50_000.0);
        g.set(node(1, 0), 100.0);
        let linear = g.render_ascii(false);
        let log = g.render_ascii(true);
        // On the linear scale 100-of-50000 rounds into the lowest non-zero
        // band; on the log scale it climbs several levels.
        let level_of =
            |s: &str, line: usize| s.lines().nth(line + 1).unwrap().chars().nth(10).unwrap();
        assert_eq!(level_of(&linear, 1), '1');
        assert!(level_of(&log, 1) > '1');
    }

    #[test]
    fn mean_over_cells() {
        let mut g = NodeGrid::new(2);
        g.set(node(0, 0), 30.0);
        assert!((g.mean() - 1.0).abs() < 1e-12);
    }
}
