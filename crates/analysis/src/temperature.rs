//! Temperature analysis: errors vs node temperature (Figs. 7 and 8).
//!
//! Only faults with recorded temperature participate (telemetry began in
//! April 2015). The paper's findings to reproduce: most errors sit in the
//! nominal 30-40 C band, a small set above 60 C, and *no* multi-bit error
//! at elevated temperature.

use crate::fault::Fault;
use crate::stats::Histogram;

/// Temperature profile: one histogram per bit class plus scatter points.
#[derive(Clone, Debug)]
pub struct TemperatureProfile {
    /// (temperature C, bits corrupted) for each fault with telemetry.
    pub points: Vec<(f32, u32)>,
    /// Faults lacking temperature (pre-April or sensor gaps).
    pub censored: u64,
}

impl TemperatureProfile {
    pub fn compute(faults: &[Fault]) -> TemperatureProfile {
        let mut points = Vec::new();
        let mut censored = 0;
        for f in faults {
            match f.temp {
                Some(t) => points.push((t, f.bits_corrupted())),
                None => censored += 1,
            }
        }
        TemperatureProfile { points, censored }
    }

    /// Histogram of fault temperatures over [15, 90) C with 2-degree bins.
    pub fn histogram(&self, multibit_only: bool) -> Histogram {
        let mut h = Histogram::new(15.0, 90.0, 38);
        for &(t, bits) in &self.points {
            if !multibit_only || bits >= 2 {
                h.add(f64::from(t));
            }
        }
        h
    }

    /// Fraction of (temperature-known) faults within [lo, hi) C.
    pub fn fraction_in_band(&self, lo: f32, hi: f32) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let n = self
            .points
            .iter()
            .filter(|(t, _)| *t >= lo && *t < hi)
            .count();
        n as f64 / self.points.len() as f64
    }

    /// Number of faults observed above a threshold temperature.
    pub fn count_above(&self, threshold: f32, multibit_only: bool) -> u64 {
        self.points
            .iter()
            .filter(|(t, bits)| *t > threshold && (!multibit_only || *bits >= 2))
            .count() as u64
    }

    /// Pearson correlation between temperature and bit count, with p-value.
    pub fn temp_bits_correlation(&self) -> crate::stats::PearsonResult {
        let xs: Vec<f64> = self.points.iter().map(|(t, _)| f64::from(*t)).collect();
        let ys: Vec<f64> = self.points.iter().map(|(_, b)| f64::from(*b)).collect();
        crate::stats::pearson(&xs, &ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;
    use uc_simclock::SimTime;

    fn fault(temp: Option<f32>, xor: u32) -> Fault {
        Fault {
            node: NodeId(0),
            time: SimTime::from_secs(0),
            vaddr: 0,
            expected: 0xFFFF_FFFF,
            actual: 0xFFFF_FFFF ^ xor,
            temp,
            raw_logs: 1,
        }
    }

    #[test]
    fn censoring_counted() {
        let faults = vec![fault(None, 1), fault(Some(35.0), 1), fault(None, 3)];
        let p = TemperatureProfile::compute(&faults);
        assert_eq!(p.censored, 2);
        assert_eq!(p.points.len(), 1);
    }

    #[test]
    fn band_fractions() {
        let faults = vec![
            fault(Some(32.0), 1),
            fault(Some(35.0), 1),
            fault(Some(38.0), 1),
            fault(Some(65.0), 1),
        ];
        let p = TemperatureProfile::compute(&faults);
        assert!((p.fraction_in_band(30.0, 40.0) - 0.75).abs() < 1e-12);
        assert_eq!(p.count_above(60.0, false), 1);
        assert_eq!(p.count_above(60.0, true), 0);
    }

    #[test]
    fn multibit_histogram_filters() {
        let faults = vec![
            fault(Some(33.0), 1),
            fault(Some(33.0), 0b11),
            fault(Some(70.0), 1),
        ];
        let p = TemperatureProfile::compute(&faults);
        assert_eq!(p.histogram(false).total(), 3);
        assert_eq!(p.histogram(true).total(), 1);
    }

    #[test]
    fn correlation_degenerate_when_uniform() {
        let faults = vec![fault(Some(33.0), 1); 10];
        let p = TemperatureProfile::compute(&faults);
        let res = p.temp_bits_correlation();
        assert_eq!(res.r, 0.0);
        assert_eq!(res.p_value, 1.0);
    }

    #[test]
    fn empty_profile() {
        let p = TemperatureProfile::compute(&[]);
        assert_eq!(p.fraction_in_band(0.0, 100.0), 0.0);
        assert_eq!(p.histogram(false).total(), 0);
    }
}
