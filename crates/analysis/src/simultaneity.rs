//! Simultaneity analysis (paper Section III-C, Fig. 4).
//!
//! Faults on the same node sharing a timestamp are one *simultaneity
//! group*: physically they share a root cause (one shower, one burst), even
//! though a SECDED machine would report them as independent single-bit
//! corrections. The paper's two accountings:
//!
//! - **per memory word**: multiplicity = bits corrupted within one word
//!   (the standard multi-bit definition);
//! - **per node**: multiplicity = total bits corrupted across all words of
//!   the group.
//!
//! Total corrupted-word count is conserved between the two views — the
//! paper's "keeping the total number of corruptions constant" remark — and
//! a property test pins that invariant.

use std::collections::HashMap;

use uc_cluster::NodeId;
use uc_simclock::SimTime;

use crate::fault::Fault;

/// A group of faults sharing (node, timestamp).
#[derive(Clone, Debug)]
pub struct SimulGroup {
    pub node: NodeId,
    pub time: SimTime,
    pub faults: Vec<Fault>,
}

impl SimulGroup {
    /// Total bits corrupted across the group (per-node multiplicity).
    pub fn total_bits(&self) -> u32 {
        self.faults.iter().map(|f| f.bits_corrupted()).sum()
    }

    /// Number of corrupted words.
    pub fn words(&self) -> usize {
        self.faults.len()
    }

    /// Sorted per-word bit multiplicities, e.g. [1, 1, 2] for a double
    /// accompanied by two singles.
    pub fn word_multiplicities(&self) -> Vec<u32> {
        let mut m: Vec<u32> = self.faults.iter().map(|f| f.bits_corrupted()).collect();
        m.sort_unstable();
        m
    }
}

/// Group faults by (node, exact timestamp).
pub fn group_simultaneous(faults: &[Fault]) -> Vec<SimulGroup> {
    let mut map: HashMap<(u32, i64), Vec<Fault>> = HashMap::new();
    for f in faults {
        map.entry((f.node.0, f.time.as_secs()))
            .or_default()
            .push(*f);
    }
    let mut groups: Vec<SimulGroup> = map
        .into_iter()
        .map(|((node, t), faults)| SimulGroup {
            node: NodeId(node),
            time: SimTime::from_secs(t),
            faults,
        })
        .collect();
    groups.sort_by_key(|g| (g.time, g.node.0));
    groups
}

/// The Fig. 4 dataset: fault counts by multiplicity under both accountings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MultiplicityComparison {
    /// `per_word[m]` = number of corrupted words with exactly `m` bits
    /// flipped (index 0 unused).
    pub per_word: Vec<u64>,
    /// `per_node[m]` = number of simultaneity groups whose total corrupted
    /// bits equal `m` (index 0 unused).
    pub per_node: Vec<u64>,
}

impl MultiplicityComparison {
    pub fn compute(faults: &[Fault]) -> MultiplicityComparison {
        let groups = group_simultaneous(faults);
        let mut per_word = vec![0u64; 40];
        let mut per_node = vec![0u64; 40];
        for f in faults {
            let b = (f.bits_corrupted() as usize).min(per_word.len() - 1);
            per_word[b] += 1;
        }
        for g in &groups {
            let b = (g.total_bits() as usize).min(per_node.len() - 1);
            per_node[b] += 1;
        }
        MultiplicityComparison { per_word, per_node }
    }

    /// Multi-bit counts under each accounting (m >= 2).
    pub fn multi_bit_totals(&self) -> (u64, u64) {
        (
            self.per_word[2..].iter().sum(),
            self.per_node[2..].iter().sum(),
        )
    }

    /// Single-bit counts under each accounting.
    pub fn single_bit_totals(&self) -> (u64, u64) {
        (self.per_word[1], self.per_node[1])
    }
}

/// Coincidence statistics of Section III-C: how often multi-bit words are
/// accompanied by other corruption in the same group.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoincidenceStats {
    /// Groups of >= 2 single-bit words only.
    pub multi_single_groups: u64,
    /// Faults (words) that are part of any group with >= 2 words.
    pub faults_in_groups: u64,
    /// Double-bit words accompanied by at least one single-bit word.
    pub double_with_single: u64,
    /// Triple-bit words accompanied by at least one single-bit word.
    pub triple_with_single: u64,
    /// Groups with two double-bit words.
    pub double_double_groups: u64,
    /// Largest per-node total bit multiplicity observed.
    pub max_group_bits: u32,
}

pub fn coincidence_stats(faults: &[Fault]) -> CoincidenceStats {
    let mut s = CoincidenceStats::default();
    for g in group_simultaneous(faults) {
        s.max_group_bits = s.max_group_bits.max(g.total_bits());
        if g.words() < 2 {
            continue;
        }
        s.faults_in_groups += g.words() as u64;
        let m = g.word_multiplicities();
        let singles = m.iter().filter(|&&x| x == 1).count();
        let doubles = m.iter().filter(|&&x| x == 2).count() as u64;
        let triples = m.iter().filter(|&&x| x == 3).count() as u64;
        if singles == g.words() {
            s.multi_single_groups += 1;
        }
        if singles > 0 {
            s.double_with_single += doubles;
            s.triple_with_single += triples;
        }
        if doubles >= 2 {
            s.double_double_groups += 1;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fault(node: u32, t: i64, vaddr: u64, xor: u32) -> Fault {
        Fault {
            node: NodeId(node),
            time: SimTime::from_secs(t),
            vaddr,
            expected: 0xFFFF_FFFF,
            actual: 0xFFFF_FFFF ^ xor,
            temp: None,
            raw_logs: 1,
        }
    }

    #[test]
    fn grouping_by_node_and_time() {
        let faults = vec![
            fault(1, 100, 0x10, 1),
            fault(1, 100, 0x20, 2),
            fault(1, 200, 0x30, 1),
            fault(2, 100, 0x40, 1),
        ];
        let groups = group_simultaneous(&faults);
        assert_eq!(groups.len(), 3);
        let big = groups.iter().find(|g| g.words() == 2).unwrap();
        assert_eq!(big.node, NodeId(1));
        assert_eq!(big.total_bits(), 2);
    }

    #[test]
    fn fig4_shape_single_bits_migrate_to_multibit_per_node() {
        // 10 words, all single-bit, in 5 simultaneous pairs: per-word sees
        // ten 1-bit corruptions; per-node sees five 2-bit corruptions.
        let mut faults = Vec::new();
        for k in 0..5 {
            faults.push(fault(1, 100 + k, 0x10 + k as u64, 1));
            faults.push(fault(1, 100 + k, 0x9000 + k as u64, 2));
        }
        let cmp = MultiplicityComparison::compute(&faults);
        assert_eq!(cmp.single_bit_totals(), (10, 0));
        assert_eq!(cmp.multi_bit_totals(), (0, 5));
        assert_eq!(cmp.per_node[2], 5);
    }

    #[test]
    fn per_word_counts_by_bits() {
        let faults = vec![
            fault(1, 1, 0x1, 0b1),
            fault(1, 2, 0x2, 0b11),
            fault(1, 3, 0x3, 0b111),
            fault(1, 4, 0x4, 0b1011),
        ];
        let cmp = MultiplicityComparison::compute(&faults);
        assert_eq!(cmp.per_word[1], 1);
        assert_eq!(cmp.per_word[2], 1);
        assert_eq!(cmp.per_word[3], 2);
    }

    #[test]
    fn coincidence_double_with_single() {
        let faults = vec![
            fault(1, 100, 0x1, 0b11),  // double
            fault(1, 100, 0x900, 0b1), // single companion
            fault(1, 200, 0x2, 0b11),  // lone double
        ];
        let s = coincidence_stats(&faults);
        assert_eq!(s.double_with_single, 1);
        assert_eq!(s.double_double_groups, 0);
        assert_eq!(s.multi_single_groups, 0);
        assert_eq!(s.max_group_bits, 3);
    }

    #[test]
    fn coincidence_double_double() {
        let faults = vec![fault(1, 100, 0x1, 0b11), fault(1, 100, 0x2, 0b1100)];
        let s = coincidence_stats(&faults);
        assert_eq!(s.double_double_groups, 1);
        assert_eq!(s.double_with_single, 0);
    }

    #[test]
    fn coincidence_pure_single_shower() {
        let faults: Vec<Fault> = (0..36)
            .map(|k| fault(1, 100, 0x100 + k, 1 << (k % 32)))
            .collect();
        let s = coincidence_stats(&faults);
        assert_eq!(s.multi_single_groups, 1);
        assert_eq!(s.faults_in_groups, 36);
        assert_eq!(s.max_group_bits, 36, "up to 36 bits across words");
    }

    proptest! {
        #[test]
        fn word_count_conserved_between_accountings(
            times in proptest::collection::vec(0i64..50, 1..60),
        ) {
            // Arbitrary coincidence structure: total corrupted words equals
            // the per-word total; bit totals match between accountings.
            let faults: Vec<Fault> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| fault(1, t, i as u64 * 8, 1 << (i % 32)))
                .collect();
            let cmp = MultiplicityComparison::compute(&faults);
            let per_word_total: u64 = cmp.per_word.iter().sum();
            prop_assert_eq!(per_word_total, faults.len() as u64);
            // All faults are single-bit here, so total bits = word count,
            // and per-node bit-weighted total must equal it.
            let per_node_bits: u64 = cmp
                .per_node
                .iter()
                .enumerate()
                .map(|(m, &c)| m as u64 * c)
                .sum();
            prop_assert_eq!(per_node_bits, faults.len() as u64);
        }
    }
}
