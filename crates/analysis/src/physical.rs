//! Physical-alignment analysis of simultaneous corruption.
//!
//! "We suspect that the affected memory cells are in physical proximity or
//! alignment (row, column, bank) however the memory controller maps them to
//! different address words." (Section III-C). The scanner logs word
//! addresses; mapping them back through the DRAM geometry lets us *test*
//! that suspicion: within each simultaneity group, how often do corrupted
//! words share a bank, share a column, and sit within a few rows of each
//! other — versus what uniform placement would give?

use uc_dram::{Geometry, WordAddr};

use crate::fault::Fault;
use crate::simultaneity::group_simultaneous;

/// Alignment statistics over multi-word simultaneity groups.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AlignmentStats {
    /// Multi-word groups examined.
    pub groups: u64,
    /// Word pairs within groups.
    pub pairs: u64,
    /// Pairs sharing (rank, bank).
    pub same_bank_pairs: u64,
    /// Pairs sharing (rank, bank, column).
    pub same_column_pairs: u64,
    /// Same-column pairs within `NEAR_ROWS` rows of each other.
    pub near_row_pairs: u64,
    /// Mean absolute row distance over same-column pairs.
    pub mean_row_distance: f64,
}

/// "Physically近" threshold: rows within this distance count as adjacent
/// neighbourhood (a strike track or a shared local defect).
pub const NEAR_ROWS: u32 = 8;

impl AlignmentStats {
    /// Fraction of in-group pairs that share a column — the aligned
    /// fraction the paper predicts to be far above chance (1/#columns).
    pub fn same_column_fraction(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.same_column_pairs as f64 / self.pairs as f64
        }
    }

    /// Chance level for the same-column fraction under uniform placement.
    pub fn chance_same_column(geometry: Geometry) -> f64 {
        1.0 / (1u64 << (geometry.rank_bits + geometry.bank_bits + geometry.col_bits)) as f64
    }
}

/// Compute alignment statistics over the multi-word simultaneity groups of
/// a fault stream, under the given device geometry.
pub fn alignment_stats(faults: &[Fault], geometry: Geometry) -> AlignmentStats {
    let mut s = AlignmentStats::default();
    let mut row_dist_sum = 0.0f64;
    for g in group_simultaneous(faults) {
        if g.words() < 2 {
            continue;
        }
        s.groups += 1;
        let coords: Vec<_> = g
            .faults
            .iter()
            .map(|f| geometry.coord(WordAddr((f.vaddr / 4) % geometry.words())))
            .collect();
        for i in 0..coords.len() {
            for j in (i + 1)..coords.len() {
                s.pairs += 1;
                let (a, b) = (coords[i], coords[j]);
                if a.rank == b.rank && a.bank == b.bank {
                    s.same_bank_pairs += 1;
                    if a.col == b.col {
                        s.same_column_pairs += 1;
                        let d = a.row.abs_diff(b.row);
                        row_dist_sum += f64::from(d);
                        if d <= NEAR_ROWS {
                            s.near_row_pairs += 1;
                        }
                    }
                }
            }
        }
    }
    s.mean_row_distance = if s.same_column_pairs > 0 {
        row_dist_sum / s.same_column_pairs as f64
    } else {
        0.0
    };
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;
    use uc_dram::PhysCoord;
    use uc_simclock::SimTime;

    fn geometry() -> Geometry {
        Geometry::NODE_4GB
    }

    fn fault_at(t: i64, addr: WordAddr) -> Fault {
        Fault {
            node: NodeId(1),
            time: SimTime::from_secs(t),
            vaddr: addr.0 * 4,
            expected: 0xFFFF_FFFF,
            actual: 0xFFFF_FFFE,
            temp: None,
            raw_logs: 1,
        }
    }

    #[test]
    fn aligned_shower_detected() {
        // A shower over adjacent rows of one column: all pairs aligned.
        let g = geometry();
        let base = PhysCoord {
            rank: 0,
            bank: 3,
            row: 100,
            col: 77,
        };
        let faults: Vec<Fault> = (0..4)
            .map(|k| {
                fault_at(
                    500,
                    g.addr(PhysCoord {
                        row: base.row + k,
                        ..base
                    }),
                )
            })
            .collect();
        let s = alignment_stats(&faults, g);
        assert_eq!(s.groups, 1);
        assert_eq!(s.pairs, 6);
        assert_eq!(s.same_bank_pairs, 6);
        assert_eq!(s.same_column_pairs, 6);
        assert_eq!(s.near_row_pairs, 6);
        assert!(s.mean_row_distance < 3.1);
        assert_eq!(s.same_column_fraction(), 1.0);
    }

    #[test]
    fn scattered_group_not_aligned() {
        // Same timestamp, wildly different coordinates.
        let g = geometry();
        let faults = vec![
            fault_at(
                500,
                g.addr(PhysCoord {
                    rank: 0,
                    bank: 0,
                    row: 1,
                    col: 1,
                }),
            ),
            fault_at(
                500,
                g.addr(PhysCoord {
                    rank: 1,
                    bank: 5,
                    row: 60_000,
                    col: 900,
                }),
            ),
            fault_at(
                500,
                g.addr(PhysCoord {
                    rank: 0,
                    bank: 7,
                    row: 30_000,
                    col: 500,
                }),
            ),
        ];
        let s = alignment_stats(&faults, g);
        assert_eq!(s.same_column_pairs, 0);
        assert_eq!(s.same_column_fraction(), 0.0);
    }

    #[test]
    fn single_word_groups_ignored() {
        let g = geometry();
        let faults = vec![
            fault_at(1, WordAddr(100)),
            fault_at(2, WordAddr(200)),
            fault_at(3, WordAddr(300)),
        ];
        let s = alignment_stats(&faults, g);
        assert_eq!(s.groups, 0);
        assert_eq!(s.pairs, 0);
    }

    #[test]
    fn chance_level_is_tiny() {
        // 2^(1+3+10) = 16384 distinct (rank,bank,col) combinations.
        let chance = AlignmentStats::chance_same_column(geometry());
        assert!((chance - 1.0 / 16_384.0).abs() < 1e-12);
    }

    #[test]
    fn campaign_showers_are_aligned_far_above_chance() {
        // The generative shower model places simultaneous single-bit hits
        // in adjacent rows of one column; the analysis must recover that.
        use uc_faults::FaultScenario;
        use uc_faults::ScanWindow;
        use uc_simclock::SimDuration;

        let mut scenario = FaultScenario::background_only(0.01);
        scenario.background.shower_prob = 0.5;
        let windows: Vec<ScanWindow> = (0..200)
            .map(|d| ScanWindow {
                start: SimTime::from_secs(d * 86_400),
                end: SimTime::from_secs(d * 86_400) + SimDuration::from_hours(12),
                alloc_words: (3 << 30) / 4,
            })
            .collect();
        let profile = scenario.profile_for_node(9, NodeId(4), &windows);
        // Build faults directly from the strikes (all observed, 1 bit).
        let faults: Vec<Fault> = profile
            .transients
            .iter()
            .flat_map(|e| {
                e.strikes.iter().map(move |s| Fault {
                    node: e.node,
                    time: e.time,
                    vaddr: s.addr.0 * 4,
                    expected: 0xFFFF_FFFF,
                    actual: 0xFFFF_FFFE,
                    temp: None,
                    raw_logs: 1,
                })
            })
            .collect();
        let s = alignment_stats(&faults, geometry());
        assert!(s.groups > 10, "groups {}", s.groups);
        let chance = AlignmentStats::chance_same_column(geometry());
        assert!(
            s.same_column_fraction() > chance * 1_000.0,
            "aligned fraction {} vs chance {}",
            s.same_column_fraction(),
            chance
        );
        assert!(s.mean_row_distance <= f64::from(NEAR_ROWS));
    }
}
