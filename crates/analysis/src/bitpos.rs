//! Corrupted-bit-position analysis.
//!
//! The paper observes that "the majority of the multiple bit corruptions
//! occur in the least significant bits of the word". This module builds the
//! per-bit-position histogram of corrupted bits (optionally restricted to
//! multi-bit faults) and summarizes the low-half concentration.

use crate::fault::Fault;

/// Histogram over the 32 bit positions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitPositionHistogram {
    pub counts: [u64; 32],
}

impl BitPositionHistogram {
    /// Count corrupted bit positions across faults; `multibit_only`
    /// restricts to faults corrupting >= 2 bits.
    pub fn compute(faults: &[Fault], multibit_only: bool) -> BitPositionHistogram {
        let mut h = BitPositionHistogram::default();
        for f in faults {
            if multibit_only && !f.is_multi_bit() {
                continue;
            }
            let mut x = f.pattern();
            while x != 0 {
                let b = x.trailing_zeros();
                h.counts[b as usize] += 1;
                x &= x - 1;
            }
        }
        h
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of corrupted bits in positions 0..16.
    pub fn low_half_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let low: u64 = self.counts[..16].iter().sum();
        low as f64 / total as f64
    }

    /// The most frequently corrupted bit position.
    pub fn peak_position(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(i, c)| (**c, std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;
    use uc_simclock::SimTime;

    fn fault(xor: u32) -> Fault {
        Fault {
            node: NodeId(0),
            time: SimTime::from_secs(0),
            vaddr: 0,
            expected: 0xFFFF_FFFF,
            actual: 0xFFFF_FFFF ^ xor,
            temp: None,
            raw_logs: 1,
        }
    }

    #[test]
    fn counts_each_set_bit() {
        let faults = vec![fault(0b101), fault(0b100)];
        let h = BitPositionHistogram::compute(&faults, false);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[2], 2);
        assert_eq!(h.total(), 3);
        assert_eq!(h.peak_position(), 2);
    }

    #[test]
    fn multibit_filter() {
        let faults = vec![fault(1), fault(0b11 << 8)];
        let all = BitPositionHistogram::compute(&faults, false);
        let multi = BitPositionHistogram::compute(&faults, true);
        assert_eq!(all.total(), 3);
        assert_eq!(multi.total(), 2);
        assert_eq!(multi.counts[0], 0);
        assert_eq!(multi.counts[8], 1);
        assert_eq!(multi.counts[9], 1);
    }

    #[test]
    fn low_half_fraction_detects_concentration() {
        let low: Vec<Fault> = (0..9).map(|b| fault(0b11 << b)).collect();
        let mut mixed = low.clone();
        mixed.push(fault(0b11 << 28));
        let h = BitPositionHistogram::compute(&mixed, true);
        assert!(h.low_half_fraction() > 0.8, "{}", h.low_half_fraction());
    }

    #[test]
    fn empty_input() {
        let h = BitPositionHistogram::compute(&[], true);
        assert_eq!(h.total(), 0);
        assert_eq!(h.low_half_fraction(), 0.0);
    }
}
