//! Statistics utilities, implemented from scratch.
//!
//! The paper's quantitative claims rest on a handful of estimators: means,
//! MTBF (hours per failure), and one Pearson correlation with a p-value
//! ("Pearson correlation of -0.17966 with a p-value of 0.0002", Section
//! III-G). The p-value needs the Student-t CDF, which needs the regularized
//! incomplete beta function, which needs ln-gamma — all implemented below
//! (Lanczos approximation + Lentz continued fraction, the standard
//! numerical-recipes route) and validated against reference values.

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance (0 for fewer than 2 samples).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Mean time between failures in hours, given an observation span and an
/// error count. Returns `f64::INFINITY` when no errors occurred.
pub fn mtbf_hours(observed_hours: f64, errors: u64) -> f64 {
    if errors == 0 {
        f64::INFINITY
    } else {
        observed_hours / errors as f64
    }
}

/// Result of a Pearson correlation test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PearsonResult {
    pub r: f64,
    /// Two-sided p-value under the t-distribution null.
    pub p_value: f64,
    pub n: usize,
}

/// Pearson correlation of two equal-length series with a two-sided
/// p-value. Panics on length mismatch; returns r = 0, p = 1 for degenerate
/// inputs (n < 3 or zero variance).
///
/// ```
/// use uc_analysis::stats::pearson;
/// let xs: Vec<f64> = (0..100).map(f64::from).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
/// let r = pearson(&xs, &ys);
/// assert!((r.r - 1.0).abs() < 1e-12);
/// assert!(r.p_value < 1e-10);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> PearsonResult {
    assert_eq!(xs.len(), ys.len(), "series must be the same length");
    let n = xs.len();
    if n < 3 {
        return PearsonResult {
            r: 0.0,
            p_value: 1.0,
            n,
        };
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return PearsonResult {
            r: 0.0,
            p_value: 1.0,
            n,
        };
    }
    let r = (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0);
    let df = (n - 2) as f64;
    let p_value = if r.abs() >= 1.0 {
        0.0
    } else {
        let t = r * (df / (1.0 - r * r)).sqrt();
        2.0 * student_t_sf(t.abs(), df)
    };
    PearsonResult { r, p_value, n }
}

/// ln(Gamma(x)) via the Lanczos approximation (g = 7, n = 9 coefficients).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive argument, got {x}");
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function I_x(a, b), via the Lentz continued
/// fraction with the symmetry transform for convergence.
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (Numerical Recipes betacf).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Survival function of Student's t: P(T > t) for t >= 0 with `df` degrees
/// of freedom.
pub fn student_t_sf(t: f64, df: f64) -> f64 {
    assert!(t >= 0.0, "survival function defined for t >= 0");
    assert!(df > 0.0);
    let x = df / (df + t * t);
    0.5 * inc_beta(df / 2.0, 0.5, x)
}

/// A fixed-width histogram over `[lo, hi)` with values outside clamped
/// into the edge bins.
#[derive(Clone, Debug)]
pub struct Histogram {
    pub lo: f64,
    pub hi: f64,
    pub counts: Vec<u64>,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = ((x - self.lo) / (self.hi - self.lo) * bins as f64)
            .floor()
            .clamp(0.0, (bins - 1) as f64) as usize;
        self.counts[idx] += 1;
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mtbf_examples_from_paper() {
        // 348 normal days with ~50 errors => ~167 hours.
        assert!((mtbf_hours(348.0 * 24.0, 50) - 167.04).abs() < 0.1);
        // 77 degraded days with ~4750 errors => ~0.39 hours.
        assert!((mtbf_hours(77.0 * 24.0, 4_750) - 0.389).abs() < 0.01);
        assert!(mtbf_hours(100.0, 0).is_infinite());
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Gamma(1) = Gamma(2) = 1; Gamma(5) = 24; Gamma(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
        // Gamma(10) = 362880.
        assert!((ln_gamma(10.0) - 362_880f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn inc_beta_reference_values() {
        // I_x(1,1) = x.
        for x in [0.0, 0.2, 0.5, 0.9, 1.0] {
            assert!((inc_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
        // I_x(2,2) = x^2 (3 - 2x).
        for x in [0.1, 0.4, 0.7] {
            let expected = x * x * (3.0 - 2.0 * x);
            assert!((inc_beta(2.0, 2.0, x) - expected).abs() < 1e-12);
        }
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
        let v = inc_beta(3.5, 1.25, 0.3);
        let w = 1.0 - inc_beta(1.25, 3.5, 0.7);
        assert!((v - w).abs() < 1e-12);
    }

    #[test]
    fn student_t_reference_values() {
        // t = 0: survival is 0.5.
        assert!((student_t_sf(0.0, 10.0) - 0.5).abs() < 1e-12);
        // Standard two-sided 95% quantile for df=10 is ~2.228.
        let p = 2.0 * student_t_sf(2.228, 10.0);
        assert!((p - 0.05).abs() < 0.001, "p {p}");
        // Large df approaches the normal: t = 1.96 => two-sided ~0.05.
        let p = 2.0 * student_t_sf(1.96, 10_000.0);
        assert!((p - 0.05).abs() < 0.002, "p {p}");
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let res = pearson(&xs, &ys);
        assert!((res.r - 1.0).abs() < 1e-12);
        assert!(res.p_value < 1e-10);
        let ys_neg: Vec<f64> = xs.iter().map(|x| -2.0 * x).collect();
        assert!((pearson(&xs, &ys_neg).r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_paper_magnitude_case() {
        // Construct series of the paper's scale (n = 425 days) with a weak
        // negative correlation; |r| ~ 0.18 must be significant at ~1e-4,
        // matching the paper's r = -0.17966, p = 0.0002 report.
        let n = 425;
        let xs: Vec<f64> = (0..n).map(|i| f64::from(i % 29)).collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| {
                let noise = f64::from((i * 37) % 17) - 8.0;
                -0.25 * f64::from(i % 29) + noise
            })
            .collect();
        let res = pearson(&xs, &ys);
        assert!(res.r < -0.1, "r {}", res.r);
        assert!(res.p_value < 0.01, "p {}", res.p_value);
    }

    #[test]
    fn pearson_degenerate_inputs() {
        let res = pearson(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(res.p_value, 1.0);
        let res = pearson(&[1.0, 1.0, 1.0, 1.0], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(res.r, 0.0);
        assert_eq!(res.p_value, 1.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn pearson_length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(0.5);
        h.add(2.5);
        h.add(9.99);
        h.add(-3.0); // clamped into bin 0
        h.add(42.0); // clamped into bin 4
        assert_eq!(h.counts, vec![2, 1, 0, 0, 2]);
        assert_eq!(h.total(), 5);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn pearson_r_bounded(seed in 1u64..5000) {
            let xs: Vec<f64> = (0..40).map(|i| ((seed.wrapping_mul(i + 1)) % 1000) as f64).collect();
            let ys: Vec<f64> = (0..40).map(|i| ((seed.wrapping_mul(7 * i + 3)) % 1000) as f64).collect();
            let res = pearson(&xs, &ys);
            prop_assert!((-1.0..=1.0).contains(&res.r));
            prop_assert!((0.0..=1.0).contains(&res.p_value));
        }

        #[test]
        fn inc_beta_monotone_in_x(a in 0.5f64..10.0, b in 0.5f64..10.0, x1 in 0.01f64..0.98) {
            let x2 = x1 + 0.01;
            prop_assert!(inc_beta(a, b, x1) <= inc_beta(a, b, x2) + 1e-12);
        }

        #[test]
        fn ln_gamma_recurrence(x in 0.5f64..50.0) {
            // Gamma(x+1) = x Gamma(x).
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            prop_assert!((lhs - rhs).abs() < 1e-9);
        }
    }
}
