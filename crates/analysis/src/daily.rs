//! Daily analysis: terabyte-hours scanned per day (Fig. 9), errors per day
//! by bit class (Figs. 10 and 11), and the scanning-vs-errors correlation
//! (Section III-G's Pearson r = -0.18, p = 0.0002).
//!
//! Scanned volume is reconstructed from the logs themselves, the way the
//! paper's operators had to: a START..END pair contributes
//! `alloc_bytes x overlap` to every civil day it spans; a START followed by
//! another START (hard reboot) contributes *zero* — "we took a conservative
//! approach and we assumed 0 hours of memory monitoring".

use std::collections::BTreeMap;

use uc_faultlog::record::LogRecord;
use uc_faultlog::store::NodeLog;
use uc_simclock::SimTime;

use crate::fault::Fault;

/// Sparse per-day scanned volume (TBh), unbounded in time.
///
/// [`DailySeries`] clips sessions to a fixed day window chosen *after*
/// extraction (it spans the faults). A fault database is built before any
/// window exists, so it records volume per civil day over whatever range
/// the logs cover, and [`DailySeries::add_day_volume`] copies the slice a
/// later analysis wants. The arithmetic — one `+=` per (session, day) in
/// log order — is exactly [`DailySeries::add_session`]'s, so routing
/// volume through a `DayVolume` changes nothing, bit for bit, in the
/// windowed series (per-slot accumulation order is identical; days outside
/// the window never feed a slot in either path).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DayVolume {
    days: BTreeMap<i64, f64>,
}

impl DayVolume {
    /// Credit one scan session's volume across the days it spans — the
    /// same split as [`DailySeries::add_session`], minus the window.
    pub fn add_session(&mut self, start: SimTime, end: SimTime, alloc_bytes: u64) {
        let tb = alloc_bytes as f64 / (1u64 << 40) as f64;
        let mut day = start.day_index();
        while day.saturating_mul(86_400) < end.as_secs() {
            let day_start = SimTime::from_secs(day * 86_400);
            let day_end = SimTime::from_secs(day.saturating_add(1).saturating_mul(86_400));
            let lo = start.max(day_start);
            let hi = end.min(day_end);
            if hi > lo {
                *self.days.entry(day).or_insert(0.0) += tb * (hi - lo).as_hours_f64();
            }
            day += 1;
        }
    }

    /// Accumulate from a node's log: START/END pairing with the
    /// conservative hard-reboot rule, as [`DailySeries::add_node_log`].
    pub fn add_node_log(&mut self, log: &NodeLog) {
        let mut pending: Option<(SimTime, u64)> = None;
        for rec in log.iter() {
            match rec {
                LogRecord::Start(s) => pending = Some((s.time, s.alloc_bytes)),
                LogRecord::End(e) => {
                    if let Some((start, alloc)) = pending.take() {
                        self.add_session(start, e.time, alloc);
                    }
                }
                _ => {}
            }
        }
    }

    /// (day index, TBh) pairs in day order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, f64)> + '_ {
        self.days.iter().map(|(&d, &v)| (d, v))
    }

    pub fn len(&self) -> usize {
        self.days.len()
    }

    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// Rebuild from stored pairs (the faultdb footer round-trips the exact
    /// f64 bits, so `from_pairs(v.iter())` is identity).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (i64, f64)>) -> DayVolume {
        DayVolume {
            days: pairs.into_iter().collect(),
        }
    }
}

/// Per-day series over a fixed day range `[first_day, first_day + len)`.
#[derive(Clone, Debug, Default)]
pub struct DailySeries {
    pub first_day: i64,
    /// Terabyte-hours of memory scanned per day.
    pub tb_hours: Vec<f64>,
    /// Fault counts per day, per bit class.
    pub faults: Vec<[u64; 6]>,
}

impl DailySeries {
    pub fn new(first_day: i64, days: usize) -> DailySeries {
        DailySeries {
            first_day,
            tb_hours: vec![0.0; days],
            faults: vec![[0; 6]; days],
        }
    }

    pub fn days(&self) -> usize {
        self.tb_hours.len()
    }

    fn day_slot(&self, t: SimTime) -> Option<usize> {
        let idx = t.day_index() - self.first_day;
        if idx < 0 || idx as usize >= self.days() {
            None
        } else {
            Some(idx as usize)
        }
    }

    /// Credit one scan session's volume across the days it spans.
    pub fn add_session(&mut self, start: SimTime, end: SimTime, alloc_bytes: u64) {
        let tb = alloc_bytes as f64 / (1u64 << 40) as f64;
        let mut day = start.day_index();
        while day * 86_400 < end.as_secs() {
            let day_start = SimTime::from_secs(day * 86_400);
            let day_end = SimTime::from_secs((day + 1) * 86_400);
            let lo = start.max(day_start);
            let hi = end.min(day_end);
            if hi > lo {
                if let Some(slot) = self.day_slot(lo) {
                    self.tb_hours[slot] += tb * (hi - lo).as_hours_f64();
                }
            }
            day += 1;
        }
    }

    /// Accumulate scan volume from a node's log (START/END pairing with the
    /// conservative hard-reboot rule).
    pub fn add_node_log(&mut self, log: &NodeLog) {
        let mut pending: Option<(SimTime, u64)> = None;
        for rec in log.iter() {
            match rec {
                LogRecord::Start(s) => {
                    // A pending START without END: hard reboot, zero credit.
                    pending = Some((s.time, s.alloc_bytes));
                }
                LogRecord::End(e) => {
                    if let Some((start, alloc)) = pending.take() {
                        self.add_session(start, e.time, alloc);
                    }
                }
                _ => {}
            }
        }
    }

    /// Copy the overlapping slice of a pre-accumulated [`DayVolume`] into
    /// this window. Each slot receives the same f64 the direct
    /// `add_node_log` path would have produced (see [`DayVolume`]).
    pub fn add_day_volume(&mut self, volume: &DayVolume) {
        for (day, tb) in volume.iter() {
            let Some(idx) = day.checked_sub(self.first_day) else {
                continue;
            };
            if idx >= 0 && (idx as usize) < self.days() {
                self.tb_hours[idx as usize] += tb;
            }
        }
    }

    /// Accumulate fault counts.
    pub fn add_faults(&mut self, faults: &[Fault]) {
        for f in faults {
            if let Some(slot) = self.day_slot(f.time) {
                self.faults[slot][f.bit_class() as usize] += 1;
            }
        }
    }

    /// Total faults per day (all classes).
    pub fn fault_totals(&self) -> Vec<u64> {
        self.faults.iter().map(|c| c.iter().sum()).collect()
    }

    /// Multi-bit faults per day.
    pub fn multibit_totals(&self) -> Vec<u64> {
        self.faults.iter().map(|c| c[1..].iter().sum()).collect()
    }

    /// Pearson correlation between daily scanned volume and daily faults —
    /// the paper's test that scanning intensity does not drive error counts.
    pub fn scan_error_correlation(&self) -> crate::stats::PearsonResult {
        let errors: Vec<f64> = self.fault_totals().iter().map(|&c| c as f64).collect();
        crate::stats::pearson(&self.tb_hours, &errors)
    }

    /// Monthly totals of scanned TBh: (month-index-from-first-day, total).
    pub fn monthly_tb_hours(&self) -> Vec<(i32, u8, f64)> {
        let mut out: Vec<(i32, u8, f64)> = Vec::new();
        for (i, tb) in self.tb_hours.iter().enumerate() {
            let date = uc_simclock::CivilDate::from_day_index(self.first_day + i as i64);
            match out.last_mut() {
                Some((y, m, acc)) if *y == date.year && *m == date.month => *acc += tb,
                _ => out.push((date.year, date.month, *tb)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;
    use uc_faultlog::record::{EndRecord, StartRecord};
    use uc_simclock::SimDuration;

    const GB3: u64 = 3 << 30;

    #[test]
    fn session_credit_splits_across_days() {
        let mut s = DailySeries::new(0, 3);
        // 18:00 day 0 to 06:00 day 1: 6 h + 6 h.
        s.add_session(
            SimTime::from_secs(18 * 3_600),
            SimTime::from_secs(30 * 3_600),
            GB3,
        );
        let tb = GB3 as f64 / (1u64 << 40) as f64;
        assert!((s.tb_hours[0] - tb * 6.0).abs() < 1e-9);
        assert!((s.tb_hours[1] - tb * 6.0).abs() < 1e-9);
        assert_eq!(s.tb_hours[2], 0.0);
    }

    #[test]
    fn sessions_outside_range_ignored() {
        let mut s = DailySeries::new(10, 2);
        s.add_session(SimTime::from_secs(0), SimTime::from_secs(3_600), GB3);
        assert!(s.tb_hours.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn hard_reboot_gets_zero_credit() {
        let mut log = NodeLog::new(NodeId(1));
        let start = |t: i64| {
            LogRecord::Start(StartRecord {
                time: SimTime::from_secs(t),
                node: NodeId(1),
                alloc_bytes: GB3,
                temp: None,
            })
        };
        let end = |t: i64| {
            LogRecord::End(EndRecord {
                time: SimTime::from_secs(t),
                node: NodeId(1),
                temp: None,
            })
        };
        // START (reboot swallows END) ... START END.
        log.push(start(0));
        log.push(start(7_200));
        log.push(end(10_800));
        let mut s = DailySeries::new(0, 1);
        s.add_node_log(&log);
        let tb = GB3 as f64 / (1u64 << 40) as f64;
        // Only the second session (1 h) counts.
        assert!((s.tb_hours[0] - tb * 1.0).abs() < 1e-9, "{}", s.tb_hours[0]);
    }

    #[test]
    fn fault_counting_by_day_and_class() {
        let mut s = DailySeries::new(0, 2);
        let f = |day: i64, xor: u32| Fault {
            node: NodeId(0),
            time: SimTime::from_secs(day * 86_400 + 100),
            vaddr: 0,
            expected: 0,
            actual: xor,
            temp: None,
            raw_logs: 1,
        };
        s.add_faults(&[f(0, 1), f(0, 0b11), f(1, 1), f(5, 1)]);
        assert_eq!(s.fault_totals(), vec![2, 1]);
        assert_eq!(s.multibit_totals(), vec![1, 0]);
    }

    #[test]
    fn correlation_runs_on_series() {
        let mut s = DailySeries::new(0, 30);
        for d in 0..30 {
            s.add_session(
                SimTime::from_secs(d * 86_400),
                SimTime::from_secs(d * 86_400) + SimDuration::from_hours(10),
                GB3,
            );
        }
        let res = s.scan_error_correlation();
        // All-zero errors: degenerate, p = 1.
        assert_eq!(res.p_value, 1.0);
    }

    #[test]
    fn day_volume_routing_is_bit_identical_to_direct_accumulation() {
        let mut log = NodeLog::new(NodeId(7));
        let push_session = |log: &mut NodeLog, t0: i64, t1: i64| {
            log.push(LogRecord::Start(StartRecord {
                time: SimTime::from_secs(t0),
                node: NodeId(7),
                alloc_bytes: GB3,
                temp: None,
            }));
            log.push(LogRecord::End(EndRecord {
                time: SimTime::from_secs(t1),
                node: NodeId(7),
                temp: None,
            }));
        };
        // Sessions crossing midnight, repeated same-day sessions, and one
        // outside the window entirely.
        push_session(&mut log, 18 * 3_600, 30 * 3_600);
        push_session(&mut log, 31 * 3_600, 33 * 3_600);
        push_session(&mut log, 33 * 3_600, 40 * 3_600);
        push_session(&mut log, 20 * 86_400, 21 * 86_400);

        let mut direct = DailySeries::new(0, 3);
        direct.add_node_log(&log);

        let mut volume = DayVolume::default();
        volume.add_node_log(&log);
        let mut routed = DailySeries::new(0, 3);
        routed.add_day_volume(&volume);

        // Not approximately: the exact same bits in every slot.
        for (a, b) in direct.tb_hours.iter().zip(&routed.tb_hours) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // And the pairs round-trip losslessly (footer storage path).
        assert_eq!(DayVolume::from_pairs(volume.iter()), volume);
    }

    #[test]
    fn monthly_rollup() {
        // Days 0..59 span exactly January + February 2015 (epoch = Jan 1).
        let mut s = DailySeries::new(0, 59);
        for d in 0..59 {
            s.add_session(
                SimTime::from_secs(d * 86_400),
                SimTime::from_secs(d * 86_400 + 3_600),
                GB3,
            );
        }
        let months = s.monthly_tb_hours();
        assert_eq!(months.len(), 2);
        assert_eq!(months[0].1, 1);
        assert_eq!(months[1].1, 2);
        assert!(months[0].2 > months[1].2, "January has 31 days vs 29 used");
    }
}
