//! Temporal-correlation analysis (paper Section III-I).
//!
//! "Memory errors are not only clustered in a few nodes, but also clustered
//! in time... When a node starts having errors, many subsequent errors are
//! observed in the following hours." Two quantifications:
//!
//! - burstiness statistics of the fault inter-arrival process: the
//!   coefficient of variation of inter-arrival times (1 for a Poisson
//!   process, >> 1 for bursty ones) and the Fano factor of windowed counts;
//! - a spatio-temporal *predictor*: after seeing a fault on a node, predict
//!   more faults on that node within a horizon; score precision/recall
//!   against the actual stream — the paper's "relatively simple to foresee
//!   future failures using the spatio-temporal analysis".

use std::collections::HashMap;

use uc_simclock::SimDuration;

use crate::fault::Fault;

/// Burstiness statistics of a fault time series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Burstiness {
    pub n: usize,
    /// Mean inter-arrival time in hours.
    pub mean_interarrival_h: f64,
    /// Coefficient of variation of inter-arrivals (1 = Poisson).
    pub interarrival_cv: f64,
    /// Fano factor (variance/mean) of daily counts (1 = Poisson).
    pub daily_fano: f64,
}

/// Compute burstiness over a time-sorted fault slice.
pub fn burstiness(faults: &[Fault]) -> Burstiness {
    debug_assert!(faults.windows(2).all(|w| w[0].time <= w[1].time));
    let n = faults.len();
    if n < 3 {
        return Burstiness {
            n,
            mean_interarrival_h: f64::NAN,
            interarrival_cv: f64::NAN,
            daily_fano: f64::NAN,
        };
    }
    let gaps: Vec<f64> = faults
        .windows(2)
        .map(|w| (w[1].time - w[0].time).as_hours_f64())
        .collect();
    let mean = crate::stats::mean(&gaps);
    let var = crate::stats::variance(&gaps);
    let cv = if mean > 0.0 {
        var.sqrt() / mean
    } else {
        f64::NAN
    };

    // Daily counts over the observed span.
    let first = faults[0].time.day_index();
    let last = faults[n - 1].time.day_index();
    let days = (last - first + 1).max(1) as usize;
    let mut counts = vec![0.0f64; days];
    for f in faults {
        counts[(f.time.day_index() - first) as usize] += 1.0;
    }
    let cmean = crate::stats::mean(&counts);
    let cvar = crate::stats::variance(&counts);
    Burstiness {
        n,
        mean_interarrival_h: mean,
        interarrival_cv: cv,
        daily_fano: if cmean > 0.0 { cvar / cmean } else { f64::NAN },
    }
}

/// The simple spatio-temporal predictor: after each fault on a node, an
/// alarm window of `horizon` opens on that node predicting further faults.
#[derive(Clone, Copy, Debug)]
pub struct PredictorConfig {
    /// How long an alarm stays open after a fault.
    pub horizon: SimDuration,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            horizon: SimDuration::from_hours(24),
        }
    }
}

/// Predictor evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PredictionScore {
    /// Faults that occurred inside an open alarm window (true positives).
    pub predicted: u64,
    /// Faults with no alarm open (missed; these also open new windows).
    pub missed: u64,
    /// Total alarm windows opened.
    pub alarms: u64,
}

impl PredictionScore {
    /// Fraction of (non-first) faults that were predicted.
    pub fn recall(&self) -> f64 {
        let total = self.predicted + self.missed;
        if total == 0 {
            0.0
        } else {
            self.predicted as f64 / total as f64
        }
    }
}

/// Replay the fault stream (time-sorted) through the predictor.
///
/// Every fault either lands inside its node's open window (predicted) or
/// opens a new window (missed). Each fault also refreshes the window — the
/// "many subsequent errors in the following hours" regime keeps one alarm
/// alive.
pub fn evaluate_predictor(faults: &[Fault], cfg: &PredictorConfig) -> PredictionScore {
    debug_assert!(faults.windows(2).all(|w| w[0].time <= w[1].time));
    let mut open_until: HashMap<u32, uc_simclock::SimTime> = HashMap::new();
    let mut score = PredictionScore::default();
    for f in faults {
        match open_until.get(&f.node.0) {
            Some(&until) if f.time <= until => score.predicted += 1,
            _ => {
                score.missed += 1;
                score.alarms += 1;
            }
        }
        open_until.insert(f.node.0, f.time + cfg.horizon);
    }
    score
}

/// Recall as a function of horizon — the curve a scheduler integrator
/// would use to pick the alarm length.
pub fn recall_curve(faults: &[Fault], horizons_h: &[i64]) -> Vec<(i64, f64)> {
    horizons_h
        .iter()
        .map(|&h| {
            let score = evaluate_predictor(
                faults,
                &PredictorConfig {
                    horizon: SimDuration::from_hours(h),
                },
            );
            (h, score.recall())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;
    use uc_simclock::SimTime;

    fn fault(node: u32, t_h: i64) -> Fault {
        Fault {
            node: NodeId(node),
            time: SimTime::from_secs(t_h * 3_600),
            vaddr: 0,
            expected: 0,
            actual: 1,
            temp: None,
            raw_logs: 1,
        }
    }

    #[test]
    fn poisson_like_stream_cv_near_one() {
        // Regular-ish random gaps drawn from an exponential via a fixed
        // recurrence; CV should be near 1, Fano near 1.
        let mut t = 0i64;
        let mut faults = Vec::new();
        let mut x = 12345u64;
        for _ in 0..4_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((x >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
            t += (-u.ln() * 3_600.0 * 2.0) as i64 + 1;
            faults.push(Fault {
                time: SimTime::from_secs(t),
                ..fault(1, 0)
            });
        }
        let b = burstiness(&faults);
        assert!(
            (0.8..=1.2).contains(&b.interarrival_cv),
            "cv {}",
            b.interarrival_cv
        );
        assert!((0.6..=1.6).contains(&b.daily_fano), "fano {}", b.daily_fano);
    }

    #[test]
    fn bursty_stream_cv_large() {
        // 20 bursts of 50 faults a minute apart, bursts 10 days apart.
        let mut faults = Vec::new();
        for burst in 0..20i64 {
            for k in 0..50i64 {
                faults.push(Fault {
                    time: SimTime::from_secs(burst * 10 * 86_400 + k * 60),
                    ..fault(1, 0)
                });
            }
        }
        let b = burstiness(&faults);
        assert!(b.interarrival_cv > 3.0, "cv {}", b.interarrival_cv);
        assert!(b.daily_fano > 10.0, "fano {}", b.daily_fano);
    }

    #[test]
    fn degenerate_inputs() {
        let b = burstiness(&[fault(1, 0), fault(1, 1)]);
        assert!(b.mean_interarrival_h.is_nan());
    }

    #[test]
    fn predictor_catches_bursts() {
        // A burst: first fault missed, the rest predicted.
        let faults: Vec<Fault> = (0..10).map(|h| fault(1, h)).collect();
        let score = evaluate_predictor(&faults, &PredictorConfig::default());
        assert_eq!(score.missed, 1);
        assert_eq!(score.predicted, 9);
        assert_eq!(score.alarms, 1);
        assert!((score.recall() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn predictor_expires_windows() {
        // Two faults 48 h apart with a 24 h horizon: both missed.
        let faults = vec![fault(1, 0), fault(1, 48)];
        let score = evaluate_predictor(&faults, &PredictorConfig::default());
        assert_eq!(score.missed, 2);
        assert_eq!(score.predicted, 0);
    }

    #[test]
    fn predictor_windows_are_per_node() {
        let mut faults = vec![fault(1, 0), fault(2, 1), fault(1, 2), fault(2, 3)];
        faults.sort_by_key(|f| f.time);
        let score = evaluate_predictor(&faults, &PredictorConfig::default());
        assert_eq!(score.missed, 2, "one first-fault per node");
        assert_eq!(score.predicted, 2);
    }

    #[test]
    fn recall_grows_with_horizon() {
        // Faults every 12 h on one node.
        let faults: Vec<Fault> = (0..50).map(|k| fault(1, k * 12)).collect();
        let curve = recall_curve(&faults, &[1, 6, 12, 24]);
        assert_eq!(curve[0].1, 0.0, "1 h horizon misses everything");
        assert!(curve[3].1 > 0.95, "24 h horizon catches the cadence");
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1), "monotone");
    }
}
