//! Regime classification: normal vs degraded days (Section III-I, Fig. 13).
//!
//! "In normal conditions, the system observes between one and two memory
//! errors per day... To add a safety margin, we consider any day with three
//! or less errors as normal." The permanently failed node (02-04) is
//! excluded first, as a production system would have retired it.

use std::collections::HashSet;

use uc_cluster::NodeId;

use crate::fault::Fault;
use crate::stats::mtbf_hours;

/// Classification threshold: days with more faults than this are degraded.
pub const NORMAL_MAX_FAULTS_PER_DAY: u64 = 3;

/// Day-by-day regime record.
#[derive(Clone, Debug, PartialEq)]
pub struct RegimeDays {
    pub first_day: i64,
    /// Fault count per day (after node exclusions).
    pub counts: Vec<u64>,
}

/// The summary split the paper reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegimeSummary {
    pub normal_days: u64,
    pub degraded_days: u64,
    pub normal_faults: u64,
    pub degraded_faults: u64,
    /// System MTBF over normal days, hours.
    pub normal_mtbf_h: f64,
    /// System MTBF over degraded days, hours.
    pub degraded_mtbf_h: f64,
}

impl RegimeDays {
    /// Count faults per day over `[first_day, first_day+days)`, excluding
    /// the given nodes.
    pub fn compute(
        faults: &[Fault],
        exclude: &[NodeId],
        first_day: i64,
        days: usize,
    ) -> RegimeDays {
        let excluded: HashSet<u32> = exclude.iter().map(|n| n.0).collect();
        let mut counts = vec![0u64; days];
        for f in faults {
            if excluded.contains(&f.node.0) {
                continue;
            }
            let idx = f.time.day_index() - first_day;
            if idx >= 0 && (idx as usize) < days {
                counts[idx as usize] += 1;
            }
        }
        RegimeDays { first_day, counts }
    }

    /// True for degraded days.
    pub fn degraded_flags(&self) -> Vec<bool> {
        self.counts
            .iter()
            .map(|&c| c > NORMAL_MAX_FAULTS_PER_DAY)
            .collect()
    }

    pub fn summary(&self) -> RegimeSummary {
        let mut s = RegimeSummary {
            normal_days: 0,
            degraded_days: 0,
            normal_faults: 0,
            degraded_faults: 0,
            normal_mtbf_h: f64::INFINITY,
            degraded_mtbf_h: f64::INFINITY,
        };
        for &c in &self.counts {
            if c > NORMAL_MAX_FAULTS_PER_DAY {
                s.degraded_days += 1;
                s.degraded_faults += c;
            } else {
                s.normal_days += 1;
                s.normal_faults += c;
            }
        }
        s.normal_mtbf_h = mtbf_hours(s.normal_days as f64 * 24.0, s.normal_faults);
        s.degraded_mtbf_h = mtbf_hours(s.degraded_days as f64 * 24.0, s.degraded_faults);
        s
    }

    /// Fraction of days spent degraded (paper: 18.1%).
    pub fn degraded_fraction(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        let degraded = self
            .counts
            .iter()
            .filter(|&&c| c > NORMAL_MAX_FAULTS_PER_DAY)
            .count();
        degraded as f64 / self.counts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_simclock::SimTime;

    fn fault(node: u32, day: i64) -> Fault {
        Fault {
            node: NodeId(node),
            time: SimTime::from_secs(day * 86_400 + 10),
            vaddr: 0,
            expected: 0,
            actual: 1,
            temp: None,
            raw_logs: 1,
        }
    }

    #[test]
    fn threshold_is_three() {
        let mut faults = Vec::new();
        for _ in 0..3 {
            faults.push(fault(1, 0)); // day 0: exactly 3 => normal
        }
        for _ in 0..4 {
            faults.push(fault(1, 1)); // day 1: 4 => degraded
        }
        let r = RegimeDays::compute(&faults, &[], 0, 2);
        assert_eq!(r.degraded_flags(), vec![false, true]);
        let s = r.summary();
        assert_eq!(s.normal_days, 1);
        assert_eq!(s.degraded_days, 1);
        assert_eq!(s.normal_faults, 3);
        assert_eq!(s.degraded_faults, 4);
    }

    #[test]
    fn excluded_nodes_do_not_count() {
        let faults: Vec<Fault> = (0..100).map(|_| fault(7, 0)).collect();
        let r = RegimeDays::compute(&faults, &[NodeId(7)], 0, 1);
        assert_eq!(r.counts, vec![0]);
        assert_eq!(r.degraded_fraction(), 0.0);
    }

    #[test]
    fn paper_scale_mtbf_split() {
        // Reconstruct the paper's numbers: 348 normal days with ~50 faults,
        // 77 degraded days with ~4750 faults.
        let mut faults = Vec::new();
        for d in 0..348 {
            if d % 7 == 0 {
                faults.push(fault(1, d)); // 50 faults over normal days
            }
        }
        for d in 348..425 {
            for _ in 0..62 {
                faults.push(fault(2, d)); // 4774 faults over degraded days
            }
        }
        let r = RegimeDays::compute(&faults, &[], 0, 425);
        let s = r.summary();
        assert_eq!(s.normal_days, 348);
        assert_eq!(s.degraded_days, 77);
        assert!(
            (s.normal_mtbf_h - 167.0).abs() < 10.0,
            "{}",
            s.normal_mtbf_h
        );
        assert!(s.degraded_mtbf_h < 0.5, "{}", s.degraded_mtbf_h);
        assert!((r.degraded_fraction() - 0.181).abs() < 0.01);
    }

    #[test]
    fn empty_series() {
        let r = RegimeDays::compute(&[], &[], 0, 10);
        let s = r.summary();
        assert_eq!(s.normal_days, 10);
        assert_eq!(s.degraded_days, 0);
        assert!(s.normal_mtbf_h.is_infinite());
    }
}
