//! The independent-fault record.

use uc_cluster::NodeId;
use uc_dram::WordDiff;
use uc_simclock::SimTime;

/// Coarse bit-multiplicity classes used throughout the figures; "6+" groups
/// the rare tail as the paper does in Figs. 5, 7, 10.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum BitClass {
    One,
    Two,
    Three,
    Four,
    Five,
    SixPlus,
}

impl BitClass {
    pub fn of(bits: u32) -> BitClass {
        match bits {
            0 | 1 => BitClass::One,
            2 => BitClass::Two,
            3 => BitClass::Three,
            4 => BitClass::Four,
            5 => BitClass::Five,
            _ => BitClass::SixPlus,
        }
    }

    pub const ALL: [BitClass; 6] = [
        BitClass::One,
        BitClass::Two,
        BitClass::Three,
        BitClass::Four,
        BitClass::Five,
        BitClass::SixPlus,
    ];

    pub fn label(self) -> &'static str {
        match self {
            BitClass::One => "1",
            BitClass::Two => "2",
            BitClass::Three => "3",
            BitClass::Four => "4",
            BitClass::Five => "5",
            BitClass::SixPlus => "6+",
        }
    }
}

/// One independent memory fault, as produced by the extraction methodology
/// (Section II-C): consecutive re-detections of the same corruption have
/// been collapsed, with the raw multiplicity retained in `raw_logs`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fault {
    pub node: NodeId,
    /// Time of the first error log of this fault.
    pub time: SimTime,
    /// Virtual address of the corrupted word.
    pub vaddr: u64,
    pub expected: u32,
    pub actual: u32,
    /// Temperature at first detection, if telemetry was active.
    pub temp: Option<f32>,
    /// Number of raw ERROR logs collapsed into this fault.
    pub raw_logs: u64,
}

impl Fault {
    pub fn diff(&self) -> WordDiff {
        WordDiff::new(self.expected, self.actual)
    }

    pub fn bits_corrupted(&self) -> u32 {
        self.diff().bits_corrupted()
    }

    pub fn bit_class(&self) -> BitClass {
        BitClass::of(self.bits_corrupted())
    }

    /// Multi-bit in the standard per-word sense.
    pub fn is_multi_bit(&self) -> bool {
        self.bits_corrupted() >= 2
    }

    /// The corruption pattern key (the paper counts "almost 30 different
    /// corruption patterns" on node 02-04 by distinct flipped-bit masks).
    pub fn pattern(&self) -> u32 {
        self.expected ^ self.actual
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_class_mapping() {
        assert_eq!(BitClass::of(1), BitClass::One);
        assert_eq!(BitClass::of(2), BitClass::Two);
        assert_eq!(BitClass::of(5), BitClass::Five);
        assert_eq!(BitClass::of(6), BitClass::SixPlus);
        assert_eq!(BitClass::of(9), BitClass::SixPlus);
        assert_eq!(BitClass::of(32), BitClass::SixPlus);
    }

    #[test]
    fn labels_and_order() {
        assert_eq!(BitClass::ALL.len(), 6);
        assert_eq!(BitClass::One.label(), "1");
        assert_eq!(BitClass::SixPlus.label(), "6+");
        assert!(BitClass::One < BitClass::SixPlus);
    }

    #[test]
    fn fault_accessors() {
        let f = Fault {
            node: NodeId(3),
            time: SimTime::from_secs(100),
            vaddr: 0x1000,
            expected: 0xFFFF_FFFF,
            actual: 0xFFFF_7BFF,
            temp: Some(34.0),
            raw_logs: 1,
        };
        assert_eq!(f.bits_corrupted(), 2);
        assert_eq!(f.bit_class(), BitClass::Two);
        assert!(f.is_multi_bit());
        assert_eq!(f.pattern(), 0x0000_8400);
    }
}
