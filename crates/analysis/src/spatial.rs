//! Spatial analysis: per-node fault counts (Fig. 3), the top-k nodes' daily
//! series (Fig. 12), and per-node corruption structure (Section III-H:
//! distinct addresses, distinct patterns, identical-error fractions).

use std::collections::{HashMap, HashSet};

use uc_cluster::NodeId;

use crate::fault::Fault;

/// Fault census of one node.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeCensus {
    pub faults: u64,
    pub distinct_addresses: u64,
    pub distinct_patterns: u64,
    /// Fraction of faults identical to the node's most common
    /// (address, pattern) pair — 1.0 for a pure weak-bit node.
    pub dominant_fraction: f64,
    /// Fraction of corrupted bits that flipped 1 -> 0.
    pub one_to_zero_fraction: f64,
}

/// Census every node that shows at least one fault.
pub fn node_census(faults: &[Fault]) -> HashMap<NodeId, NodeCensus> {
    let mut by_node: HashMap<NodeId, Vec<&Fault>> = HashMap::new();
    for f in faults {
        by_node.entry(f.node).or_default().push(f);
    }
    by_node
        .into_iter()
        .map(|(node, fs)| {
            let addresses: HashSet<u64> = fs.iter().map(|f| f.vaddr).collect();
            let patterns: HashSet<u32> = fs.iter().map(|f| f.pattern()).collect();
            let mut sig_counts: HashMap<(u64, u32), u64> = HashMap::new();
            for f in &fs {
                *sig_counts.entry((f.vaddr, f.pattern())).or_insert(0) += 1;
            }
            let dominant = sig_counts.values().max().copied().unwrap_or(0);
            let (mut down, mut up) = (0u64, 0u64);
            for f in &fs {
                let (d, u) = f.diff().flip_directions();
                down += u64::from(d);
                up += u64::from(u);
            }
            let census = NodeCensus {
                faults: fs.len() as u64,
                distinct_addresses: addresses.len() as u64,
                distinct_patterns: patterns.len() as u64,
                dominant_fraction: dominant as f64 / fs.len() as f64,
                one_to_zero_fraction: if down + up == 0 {
                    0.0
                } else {
                    down as f64 / (down + up) as f64
                },
            };
            (node, census)
        })
        .collect()
}

/// The top-k nodes by fault count, descending; ties break by node id.
pub fn top_nodes(faults: &[Fault], k: usize) -> Vec<(NodeId, u64)> {
    let mut counts: HashMap<NodeId, u64> = HashMap::new();
    for f in faults {
        *counts.entry(f.node).or_insert(0) += 1;
    }
    let mut v: Vec<(NodeId, u64)> = counts.into_iter().collect();
    v.sort_by_key(|(n, c)| (std::cmp::Reverse(*c), n.0));
    v.truncate(k);
    v
}

/// Spatial concentration: the fraction of faults carried by the busiest
/// `node_fraction` of faulty nodes (the paper: ">99.9% of errors in <1% of
/// the nodes", counting all 923 scanned nodes as the base).
pub fn concentration(faults: &[Fault], top_count: usize) -> f64 {
    if faults.is_empty() {
        return 0.0;
    }
    let top: u64 = top_nodes(faults, top_count).iter().map(|(_, c)| c).sum();
    top as f64 / faults.len() as f64
}

/// Fig. 12 dataset: daily fault counts for each of the top-k nodes plus an
/// "all others" series.
#[derive(Clone, Debug)]
pub struct TopNodeSeries {
    pub first_day: i64,
    pub nodes: Vec<(NodeId, Vec<u64>)>,
    pub others: Vec<u64>,
}

pub fn top_node_series(faults: &[Fault], k: usize, first_day: i64, days: usize) -> TopNodeSeries {
    let top: Vec<NodeId> = top_nodes(faults, k).into_iter().map(|(n, _)| n).collect();
    let mut series = TopNodeSeries {
        first_day,
        nodes: top.iter().map(|&n| (n, vec![0u64; days])).collect(),
        others: vec![0u64; days],
    };
    for f in faults {
        let idx = f.time.day_index() - first_day;
        if idx < 0 || idx as usize >= days {
            continue;
        }
        let idx = idx as usize;
        match top.iter().position(|&n| n == f.node) {
            Some(pos) => series.nodes[pos].1[idx] += 1,
            None => series.others[idx] += 1,
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_simclock::SimTime;

    fn fault(node: u32, day: i64, vaddr: u64, xor: u32) -> Fault {
        Fault {
            node: NodeId(node),
            time: SimTime::from_secs(day * 86_400 + 60),
            vaddr,
            expected: 0xFFFF_FFFF,
            actual: 0xFFFF_FFFF ^ xor,
            temp: None,
            raw_logs: 1,
        }
    }

    #[test]
    fn census_weak_bit_signature() {
        // A weak-bit node: identical error 50 times.
        let faults: Vec<Fault> = (0..50).map(|d| fault(7, d, 0x100, 1 << 4)).collect();
        let census = node_census(&faults);
        let c = &census[&NodeId(7)];
        assert_eq!(c.faults, 50);
        assert_eq!(c.distinct_addresses, 1);
        assert_eq!(c.distinct_patterns, 1);
        assert_eq!(c.dominant_fraction, 1.0, "100% identical errors");
        assert_eq!(c.one_to_zero_fraction, 1.0);
    }

    #[test]
    fn census_degrading_signature() {
        // Spread addresses and patterns.
        let faults: Vec<Fault> = (0..200)
            .map(|i| fault(3, i % 30, 0x1000 + i as u64 * 8, 1 << (i % 20)))
            .collect();
        let census = node_census(&faults);
        let c = &census[&NodeId(3)];
        assert_eq!(c.faults, 200);
        assert_eq!(c.distinct_addresses, 200);
        assert_eq!(c.distinct_patterns, 20);
        assert!(c.dominant_fraction < 0.05);
    }

    #[test]
    fn top_nodes_ordering() {
        let mut faults = Vec::new();
        for _ in 0..10 {
            faults.push(fault(5, 0, 0, 1));
        }
        for _ in 0..3 {
            faults.push(fault(9, 0, 0, 1));
        }
        faults.push(fault(2, 0, 0, 1));
        let top = top_nodes(&faults, 2);
        assert_eq!(top, vec![(NodeId(5), 10), (NodeId(9), 3)]);
    }

    #[test]
    fn concentration_matches_paper_shape() {
        // 3 hot nodes with 5500 faults, 20 cold nodes with 25 faults:
        // >99% of faults in the top 3.
        let mut faults = Vec::new();
        for i in 0..5_500 {
            faults.push(fault(i % 3, (i % 100) as i64, i as u64, 1));
        }
        for i in 0..25 {
            faults.push(fault(100 + i, 0, 0, 1));
        }
        let c = concentration(&faults, 3);
        assert!(c > 0.995, "concentration {c}");
    }

    #[test]
    fn top_node_series_buckets() {
        let faults = vec![
            fault(1, 0, 0, 1),
            fault(1, 0, 8, 1),
            fault(1, 2, 0, 1),
            fault(2, 1, 0, 1),
            fault(3, 1, 0, 1),
        ];
        let s = top_node_series(&faults, 1, 0, 3);
        assert_eq!(s.nodes.len(), 1);
        assert_eq!(s.nodes[0].0, NodeId(1));
        assert_eq!(s.nodes[0].1, vec![2, 0, 1]);
        assert_eq!(s.others, vec![0, 2, 0]);
    }

    #[test]
    fn empty_inputs() {
        assert!(node_census(&[]).is_empty());
        assert!(top_nodes(&[], 5).is_empty());
        assert_eq!(concentration(&[], 3), 0.0);
    }
}
