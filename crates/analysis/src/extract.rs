//! The error-extraction methodology (paper Section II-C).
//!
//! "In many cases, a fault in a memory cell manifests as many consecutive
//! error logs over time, but they are all related to the same original root
//! cause... Even if such a fault produced many incorrect values for
//! thousands of consecutive iterations, we count this as one single memory
//! error."
//!
//! The rule implemented here: within one node, error logs that repeat the
//! *same corruption* (same address, same flipped bits) with gaps no larger
//! than `merge_window` are one fault. A compressed [`LogEntry::ErrorRun`]
//! is by construction a maximal consecutive repetition, so it collapses to
//! one fault directly — which is what makes extraction O(entries) even for
//! the 24M-log flood node. Re-occurrences after a longer gap (the weak-bit
//! intermittents, separated by many clean passes) count as new independent
//! faults, matching the paper's thousands of identical-but-independent
//! weak-bit errors.

use std::collections::{BinaryHeap, HashMap};

use uc_faultlog::record::ErrorRecord;
use uc_faultlog::store::{LogEntry, NodeLog};
use uc_simclock::{SimDuration, SimTime};

use crate::fault::Fault;

/// The canonical, fully discriminating sort key for fault streams. Every
/// field participates so that two distinct faults can never compare equal:
/// sorting or merging by this key is total, which is what makes extraction
/// output independent of `HashMap` iteration order and thread count (the
/// DESIGN.md §6 contract).
pub fn fault_sort_key(f: &Fault) -> (SimTime, u32, u64, u32, u32, u64) {
    (f.time, f.node.0, f.vaddr, f.expected, f.actual, f.raw_logs)
}

/// Extraction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExtractConfig {
    /// Maximum gap between identical error logs that still counts as the
    /// same fault: two scan passes (~20 s each at 3 GB) plus margin. The
    /// paper merges *consecutive iterations* only — a wider window would
    /// swallow genuinely independent re-occurrences of a weak bit.
    pub merge_window: SimDuration,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        ExtractConfig {
            merge_window: SimDuration::from_secs(45),
        }
    }
}

/// Per-cell accumulation state.
struct OpenFault {
    fault: Fault,
    last_seen: SimTime,
}

/// Extract independent faults from one node's log. Faults are returned in
/// order of first detection.
pub fn extract_node_faults(log: &NodeLog, cfg: &ExtractConfig) -> Vec<Fault> {
    let mut open: HashMap<(u64, u32), OpenFault> = HashMap::new();
    let mut done: Vec<Fault> = Vec::new();

    let absorb = |open: &mut HashMap<(u64, u32), OpenFault>,
                  done: &mut Vec<Fault>,
                  rec: &ErrorRecord,
                  count: u64,
                  last_time: SimTime| {
        let key = (rec.vaddr, rec.expected ^ rec.actual);
        // Only a forward-in-time recurrence can extend an open fault. A
        // record timestamped *before* the open fault's last sighting is an
        // out-of-order log line (recovering ingest keeps those, and
        // `NodeLog::from_text` never re-sorts): raw subtraction would hand
        // back a negative "gap" that always passes the window check,
        // silently merging unrelated faults — and overflows on adversarial
        // timestamps. `checked_elapsed_since` refuses both, so the
        // recurrence opens a new fault instead.
        let recurrence_gap = |of: &OpenFault| rec.time.checked_elapsed_since(of.last_seen);
        match open.get_mut(&key) {
            Some(of) if recurrence_gap(of).is_some_and(|gap| gap <= cfg.merge_window) => {
                of.fault.raw_logs += count;
                of.last_seen = last_time;
            }
            existing => {
                if existing.is_some() {
                    let of = open.remove(&key).expect("present");
                    done.push(of.fault);
                }
                open.insert(
                    key,
                    OpenFault {
                        fault: Fault {
                            node: rec.node,
                            time: rec.time,
                            vaddr: rec.vaddr,
                            expected: rec.expected,
                            actual: rec.actual,
                            temp: rec.temp.map(|t| t.0),
                            raw_logs: count,
                        },
                        last_seen: last_time,
                    },
                );
            }
        }
    };

    for entry in log.entries() {
        match entry {
            LogEntry::One(rec) => {
                if let Some(err) = rec.as_error() {
                    absorb(&mut open, &mut done, err, 1, err.time);
                }
            }
            LogEntry::ErrorRun {
                first,
                count,
                period: _,
            } => {
                // A run is maximal consecutive repetition: one fault.
                absorb(&mut open, &mut done, first, *count, entry.last_time());
            }
        }
    }
    done.extend(open.into_values().map(|of| of.fault));
    // Fully discriminating key: the open-fault map iterates in hash order,
    // so ties on (time, vaddr) must still sort deterministically.
    done.sort_by_key(fault_sort_key);
    done
}

/// Merge per-node fault streams, each already sorted by [`fault_sort_key`]
/// (the [`extract_node_faults`] postcondition), into one stream sorted by
/// the same key — the k-way merge discipline the cluster log's record
/// stream already uses, instead of concat-then-sort. Ties across streams
/// break by stream index, so the merge is total and deterministic.
///
/// Public because it is the merge template for every fan-out in the
/// system: per-node extraction here, and shard fan-out in faultdb's root
/// catalog engine, which merges per-shard row streams with exactly this
/// discipline to stay byte-identical to the single-file scan.
pub fn merge_sorted_fault_streams(streams: Vec<Vec<Fault>>) -> Vec<Fault> {
    struct Head {
        key: (SimTime, u32, u64, u32, u32, u64),
        stream: usize,
    }
    impl PartialEq for Head {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == std::cmp::Ordering::Equal
        }
    }
    impl Eq for Head {}
    impl PartialOrd for Head {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Head {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // BinaryHeap is a max-heap; invert for smallest-key-first.
            (&other.key, other.stream).cmp(&(&self.key, self.stream))
        }
    }

    let total = streams.iter().map(Vec::len).sum();
    let mut cursors: Vec<std::vec::IntoIter<Fault>> =
        streams.into_iter().map(Vec::into_iter).collect();
    let mut heap = BinaryHeap::with_capacity(cursors.len());
    let mut peeked: Vec<Option<Fault>> = Vec::with_capacity(cursors.len());
    for (i, cur) in cursors.iter_mut().enumerate() {
        let head = cur.next();
        if let Some(f) = &head {
            heap.push(Head {
                key: fault_sort_key(f),
                stream: i,
            });
        }
        peeked.push(head);
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Head { stream, .. }) = heap.pop() {
        let fault = peeked[stream].take().expect("heap entry has a peeked head");
        out.push(fault);
        if let Some(next) = cursors[stream].next() {
            heap.push(Head {
                key: fault_sort_key(&next),
                stream,
            });
            peeked[stream] = Some(next);
        }
    }
    out
}

/// Extract faults for a whole cluster log: per-node extraction fans out
/// over `parallel::par_map` (order-preserving), and the per-node streams
/// are combined by a k-way merge on [`fault_sort_key`]. Output is sorted
/// by that key and byte-identical regardless of thread count.
pub fn extract_cluster_faults(
    cluster: &uc_faultlog::store::ClusterLog,
    cfg: &ExtractConfig,
) -> Vec<Fault> {
    let per_node =
        uc_parallel::par_map(cluster.node_logs(), |_, log| extract_node_faults(log, cfg));
    merge_sorted_fault_streams(per_node)
}

/// Extraction over a recovered (lossy) ingest: the paper's flood filter
/// plus per-node extraction, with the ingest accounting carried along so
/// downstream consumers can qualify the fault counts ("out of N lines, M
/// were dropped") instead of silently presenting a damaged corpus as
/// complete.
#[derive(Clone, Debug)]
pub struct RecoveredExtract {
    /// Independent faults, sorted by the fully discriminating
    /// [`fault_sort_key`].
    pub faults: Vec<Fault>,
    /// Nodes excluded by the flood filter.
    pub flood_nodes: Vec<uc_cluster::NodeId>,
    /// The ingest accounting the faults were derived under.
    pub stats: uc_faultlog::ingest::IngestStats,
}

/// Run the extraction methodology over a recovering ingest's output. A
/// node whose raw error logs exceed `flood_share` of the cluster total is
/// excluded, mirroring the paper's removal of its single faulty node.
/// Per-node extraction runs in parallel; the output is combined by the
/// k-way merge on [`fault_sort_key`], so two same-instant faults at one
/// address with different corruption patterns order deterministically (the
/// old `(time, node, vaddr)` key left that tie to `HashMap` iteration
/// order, violating the §6 contract).
pub fn extract_recovered(
    cluster: &uc_faultlog::store::ClusterLog,
    stats: uc_faultlog::ingest::IngestStats,
    cfg: &ExtractConfig,
    flood_share: f64,
) -> RecoveredExtract {
    let total_raw = cluster.raw_error_count().max(1);
    let mut flood_nodes = Vec::new();
    let mut kept: Vec<&NodeLog> = Vec::new();
    for log in cluster.node_logs() {
        if log.raw_error_count() as f64 / total_raw as f64 > flood_share {
            flood_nodes.extend(log.node);
        } else {
            kept.push(log);
        }
    }
    let per_node = uc_parallel::par_map(&kept, |_, log| extract_node_faults(log, cfg));
    RecoveredExtract {
        faults: merge_sorted_fault_streams(per_node),
        flood_nodes,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;
    use uc_faultlog::record::{ErrorRecord, LogRecord, TempC};

    fn err(t: i64, vaddr: u64, expected: u32, actual: u32) -> ErrorRecord {
        ErrorRecord {
            time: SimTime::from_secs(t),
            node: NodeId(1),
            vaddr,
            phys_page: vaddr >> 12,
            expected,
            actual,
            temp: Some(TempC(33.0)),
        }
    }

    fn log_of(records: Vec<ErrorRecord>) -> NodeLog {
        let mut log = NodeLog::new(NodeId(1));
        for r in records {
            log.push(LogRecord::Error(r));
        }
        log
    }

    #[test]
    fn consecutive_identical_logs_collapse() {
        // Same cell erroring every 40 s for 5 logs: one fault.
        let recs = (0..5)
            .map(|k| err(1_000 + k * 40, 0x100, 0xFFFF_FFFF, 0xFFFF_FFFE))
            .collect();
        let faults = extract_node_faults(&log_of(recs), &ExtractConfig::default());
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].raw_logs, 5);
        assert_eq!(faults[0].time.as_secs(), 1_000);
    }

    #[test]
    fn gap_beyond_window_splits_faults() {
        // Weak-bit style: same cell, same bits, but 30 minutes apart.
        let recs = vec![
            err(0, 0x100, 0xFFFF_FFFF, 0xFFFF_FFFE),
            err(1_800, 0x100, 0xFFFF_FFFF, 0xFFFF_FFFE),
            err(3_600, 0x100, 0xFFFF_FFFF, 0xFFFF_FFFE),
        ];
        let faults = extract_node_faults(&log_of(recs), &ExtractConfig::default());
        assert_eq!(faults.len(), 3, "intermittent occurrences are independent");
    }

    #[test]
    fn different_addresses_are_different_faults() {
        let recs = vec![
            err(0, 0x100, 0xFFFF_FFFF, 0xFFFF_FFFE),
            err(10, 0x200, 0xFFFF_FFFF, 0xFFFF_FFFE),
        ];
        let faults = extract_node_faults(&log_of(recs), &ExtractConfig::default());
        assert_eq!(faults.len(), 2);
    }

    #[test]
    fn different_patterns_at_same_address_are_different_faults() {
        let recs = vec![
            err(0, 0x100, 0xFFFF_FFFF, 0xFFFF_FFFE),
            err(10, 0x100, 0xFFFF_FFFF, 0xFFFF_FFFD),
        ];
        let faults = extract_node_faults(&log_of(recs), &ExtractConfig::default());
        assert_eq!(faults.len(), 2);
    }

    #[test]
    fn alternating_pattern_same_xor_merges() {
        // The same stuck-low bit seen against both scan phases produces
        // different (expected, actual) pairs but... different XOR? No: the
        // stuck-low bit only mismatches on the all-ones phase, so the pair
        // is identical each time. Here we check that identical XOR at the
        // same address merges even when raw logs interleave other cells.
        let recs = vec![
            err(0, 0x100, 0xFFFF_FFFF, 0xFFFF_FFFE),
            err(5, 0x900, 0x0000_0000, 0x0000_0400),
            err(40, 0x100, 0xFFFF_FFFF, 0xFFFF_FFFE),
        ];
        let faults = extract_node_faults(&log_of(recs), &ExtractConfig::default());
        assert_eq!(faults.len(), 2);
        let f100 = faults.iter().find(|f| f.vaddr == 0x100).unwrap();
        assert_eq!(f100.raw_logs, 2);
    }

    #[test]
    fn error_runs_collapse_to_one_fault() {
        let mut log = NodeLog::new(NodeId(1));
        log.push_run(
            err(100, 0x300, 0xFFFF_FFFF, 0xFFFF_F7FF),
            1_000_000,
            SimDuration::from_secs(40),
        );
        let faults = extract_node_faults(&log, &ExtractConfig::default());
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].raw_logs, 1_000_000);
    }

    #[test]
    fn run_followed_by_adjacent_logs_merges() {
        let mut log = NodeLog::new(NodeId(1));
        log.push_run(
            err(100, 0x300, 0xFFFF_FFFF, 0xFFFF_F7FF),
            10,
            SimDuration::from_secs(40),
        );
        // Last run record at t = 100 + 9*40 = 460; this log at 480 merges.
        log.push(LogRecord::Error(err(480, 0x300, 0xFFFF_FFFF, 0xFFFF_F7FF)));
        let faults = extract_node_faults(&log, &ExtractConfig::default());
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].raw_logs, 11);
    }

    #[test]
    fn count_conservation() {
        // Total raw_logs across faults == raw error logs in the store.
        let mut log = NodeLog::new(NodeId(1));
        log.push(LogRecord::Error(err(0, 0x1, 0xFFFF_FFFF, 0xFFFF_FFFE)));
        log.push_run(err(50, 0x2, 0x0, 0x10), 500, SimDuration::from_secs(40));
        log.push(LogRecord::Error(err(60, 0x3, 0x0, 0x1)));
        let faults = extract_node_faults(&log, &ExtractConfig::default());
        let total: u64 = faults.iter().map(|f| f.raw_logs).sum();
        assert_eq!(total, log.raw_error_count());
    }

    #[test]
    fn faults_sorted_by_first_detection() {
        let recs = vec![
            err(100, 0x300, 0x0, 0x1),
            err(150, 0x100, 0x0, 0x2),
            err(200, 0x200, 0x0, 0x4),
        ];
        let faults = extract_node_faults(&log_of(recs), &ExtractConfig::default());
        let times: Vec<i64> = faults.iter().map(|f| f.time.as_secs()).collect();
        assert_eq!(times, vec![100, 150, 200]);
    }

    #[test]
    fn non_error_records_ignored() {
        use uc_faultlog::record::{EndRecord, StartRecord};
        let mut log = NodeLog::new(NodeId(1));
        log.push(LogRecord::Start(StartRecord {
            time: SimTime::from_secs(0),
            node: NodeId(1),
            alloc_bytes: 3 << 30,
            temp: None,
        }));
        log.push(LogRecord::Error(err(10, 0x1, 0x0, 0x1)));
        log.push(LogRecord::End(EndRecord {
            time: SimTime::from_secs(100),
            node: NodeId(1),
            temp: None,
        }));
        let faults = extract_node_faults(&log, &ExtractConfig::default());
        assert_eq!(faults.len(), 1);
    }

    #[test]
    fn recovered_extract_applies_flood_filter_and_carries_stats() {
        use uc_faultlog::ingest::IngestStats;
        use uc_faultlog::store::ClusterLog;
        let quiet = log_of(vec![err(0, 0x100, 0xFFFF_FFFF, 0xFFFF_FFFE)]);
        let mut flood = NodeLog::new(NodeId(2));
        let mut flood_rec = err(0, 0x300, 0xFFFF_FFFF, 0xFFFF_F7FF);
        flood_rec.node = NodeId(2);
        flood.push_run(flood_rec, 1_000_000, SimDuration::from_secs(40));
        let cluster = ClusterLog::new(vec![quiet, flood]);
        let stats = IngestStats {
            lines_read: 10,
            records_kept: 9,
            bad_kind: 1,
            ..IngestStats::default()
        };
        let out = extract_recovered(&cluster, stats, &ExtractConfig::default(), 0.5);
        assert_eq!(out.flood_nodes, vec![NodeId(2)]);
        assert_eq!(out.faults.len(), 1, "flood node excluded from faults");
        assert_eq!(out.stats, stats);
        let all = extract_recovered(&cluster, stats, &ExtractConfig::default(), 1.1);
        assert_eq!(
            all.faults.len(),
            2,
            "flood_share above 1 disables the filter"
        );
    }

    #[test]
    fn out_of_order_recurrence_is_a_new_fault() {
        // `NodeLog::from_text` keeps file order, so a reordered log reaches
        // extraction with a recurrence timestamped *before* the open
        // fault's last sighting. The raw `rec.time - of.last_seen` gap was
        // negative (always within the window), silently merging the two;
        // now the reordered recurrence opens its own fault.
        let text = "ERROR t=1000 node=01-01 vaddr=0x00000100 page=0x000001 \
                    expected=0xffffffff actual=0xfffffffe temp=NA\n\
                    ERROR t=10 node=01-01 vaddr=0x00000100 page=0x000001 \
                    expected=0xffffffff actual=0xfffffffe temp=NA\n";
        let (log, errors) = NodeLog::from_text(text);
        assert!(errors.is_empty());
        let faults = extract_node_faults(&log, &ExtractConfig::default());
        assert_eq!(faults.len(), 2, "reordered recurrence must not merge");
        assert!(faults.iter().all(|f| f.raw_logs == 1));
        assert_eq!(faults[0].time.as_secs(), 10, "sorted output");
    }

    #[test]
    fn out_of_order_extreme_timestamps_do_not_panic() {
        // Adversarial timestamps (a damaged log can claim any i64 the
        // parser accepts) must not overflow the gap computation even in
        // debug builds.
        let recs = vec![
            err(i64::MAX - 1, 0x100, 0xFFFF_FFFF, 0xFFFF_FFFE),
            err(i64::MIN + 1, 0x100, 0xFFFF_FFFF, 0xFFFF_FFFE),
        ];
        let log = NodeLog::from_entries(
            Some(NodeId(1)),
            recs.into_iter()
                .map(|r| LogEntry::One(LogRecord::Error(r)))
                .collect(),
        );
        let faults = extract_node_faults(&log, &ExtractConfig::default());
        assert_eq!(faults.len(), 2);
    }

    #[test]
    fn same_instant_different_patterns_order_deterministically() {
        // Two faults at one (time, vaddr) with different corruption
        // patterns tie under the old `(time, node, vaddr)` key; their
        // relative order then depended on `HashMap` iteration order. Every
        // run must produce the identical stream.
        use uc_faultlog::store::ClusterLog;
        let cluster = || {
            let recs: Vec<ErrorRecord> = (0..16)
                .map(|k| err(500, 0x100, 0xFFFF_FFFF, 0xFFFF_FFFF ^ (1 << k)))
                .collect();
            ClusterLog::new(vec![log_of(recs)])
        };
        let baseline = extract_recovered(
            &cluster(),
            Default::default(),
            &ExtractConfig::default(),
            1.1,
        );
        assert_eq!(baseline.faults.len(), 16);
        for round in 0..20 {
            // Fresh HashMaps each round churn RandomState.
            let again = extract_recovered(
                &cluster(),
                Default::default(),
                &ExtractConfig::default(),
                1.1,
            );
            assert_eq!(baseline.faults, again.faults, "round {round}");
        }
        let mut sorted = baseline.faults.clone();
        sorted.sort_by_key(fault_sort_key);
        assert_eq!(baseline.faults, sorted, "output sorted by the full key");
    }

    #[test]
    fn cluster_extraction_merges_by_time_across_nodes() {
        let mut a = NodeLog::new(NodeId(1));
        a.push(LogRecord::Error(err(100, 0x100, 0x0, 0x1)));
        a.push(LogRecord::Error(err(300, 0x200, 0x0, 0x1)));
        let mut b = NodeLog::new(NodeId(2));
        let mut rec = err(200, 0x300, 0x0, 0x1);
        rec.node = NodeId(2);
        b.push(LogRecord::Error(rec));
        let cluster = uc_faultlog::store::ClusterLog::new(vec![a, b]);
        let faults = extract_cluster_faults(&cluster, &ExtractConfig::default());
        let times: Vec<i64> = faults.iter().map(|f| f.time.as_secs()).collect();
        assert_eq!(times, vec![100, 200, 300], "k-way merged, not node-major");
    }

    #[test]
    fn extraction_identical_across_thread_counts() {
        use uc_faultlog::store::ClusterLog;
        let cluster = {
            let mut logs = Vec::new();
            for n in 1..=9u32 {
                let entries = (0..50i64)
                    .map(|k| {
                        let mut r = err(k * 37 % 900, 0x100 + (k as u64 % 7) * 8, 0x0, 0x1);
                        r.node = NodeId(n);
                        LogEntry::One(LogRecord::Error(r))
                    })
                    .collect();
                logs.push(NodeLog::from_entries(Some(NodeId(n)), entries));
            }
            ClusterLog::new(logs)
        };
        let cfg = ExtractConfig::default();
        let one = uc_parallel::with_thread_limit(1, || extract_cluster_faults(&cluster, &cfg));
        for threads in [2, 4, 8] {
            let n =
                uc_parallel::with_thread_limit(threads, || extract_cluster_faults(&cluster, &cfg));
            assert_eq!(one, n, "{threads} threads");
        }
    }

    #[test]
    fn temperature_of_first_log_kept() {
        let mut recs = vec![err(0, 0x1, 0x0, 0x1)];
        recs[0].temp = Some(TempC(41.5));
        let faults = extract_node_faults(&log_of(recs), &ExtractConfig::default());
        assert_eq!(faults[0].temp, Some(41.5));
    }
}
