//! Diurnal analysis: errors per wall-clock hour of day (Figs. 5 and 6).

use crate::fault::{BitClass, Fault};

/// Per-hour, per-bit-class counts. `counts[hour][class]`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HourlyProfile {
    pub counts: [[u64; 6]; 24],
}

impl HourlyProfile {
    pub fn compute(faults: &[Fault]) -> HourlyProfile {
        let mut p = HourlyProfile::default();
        for f in faults {
            let hour = f.time.datetime().wall_hour() as usize;
            let class = f.bit_class() as usize;
            p.counts[hour][class] += 1;
        }
        p
    }

    /// Total faults in an hour across all classes.
    pub fn hour_total(&self, hour: usize) -> u64 {
        self.counts[hour].iter().sum()
    }

    /// Total multi-bit (>= 2 bits) faults in an hour.
    pub fn hour_multibit(&self, hour: usize) -> u64 {
        self.counts[hour][1..].iter().sum()
    }

    /// Counts for one class across the 24 hours.
    pub fn class_series(&self, class: BitClass) -> [u64; 24] {
        let mut out = [0u64; 24];
        for (h, o) in out.iter_mut().enumerate() {
            *o = self.counts[h][class as usize];
        }
        out
    }

    /// Day (07:00-17:59) vs night totals for multi-bit faults — the
    /// quantity the paper reports as "double".
    pub fn multibit_day_night(&self) -> (u64, u64) {
        let mut day = 0;
        let mut night = 0;
        for h in 0..24 {
            if (7..18).contains(&h) {
                day += self.hour_multibit(h);
            } else {
                night += self.hour_multibit(h);
            }
        }
        (day, night)
    }

    /// The hour with the most multi-bit faults (the paper: noon).
    pub fn multibit_peak_hour(&self) -> usize {
        (0..24)
            .max_by_key(|&h| (self.hour_multibit(h), std::cmp::Reverse(h)))
            .unwrap_or(0)
    }

    /// Ratio between the busiest and quietest hour for single-bit faults —
    /// near 1 means the flat profile of Fig. 5.
    pub fn single_bit_flatness(&self) -> f64 {
        let series = self.class_series(BitClass::One);
        let max = *series.iter().max().unwrap_or(&0);
        let min = *series.iter().min().unwrap_or(&0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;
    use uc_simclock::calendar::CivilDate;
    use uc_simclock::{SimDuration, SimTime};

    /// A fault whose *wall clock* hour is `hour` on a winter day (no DST).
    fn fault_at_hour(hour: i64, xor: u32) -> Fault {
        let t = CivilDate::new(2015, 2, 10).midnight() + SimDuration::from_hours(hour);
        Fault {
            node: NodeId(0),
            time: t,
            vaddr: 0,
            expected: 0xFFFF_FFFF,
            actual: 0xFFFF_FFFF ^ xor,
            temp: None,
            raw_logs: 1,
        }
    }

    #[test]
    fn counts_land_in_wall_hours() {
        let faults = vec![
            fault_at_hour(0, 1),
            fault_at_hour(12, 1),
            fault_at_hour(12, 0b11),
            fault_at_hour(23, 0b111),
        ];
        let p = HourlyProfile::compute(&faults);
        assert_eq!(p.hour_total(0), 1);
        assert_eq!(p.hour_total(12), 2);
        assert_eq!(p.hour_multibit(12), 1);
        assert_eq!(p.counts[23][BitClass::Three as usize], 1);
        let total: u64 = (0..24).map(|h| p.hour_total(h)).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn dst_shifts_the_wall_hour() {
        // 12:00 standard time in July reads 13:00 on the wall clock.
        let t = CivilDate::new(2015, 7, 10).midnight() + SimDuration::from_hours(12);
        let f = Fault {
            node: NodeId(0),
            time: t,
            vaddr: 0,
            expected: 0,
            actual: 1,
            temp: None,
            raw_logs: 1,
        };
        let p = HourlyProfile::compute(&[f]);
        assert_eq!(p.hour_total(13), 1);
        assert_eq!(p.hour_total(12), 0);
    }

    #[test]
    fn day_night_split() {
        let faults = vec![
            fault_at_hour(12, 0b11),
            fault_at_hour(13, 0b11),
            fault_at_hour(2, 0b11),
        ];
        let p = HourlyProfile::compute(&faults);
        assert_eq!(p.multibit_day_night(), (2, 1));
    }

    #[test]
    fn peak_hour_detection() {
        let mut faults = vec![fault_at_hour(3, 0b11)];
        for _ in 0..5 {
            faults.push(fault_at_hour(12, 0b11));
        }
        let p = HourlyProfile::compute(&faults);
        assert_eq!(p.multibit_peak_hour(), 12);
    }

    #[test]
    fn flatness_of_uniform_profile() {
        let mut faults = Vec::new();
        for h in 0..24 {
            for _ in 0..10 {
                faults.push(fault_at_hour(h, 1));
            }
        }
        let p = HourlyProfile::compute(&faults);
        assert_eq!(p.single_bit_flatness(), 1.0);
    }

    #[test]
    fn class_series_sums_match() {
        let faults = vec![
            fault_at_hour(1, 1),
            fault_at_hour(1, 0b11),
            fault_at_hour(2, 0b11111),
            fault_at_hour(2, 0x3F),
        ];
        let p = HourlyProfile::compute(&faults);
        let per_class_total: u64 = BitClass::ALL
            .iter()
            .map(|&c| p.class_series(c).iter().sum::<u64>())
            .sum();
        assert_eq!(per_class_total, 4);
        assert_eq!(p.class_series(BitClass::Five)[2], 1);
        assert_eq!(p.class_series(BitClass::SixPlus)[2], 1);
    }

    #[test]
    fn sim_time_midnight_epoch_is_hour_zero() {
        let p = HourlyProfile::compute(&[Fault {
            node: NodeId(0),
            time: SimTime::from_secs(0),
            vaddr: 0,
            expected: 0,
            actual: 1,
            temp: None,
            raw_logs: 1,
        }]);
        assert_eq!(p.hour_total(0), 1);
    }
}
