//! Weak-bit intermittent faults (the paper's nodes 04-05 and 58-02).
//!
//! "Absolutely all the memory errors were identical. In other words, the
//! corrupted bit was the same in 100% of the cases... the intermittent
//! memory errors were caused by a faulty memory cell that would
//! occasionally leak charge" — a manufacturing weak bit that escaped
//! burn-in.
//!
//! The fault is *episodic*: the cell leaks in bursts of a few hours every
//! several days (retention marginality crossing threshold), not uniformly.
//! That temporal structure is what produces the paper's regime split — a
//! handful of degraded days carrying thousands of errors while most days
//! stay clean (Section III-I) — and the spiky per-day series of Fig. 12.
//!
//! Discharge semantics matter: the flip is only *observed* when the cell
//! currently holds its vulnerable value, so roughly half the leak events
//! surface under the alternating 0x0/0xF scan pattern — all with the same
//! bit and the same direction, exactly the paper's signature.

use uc_cluster::NodeId;
use uc_dram::WordAddr;
use uc_simclock::dist::{exponential, thinned_poisson_times};
use uc_simclock::rng::StreamRng;
use uc_simclock::SimTime;

use crate::scenario::ScanWindow;
use crate::types::{Strike, StrikeKind, TransientEvent};

/// Configuration of one weak-bit node.
#[derive(Clone, Debug)]
pub struct WeakBitConfig {
    pub node: NodeId,
    /// The faulty cell's word address.
    pub addr: WordAddr,
    /// The faulty cell's physical bit lane.
    pub lane: u32,
    /// When the cell started leaking.
    pub onset: SimTime,
    /// Mean days between leak episodes.
    pub episode_interval_days: f64,
    /// Mean episode duration in hours.
    pub episode_hours: f64,
    /// Leak events per hour *within* an episode.
    pub rate_per_hour: f64,
}

impl WeakBitConfig {
    /// The two paper nodes. Calibrated so the pair yields ~5000 observed
    /// identical errors concentrated on a few dozen degraded days.
    pub fn paper_defaults() -> Vec<WeakBitConfig> {
        use uc_simclock::calendar::CivilDate;
        vec![
            WeakBitConfig {
                node: NodeId::from_name("04-05").expect("valid name"),
                addr: WordAddr(0x02B4_77A1),
                lane: 21,
                onset: CivilDate::new(2015, 4, 20).midnight(),
                episode_interval_days: 9.0,
                episode_hours: 10.0,
                rate_per_hour: 32.0,
            },
            WeakBitConfig {
                node: NodeId::from_name("58-02").expect("valid name"),
                addr: WordAddr(0x1199_0C44),
                lane: 6,
                onset: CivilDate::new(2015, 9, 1).midnight(),
                episode_interval_days: 5.0,
                episode_hours: 9.0,
                rate_per_hour: 34.0,
            },
        ]
    }
}

/// Generate leak events: episodes drawn over wall time from the onset,
/// leaks drawn within each episode, then intersected with scan windows
/// (leaks while the node runs jobs are never observed and never logged).
pub fn weakbit_events(
    cfg: &WeakBitConfig,
    windows: &[ScanWindow],
    rng: &mut StreamRng,
) -> Vec<TransientEvent> {
    let Some(last) = windows.last() else {
        return Vec::new();
    };
    let horizon = last.end;
    let mut out = Vec::new();
    let mut t = cfg.onset;
    loop {
        // Next episode start.
        t += uc_simclock::SimDuration::from_secs_f64(exponential(
            rng,
            1.0 / (cfg.episode_interval_days * 86_400.0),
        ));
        if t >= horizon {
            break;
        }
        let dur_s = exponential(rng, 1.0 / (cfg.episode_hours * 3_600.0));
        let episode_end = t + uc_simclock::SimDuration::from_secs_f64(dur_s);
        // Leaks within the episode, clipped to scan windows.
        let rate = cfg.rate_per_hour / 3_600.0;
        for w in windows {
            let lo = w.start.max(t);
            let hi = w.end.min(episode_end);
            if lo >= hi {
                continue;
            }
            let times =
                thinned_poisson_times(rng, lo.as_secs() as f64, hi.as_secs() as f64, rate, |_| {
                    rate
                });
            out.extend(times.into_iter().map(|ts| TransientEvent {
                time: SimTime::from_secs(ts as i64),
                node: cfg.node,
                strikes: vec![Strike {
                    addr: cfg.addr,
                    kind: StrikeKind::Discharge {
                        start_lane: cfg.lane,
                        span: 1,
                    },
                }],
            }));
        }
        t = episode_end;
    }
    out.sort_by_key(|e| e.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_simclock::SimDuration;

    fn windows(from_day: i64, days: i64) -> Vec<ScanWindow> {
        (from_day..from_day + days)
            .map(|d| ScanWindow {
                start: SimTime::from_secs(d * 86_400),
                end: SimTime::from_secs(d * 86_400) + SimDuration::from_hours(13),
                alloc_words: (3 << 30) / 4,
            })
            .collect()
    }

    #[test]
    fn every_event_is_the_same_cell() {
        let cfg = &WeakBitConfig::paper_defaults()[0];
        let mut rng = StreamRng::from_seed(1);
        let onset_day = cfg.onset.day_index();
        let events = weakbit_events(cfg, &windows(onset_day, 300), &mut rng);
        assert!(!events.is_empty());
        for e in &events {
            assert_eq!(e.strikes.len(), 1);
            assert_eq!(e.strikes[0].addr, cfg.addr);
            assert_eq!(
                e.strikes[0].kind,
                StrikeKind::Discharge {
                    start_lane: cfg.lane,
                    span: 1
                }
            );
        }
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn silent_before_onset() {
        let cfg = &WeakBitConfig::paper_defaults()[1];
        let mut rng = StreamRng::from_seed(2);
        let events = weakbit_events(cfg, &windows(0, 60), &mut rng);
        assert!(events.is_empty(), "onset is in September");
    }

    #[test]
    fn thousands_of_raw_leaks_at_paper_rates() {
        let cfg = &WeakBitConfig::paper_defaults()[0];
        let mut rng = StreamRng::from_seed(3);
        let onset_day = cfg.onset.day_index();
        let events = weakbit_events(cfg, &windows(onset_day, 315), &mut rng);
        // ~35 episodes x ~5 h x ~28/h, about half clipped by the 13 h scan
        // windows: thousands of raw leaks, half of which will be observed
        // downstream.
        assert!(
            (4_000..25_000).contains(&events.len()),
            "raw leak events {}",
            events.len()
        );
    }

    #[test]
    fn events_are_clustered_into_episode_days() {
        let cfg = &WeakBitConfig::paper_defaults()[0];
        let mut rng = StreamRng::from_seed(4);
        let onset_day = cfg.onset.day_index();
        let events = weakbit_events(cfg, &windows(onset_day, 315), &mut rng);
        let mut days = std::collections::HashSet::new();
        for e in &events {
            days.insert(e.time.day_index());
        }
        // Clustered: far fewer active days than events, and well under a
        // third of the active span.
        assert!(days.len() < 315 / 3, "active days {}", days.len());
        assert!(
            events.len() > days.len() * 10,
            "episodes are dense: {} events on {} days",
            events.len(),
            days.len()
        );
    }

    #[test]
    fn events_confined_to_windows() {
        let cfg = &WeakBitConfig::paper_defaults()[0];
        let mut rng = StreamRng::from_seed(5);
        let onset_day = cfg.onset.day_index();
        let w = windows(onset_day, 200);
        let events = weakbit_events(cfg, &w, &mut rng);
        for e in &events {
            assert!(
                w.iter().any(|win| e.time >= win.start && e.time < win.end),
                "event outside scan windows"
            );
        }
    }

    #[test]
    fn no_windows_no_events() {
        let cfg = &WeakBitConfig::paper_defaults()[0];
        let mut rng = StreamRng::from_seed(6);
        assert!(weakbit_events(cfg, &[], &mut rng).is_empty());
    }

    #[test]
    fn the_two_paper_nodes_differ() {
        let defaults = WeakBitConfig::paper_defaults();
        assert_eq!(defaults.len(), 2);
        assert_ne!(defaults[0].node, defaults[1].node);
        assert_ne!(defaults[0].addr, defaults[1].addr);
        assert_ne!(defaults[0].lane, defaults[1].lane);
        assert_eq!(defaults[0].node.to_string(), "04-05");
        assert_eq!(defaults[1].node.to_string(), "58-02");
    }
}
