//! # uc-faults — the fault-process models
//!
//! This crate is the synthetic stand-in for the physics the paper measured
//! (see DESIGN.md §1 and §4 for the substitution rationale). It generates,
//! per node, a deterministic stream of *physical* fault events — which cells
//! were hit, when, and how — leaving detection (does the scanner see it?)
//! to `uc-memscan`. The models and their paper-calibrated parameters:
//!
//! - [`cosmic`]: background single-cell strikes (homogeneous Poisson over
//!   monitored time) plus a solar-modulated *multi-lane* strike process
//!   whose rate follows the neutron flux (Fig. 6's noon-peaked bell), and
//!   occasional multi-word showers;
//! - [`degrading`]: the node 02-04 analogue — a component that starts
//!   failing in August and ramps beyond 1000 errors/day by November,
//!   spraying single-bit 1->0 flips over >11k distinct addresses with ~30
//!   recurring patterns, often corrupting many addresses in the same scan
//!   pass (the source of most of the paper's 26k simultaneous corruptions);
//! - [`weakbit`]: the 04-05 / 58-02 analogues — one manufacturing-weak cell
//!   per node that intermittently leaks charge, producing thousands of
//!   byte-identical single-bit errors;
//! - [`flood`]: the removed faulty node — a stuck region re-detected every
//!   scan iteration, contributing ~98% of all raw error logs;
//! - [`isolated`]: the seven isolated >3-bit SDC events of Section III-D,
//!   placed on five otherwise-quiet nodes near the overheating SoC-12
//!   positions, six of them before temperature logging began;
//! - [`scenario`]: ties the models together into a [`FaultScenario`] and
//!   produces a [`NodeFaultProfile`] for any node from `(seed, node,
//!   scan sessions)` alone — the determinism contract.

pub mod cosmic;
pub mod degrading;
pub mod flood;
pub mod isolated;
pub mod scenario;
pub mod types;
pub mod weakbit;

pub use scenario::{FaultScenario, ScanWindow};
pub use types::{NodeFaultProfile, Strike, StrikeKind, StuckFault, TransientEvent};
