//! The isolated >3-bit SDC events (paper Section III-D).
//!
//! "Those 7 undetectable errors occurred in 5 different nodes that did not
//! show any other error in the whole period... 4 of the concerned nodes are
//! located near the SoC 12 (i.e., the overheating SoCs)... 6 of these
//! errors occurred before we turned off the overheating nodes" — and they
//! predate temperature logging, so no temperature is known for them.
//!
//! These are placed explicitly (not drawn from a rate process): seven
//! events with lane spans {4, 4, 4, 5, 6, 8, 9} matching the bottom of
//! Table I, on five designated quiet nodes, four of which sit adjacent to
//! the overheating SoC-12 position. Two share a day in March and two share
//! a day in May, hours apart (Fig. 11's same-day pairs).

use uc_cluster::{BladeId, NodeId, OVERHEATING_SOC};
use uc_dram::WordAddr;
use uc_simclock::calendar::CivilDate;
use uc_simclock::rng::mix64;
use uc_simclock::{SimDuration, SimTime};

use crate::scenario::ScanWindow;
use crate::types::{Strike, StrikeKind, TransientEvent};

/// One placed SDC event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IsolatedSdc {
    pub node: NodeId,
    /// Nominal instant; snapped into the node's nearest scan window at
    /// generation time so the scanner actually observes it.
    pub nominal_time: SimTime,
    /// The logical bit pattern the corruption flips (>= 4 bits).
    pub xor: u32,
}

/// The paper's seven events on five quiet nodes.
pub fn paper_defaults() -> Vec<IsolatedSdc> {
    let at = |y: i32, m: u8, d: u8, h: i64| {
        CivilDate::new(y, m, d).midnight() + SimDuration::from_hours(h)
    };
    // Four nodes adjacent to the overheating SoC-12 position (soc index 10
    // or 12 next to OVERHEATING_SOC = 11), one elsewhere.
    let near_a = NodeId::new(BladeId(14), OVERHEATING_SOC - 1);
    let near_b = NodeId::new(BladeId(27), OVERHEATING_SOC + 1);
    let near_c = NodeId::new(BladeId(45), OVERHEATING_SOC - 1);
    let near_d = NodeId::new(BladeId(51), OVERHEATING_SOC + 1);
    let far = NodeId::new(BladeId(8), 4);
    // Bit patterns with Table I's tail structure: counts {4,4,4,5,6,8,9},
    // mostly non-adjacent; 0x0001A004 carries the 11-bit maximum gap and
    // 0xE6006300 is the XOR of the paper's own 9-bit row
    // (0x00000058 -> 0xe6006358).
    vec![
        // Two on the same March day, hours apart, on different nodes.
        IsolatedSdc {
            node: near_a,
            nominal_time: at(2015, 3, 10, 3),
            xor: 0x0000_6A00,
        },
        IsolatedSdc {
            node: near_b,
            nominal_time: at(2015, 3, 10, 16),
            xor: 0x0000_0315,
        },
        // Singles.
        IsolatedSdc {
            node: near_c,
            nominal_time: at(2015, 2, 21, 11),
            xor: 0x0001_A004,
        },
        IsolatedSdc {
            node: far,
            nominal_time: at(2015, 3, 25, 20),
            xor: 0x0000_3452,
        },
        // Two on the same May day, hours apart.
        IsolatedSdc {
            node: near_d,
            nominal_time: at(2015, 5, 14, 2),
            xor: 0x0000_00FF,
        },
        IsolatedSdc {
            node: near_a,
            nominal_time: at(2015, 5, 14, 18),
            xor: 0x0000_0039,
        },
        // One after the SoC-12 shutdown ("6 occurred before").
        IsolatedSdc {
            node: near_c,
            nominal_time: at(2015, 7, 20, 9),
            xor: 0xE600_6300,
        },
    ]
}

/// Snap a nominal time into the node's scan windows: if no window covers
/// it, use the start of the next window (or the last window's interior if
/// none follow). Returns `None` when the node has no windows at all.
fn snap(windows: &[ScanWindow], t: SimTime) -> Option<SimTime> {
    if windows.iter().any(|w| t >= w.start && t < w.end) {
        return Some(t);
    }
    windows
        .iter()
        .map(|w| w.start + SimDuration::from_secs(30))
        .find(|&s| s >= t)
        .or_else(|| windows.last().map(|w| w.start.midpoint(w.end)))
}

/// Generate the placed SDC events for one node.
pub fn isolated_events(
    placed: &[IsolatedSdc],
    node: NodeId,
    windows: &[ScanWindow],
) -> Vec<TransientEvent> {
    let mut out: Vec<TransientEvent> = placed
        .iter()
        .filter(|s| s.node == node)
        .filter_map(|s| {
            let time = snap(windows, s.nominal_time)?;
            // A deterministic per-event address inside the scanned region.
            let addr = mix64((u64::from(s.node.0) << 32) ^ (s.nominal_time.as_secs() as u64))
                % ((3u64 << 30) / 4);
            // ForcedFlip: these events must be observed regardless of scan
            // phase — the paper's SDCs were single occurrences, not retried
            // processes.
            Some(TransientEvent {
                time,
                node: s.node,
                strikes: vec![Strike {
                    addr: WordAddr(addr),
                    kind: StrikeKind::ForcedFlip { xor: s.xor },
                }],
            })
        })
        .collect();
    out.sort_by_key(|e| e.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_day_windows() -> Vec<ScanWindow> {
        (0..420)
            .map(|d| ScanWindow {
                start: SimTime::from_secs(d * 86_400),
                end: SimTime::from_secs((d + 1) * 86_400),
                alloc_words: (3 << 30) / 4,
            })
            .collect()
    }

    #[test]
    fn seven_events_five_nodes() {
        let placed = paper_defaults();
        assert_eq!(placed.len(), 7);
        let nodes: std::collections::HashSet<u32> = placed.iter().map(|s| s.node.0).collect();
        assert_eq!(nodes.len(), 5);
    }

    #[test]
    fn bit_counts_match_table_one_tail() {
        let mut bits: Vec<u32> = paper_defaults()
            .iter()
            .map(|s| s.xor.count_ones())
            .collect();
        bits.sort_unstable();
        assert_eq!(bits, vec![4, 4, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn max_gap_of_eleven_present() {
        // The paper reports a maximum in-word distance of 11 bits between
        // corrupted bits; one placed pattern carries it.
        let max_gap = paper_defaults()
            .iter()
            .map(|s| uc_dram::WordDiff::new(0, s.xor).max_gap())
            .max()
            .unwrap();
        assert_eq!(max_gap, 11);
    }

    #[test]
    fn mostly_non_adjacent_patterns() {
        let non_adjacent = paper_defaults()
            .iter()
            .filter(|s| !uc_dram::WordDiff::new(0, s.xor).is_consecutive())
            .count();
        assert!(non_adjacent >= 5, "{non_adjacent} of 7 non-adjacent");
    }

    #[test]
    fn four_nodes_sit_next_to_soc12() {
        let placed = paper_defaults();
        let near: std::collections::HashSet<u32> = placed
            .iter()
            .filter(|s| s.node.soc().abs_diff(OVERHEATING_SOC) == 1)
            .map(|s| s.node.0)
            .collect();
        assert_eq!(near.len(), 4);
    }

    #[test]
    fn six_before_soc12_shutdown() {
        let cutoff = CivilDate::new(2015, 6, 15).midnight();
        let before = paper_defaults()
            .iter()
            .filter(|s| s.nominal_time < cutoff)
            .count();
        assert_eq!(before, 6);
    }

    #[test]
    fn same_day_pairs_hours_apart() {
        let placed = paper_defaults();
        let mut by_day = std::collections::HashMap::new();
        for s in &placed {
            by_day
                .entry(s.nominal_time.day_index())
                .or_insert_with(Vec::new)
                .push(s.nominal_time);
        }
        let pairs: Vec<&Vec<SimTime>> = by_day.values().filter(|v| v.len() == 2).collect();
        assert_eq!(pairs.len(), 2, "one same-day pair in March, one in May");
        for p in pairs {
            let gap = (p[1] - p[0]).as_hours_f64().abs();
            assert!(gap >= 3.0, "events separated by hours: {gap}");
        }
    }

    #[test]
    fn events_generate_with_multibit_masks() {
        let placed = paper_defaults();
        let windows = all_day_windows();
        let mut total = 0;
        let nodes: std::collections::HashSet<u32> = placed.iter().map(|s| s.node.0).collect();
        for raw in nodes {
            let evs = isolated_events(&placed, NodeId(raw), &windows);
            total += evs.len();
            for e in &evs {
                assert_eq!(e.strikes.len(), 1);
                let bits = e.strikes[0].kind.footprint_bits();
                assert!(bits >= 4, "SDC events corrupt >3 bits, got {bits}");
            }
        }
        assert_eq!(total, 7);
    }

    #[test]
    fn snapping_moves_event_into_windows() {
        let placed = paper_defaults();
        // Windows only in the second half of the year.
        let windows: Vec<ScanWindow> = (200..400)
            .map(|d| ScanWindow {
                start: SimTime::from_secs(d * 86_400),
                end: SimTime::from_secs(d * 86_400 + 43_200),
                alloc_words: 1 << 20,
            })
            .collect();
        let evs = isolated_events(&placed, placed[0].node, &windows);
        for e in &evs {
            assert!(
                windows.iter().any(|w| e.time >= w.start && e.time < w.end),
                "event snapped into a window"
            );
        }
    }

    #[test]
    fn no_windows_no_events() {
        let placed = paper_defaults();
        assert!(isolated_events(&placed, placed[0].node, &[]).is_empty());
    }

    #[test]
    fn other_nodes_unaffected() {
        let placed = paper_defaults();
        let evs = isolated_events(&placed, NodeId(0), &all_day_windows());
        assert!(evs.is_empty());
    }
}
