//! The composite fault scenario: every model wired together.

use uc_cluster::NodeId;
use uc_simclock::calendar::CivilDate;
use uc_simclock::rng::{StreamRng, StreamTag};
use uc_simclock::solar::BARCELONA;
use uc_simclock::{NeutronFlux, SimTime};

use crate::cosmic::{background_events, multibit_events, BackgroundConfig, MultiBitConfig};
use crate::degrading::{degrading_events, DegradingConfig};
use crate::flood::{flood_faults, FloodConfig};
use crate::isolated::{isolated_events, IsolatedSdc};
use crate::types::{NodeFaultProfile, TransientEvent};
use crate::weakbit::{weakbit_events, WeakBitConfig};

/// A scan window: the only times faults can be *observed*. Fault generation
/// is conditioned on these windows (rates are per monitored hour), which is
/// also what the paper's detected counts are conditioned on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScanWindow {
    pub start: SimTime,
    pub end: SimTime,
    /// Words the scanner allocated in this window (3 GB / 4 normally).
    pub alloc_words: u64,
}

/// The full fault scenario for a campaign.
#[derive(Clone, Debug)]
pub struct FaultScenario {
    pub background: BackgroundConfig,
    pub multibit: MultiBitConfig,
    pub degrading: Vec<DegradingConfig>,
    pub weak_bits: Vec<WeakBitConfig>,
    pub flood: Option<FloodConfig>,
    pub isolated: Vec<IsolatedSdc>,
    pub flux: NeutronFlux,
}

impl FaultScenario {
    /// The paper-calibrated scenario (DESIGN.md §4).
    pub fn paper_default() -> FaultScenario {
        let degrading = DegradingConfig::paper_default();
        let multibit = MultiBitConfig {
            hot_node: Some(degrading.node),
            hot_window: Some((degrading.onset, CivilDate::new(2015, 11, 25).midnight())),
            ..MultiBitConfig::default()
        };
        FaultScenario {
            background: BackgroundConfig::default(),
            multibit,
            degrading: vec![degrading],
            weak_bits: WeakBitConfig::paper_defaults(),
            flood: Some(FloodConfig::paper_default()),
            isolated: crate::isolated::paper_defaults(),
            flux: NeutronFlux::new(BARCELONA),
        }
    }

    /// Background-only scenario (tests, ablations).
    pub fn background_only(rate_per_hour: f64) -> FaultScenario {
        FaultScenario {
            background: BackgroundConfig {
                rate_per_hour,
                ..BackgroundConfig::default()
            },
            multibit: MultiBitConfig {
                rate_per_hour: 0.0,
                hot_node_rate_per_hour: 0.0,
                ..MultiBitConfig::default()
            },
            degrading: Vec::new(),
            weak_bits: Vec::new(),
            flood: None,
            isolated: Vec::new(),
            flux: NeutronFlux::new(BARCELONA),
        }
    }

    /// The nodes this scenario singles out (hot, weak-bit, flood, SDC).
    pub fn special_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for d in &self.degrading {
            out.push(d.node);
        }
        out.extend(self.weak_bits.iter().map(|w| w.node));
        if let Some(f) = &self.flood {
            out.push(f.node);
        }
        out.extend(self.isolated.iter().map(|s| s.node));
        out.sort_by_key(|n| n.0);
        out.dedup();
        out
    }

    /// Generate the full fault profile for one node. Deterministic in
    /// `(campaign_seed, node, windows)`; independent of other nodes.
    pub fn profile_for_node(
        &self,
        campaign_seed: u64,
        node: NodeId,
        windows: &[ScanWindow],
    ) -> NodeFaultProfile {
        let node_u = u64::from(node.0);
        let scan_words = windows
            .iter()
            .map(|w| w.alloc_words)
            .min()
            .unwrap_or((3 << 30) / 4)
            .max(1);

        let mut transients: Vec<TransientEvent> = Vec::new();

        let mut rng = StreamRng::for_stream(campaign_seed, node_u, StreamTag::Cosmic);
        transients.extend(background_events(
            &self.background,
            node,
            windows,
            scan_words,
            &mut rng,
        ));

        let mut rng = StreamRng::for_stream(campaign_seed, node_u, StreamTag::Footprint);
        transients.extend(multibit_events(
            &self.multibit,
            node,
            windows,
            scan_words,
            &self.flux,
            &mut rng,
        ));

        for d in &self.degrading {
            if d.node == node {
                let mut rng = StreamRng::for_stream(campaign_seed, node_u, StreamTag::Degradation);
                transients.extend(degrading_events(d, windows, &mut rng));
            }
        }

        for w in &self.weak_bits {
            if w.node == node {
                let mut rng = StreamRng::for_stream(campaign_seed, node_u, StreamTag::WeakBit);
                transients.extend(weakbit_events(w, windows, &mut rng));
            }
        }

        transients.extend(isolated_events(&self.isolated, node, windows));

        // Stable merge by (time, insertion order) — generators each produce
        // sorted output, so a stable sort keeps intra-source order.
        transients.sort_by_key(|e| e.time);

        let mut stuck = Vec::new();
        if let Some(f) = &self.flood {
            if f.node == node {
                let mut rng = StreamRng::for_stream(campaign_seed, node_u, StreamTag::Flood);
                stuck.extend(flood_faults(f, &mut rng));
            }
        }

        NodeFaultProfile { transients, stuck }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_simclock::SimDuration;

    fn windows() -> Vec<ScanWindow> {
        (0..394)
            .map(|d| ScanWindow {
                start: SimTime::from_secs((31 + d) * 86_400),
                end: SimTime::from_secs((31 + d) * 86_400) + SimDuration::from_hours(13),
                alloc_words: (3 << 30) / 4,
            })
            .collect()
    }

    #[test]
    fn special_nodes_enumerated() {
        let s = FaultScenario::paper_default();
        let special = s.special_nodes();
        assert!(special.len() >= 9, "hot + 2 weak + flood + 5 SDC nodes");
        assert!(special.contains(&NodeId::from_name("02-04").unwrap()));
        assert!(special.contains(&NodeId::from_name("04-05").unwrap()));
        assert!(special.contains(&NodeId::from_name("58-02").unwrap()));
    }

    #[test]
    fn quiet_node_profile_is_sparse() {
        let s = FaultScenario::paper_default();
        let profile = s.profile_for_node(42, NodeId(300), &windows());
        // An ordinary node sees at most a few background events all year.
        assert!(
            profile.transients.len() < 10,
            "{}",
            profile.transients.len()
        );
        assert!(profile.stuck.is_empty());
        assert!(profile.is_time_ordered());
    }

    #[test]
    fn hot_node_profile_is_huge() {
        let s = FaultScenario::paper_default();
        let hot = NodeId::from_name("02-04").unwrap();
        let profile = s.profile_for_node(42, hot, &windows());
        assert!(
            profile.transients.len() > 10_000,
            "degrading node events: {}",
            profile.transients.len()
        );
        assert!(profile.is_time_ordered());
    }

    #[test]
    fn weak_bit_node_profile_is_monotonous() {
        let s = FaultScenario::paper_default();
        let weak = NodeId::from_name("04-05").unwrap();
        let profile = s.profile_for_node(42, weak, &windows());
        assert!(profile.transients.len() > 2_000);
        // Nearly all events hit the same address (a couple of background
        // strikes may land here too).
        let mut addr_counts = std::collections::HashMap::new();
        for e in &profile.transients {
            for s in &e.strikes {
                *addr_counts.entry(s.addr.0).or_insert(0u32) += 1;
            }
        }
        let max = addr_counts.values().max().copied().unwrap_or(0);
        assert!(
            f64::from(max) > profile.transients.len() as f64 * 0.99,
            "dominant single address"
        );
    }

    #[test]
    fn flood_node_has_stuck_faults() {
        let s = FaultScenario::paper_default();
        let flood = s.flood.as_ref().unwrap().node;
        let profile = s.profile_for_node(42, flood, &windows());
        assert_eq!(profile.stuck.len(), 80);
    }

    #[test]
    fn profiles_deterministic_and_seed_sensitive() {
        let s = FaultScenario::paper_default();
        let n = NodeId(150);
        let a = s.profile_for_node(1, n, &windows());
        let b = s.profile_for_node(1, n, &windows());
        assert_eq!(a.transients, b.transients);
        assert_eq!(a.stuck, b.stuck);
        // Use a node with enough events that a seed change is visible.
        let hot = NodeId::from_name("02-04").unwrap();
        let c = s.profile_for_node(1, hot, &windows());
        let d = s.profile_for_node(2, hot, &windows());
        assert_ne!(c.transients, d.transients);
    }

    #[test]
    fn background_only_scenario() {
        let s = FaultScenario::background_only(0.001);
        let profile = s.profile_for_node(7, NodeId(10), &windows());
        assert!(profile.stuck.is_empty());
        for e in &profile.transients {
            assert!(e.strikes.iter().all(|s| s.kind.footprint_bits() == 1));
        }
    }

    #[test]
    fn events_confined_to_windows() {
        let s = FaultScenario::paper_default();
        let w = windows();
        for node in [NodeId::from_name("02-04").unwrap(), NodeId(100)] {
            let profile = s.profile_for_node(42, node, &w);
            for e in &profile.transients {
                assert!(
                    w.iter().any(|win| e.time >= win.start && e.time < win.end),
                    "event at {} outside all windows",
                    e.time
                );
            }
        }
    }
}
