//! Fault event types shared by all models.

use uc_cluster::NodeId;
use uc_dram::device::StuckMask;
use uc_dram::WordAddr;
use uc_simclock::SimTime;

/// How a strike corrupts its word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StrikeKind {
    /// A charge-loss event over `span` physically adjacent bit lanes
    /// starting at `start_lane`. Whether (and in which direction) logical
    /// bits flip depends on the row's cell polarity and the value stored at
    /// strike time — resolved by the scanner model.
    Discharge { start_lane: u32, span: u32 },
    /// A direct value corruption with a fixed XOR pattern — observed
    /// whatever the stored content. Used for the placed isolated SDC events
    /// which the paper records as single occurrences.
    ForcedFlip { xor: u32 },
    /// Masked bits are driven low (signal attenuation on a bus/connector):
    /// only stored 1-bits inside the mask flip, always 1 -> 0. The
    /// degrading-component model's dominant mode — it is why that node's
    /// errors are "single bit-flips switching from 1 to 0".
    ForcedClear { mask: u32 },
    /// Masked bits are driven high; the rare 0 -> 1 counterpart.
    ForcedSet { mask: u32 },
}

impl StrikeKind {
    /// Number of physical cells (or lanes) the strike touches.
    pub fn footprint_bits(self) -> u32 {
        match self {
            StrikeKind::Discharge { span, .. } => span,
            StrikeKind::ForcedFlip { xor } => xor.count_ones(),
            StrikeKind::ForcedClear { mask } | StrikeKind::ForcedSet { mask } => mask.count_ones(),
        }
    }
}

/// One corrupted word within a transient event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Strike {
    pub addr: WordAddr,
    pub kind: StrikeKind,
}

/// A transient fault event: one or more words corrupted at the same instant
/// on the same node. Multi-strike events are the paper's "multiple
/// single-bit corruptions occurring simultaneously in different regions of
/// the memory".
#[derive(Clone, Debug, PartialEq)]
pub struct TransientEvent {
    pub time: SimTime,
    pub node: NodeId,
    pub strikes: Vec<Strike>,
}

impl TransientEvent {
    /// Total logical bits the event can corrupt (upper bound; polarity and
    /// content may reduce what the scanner observes).
    pub fn footprint_bits(&self) -> u32 {
        self.strikes.iter().map(|s| s.kind.footprint_bits()).sum()
    }
}

/// A permanent/stuck fault active from `from` onward.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StuckFault {
    pub addr: WordAddr,
    pub from: SimTime,
    pub mask: StuckMask,
}

/// Everything that goes wrong on one node during the campaign.
#[derive(Clone, Debug, Default)]
pub struct NodeFaultProfile {
    /// Transient events in time order.
    pub transients: Vec<TransientEvent>,
    /// Stuck faults (weak cells surface here too when permanent).
    pub stuck: Vec<StuckFault>,
}

impl NodeFaultProfile {
    pub fn is_quiet(&self) -> bool {
        self.transients.is_empty() && self.stuck.is_empty()
    }

    /// Sorted-by-time invariant check (debug aid for generators).
    pub fn is_time_ordered(&self) -> bool {
        self.transients.windows(2).all(|w| w[0].time <= w[1].time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_accounting() {
        let e = TransientEvent {
            time: SimTime::from_secs(0),
            node: NodeId(0),
            strikes: vec![
                Strike {
                    addr: WordAddr(1),
                    kind: StrikeKind::Discharge {
                        start_lane: 3,
                        span: 2,
                    },
                },
                Strike {
                    addr: WordAddr(9000),
                    kind: StrikeKind::ForcedFlip { xor: 0b101 },
                },
            ],
        };
        assert_eq!(e.footprint_bits(), 4);
    }

    #[test]
    fn profile_invariants() {
        let mut p = NodeFaultProfile::default();
        assert!(p.is_quiet());
        assert!(p.is_time_ordered());
        p.transients.push(TransientEvent {
            time: SimTime::from_secs(10),
            node: NodeId(0),
            strikes: vec![],
        });
        p.transients.push(TransientEvent {
            time: SimTime::from_secs(5),
            node: NodeId(0),
            strikes: vec![],
        });
        assert!(!p.is_quiet());
        assert!(!p.is_time_ordered());
    }
}
