//! The degrading-component model (the paper's node 02-04).
//!
//! Fig. 12's red line: a node that starts throwing errors in early August
//! 2015 and degrades exponentially to over 1000 errors per day by November,
//! with >11,000 distinct addresses affected, ~30 recurring corruption
//! patterns, "the vast majority of them corresponding to single bit-flips
//! switching from 1 to 0". The randomness of the addresses suggests the
//! corruption happens outside the DRAM array (bus, connector, capacitive
//! noise), so strikes here are [`StrikeKind::ForcedFlip`]s — not content
//! dependent, always observed by the scanner.
//!
//! A sizeable fraction of events corrupt *several* addresses in the same
//! scan pass; these bursts are the dominant source of the paper's 26,000+
//! simultaneous corruptions.

use uc_cluster::NodeId;
use uc_dram::WordAddr;
use uc_simclock::calendar::CivilDate;
use uc_simclock::dist::{exponential, geometric, weighted_index};
use uc_simclock::rng::StreamRng;
use uc_simclock::SimTime;

use crate::scenario::ScanWindow;
use crate::types::{Strike, StrikeKind, TransientEvent};

/// Configuration of the degrading node.
#[derive(Clone, Debug)]
pub struct DegradingConfig {
    pub node: NodeId,
    /// Fault onset.
    pub onset: SimTime,
    /// If set, the fault stops at this instant — the faulty component was
    /// swapped out (the paper's future-work experiment).
    pub until: Option<SimTime>,
    /// Event rate at onset, per hour (wall time).
    pub initial_rate_per_hour: f64,
    /// Exponential growth rate per day.
    pub growth_per_day: f64,
    /// Cap on the instantaneous rate (events per hour).
    pub max_rate_per_hour: f64,
    /// Probability an event is a multi-address burst.
    pub burst_prob: f64,
    /// Success parameter of the geometric burst-size tail (smaller =>
    /// longer bursts; sizes are 2 + Geometric(p), clamped to `max_burst`).
    pub burst_tail_p: f64,
    /// Maximum words corrupted in one burst (paper: up to 36).
    pub max_burst: u32,
    /// Number of recurring corruption patterns (paper: "almost 30").
    pub pattern_pool: u32,
    /// Number of distinct addresses in play (paper: "over 11,000").
    pub address_pool: u32,
}

impl DegradingConfig {
    /// Paper-calibrated defaults for node 02-04. The rate is doubled
    /// relative to the *observed* target because forced-clear corruption is
    /// only visible on the scan phase that stores ones (~half the time).
    pub fn paper_default() -> DegradingConfig {
        DegradingConfig {
            node: NodeId::from_name("02-04").expect("valid node name"),
            onset: CivilDate::new(2015, 8, 5).midnight(),
            until: None,
            initial_rate_per_hour: 22.0 / 24.0,
            growth_per_day: 0.049,
            max_rate_per_hour: 150.0,
            burst_prob: 0.21,
            burst_tail_p: 0.42,
            max_burst: 36,
            pattern_pool: 29,
            address_pool: 11_500,
        }
    }

    /// Instantaneous event rate (per hour) at time `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        if t < self.onset {
            return 0.0;
        }
        if let Some(until) = self.until {
            if t >= until {
                return 0.0; // component swapped out
            }
        }
        let days = (t - self.onset).as_days_f64();
        (self.initial_rate_per_hour * (self.growth_per_day * days).exp())
            .min(self.max_rate_per_hour)
    }
}

/// The recurring corruption patterns: mostly single-bit, a few 2-3 bit
/// patterns (which is where Fig. 11's November multi-bit burst comes from).
/// Deterministic in the pattern index.
pub fn pattern_xor(cfg: &DegradingConfig, index: u32) -> u32 {
    let index = index % cfg.pattern_pool.max(1);
    match index {
        // Two double-bit patterns and one triple-bit pattern in the pool.
        0 => (1 << 9) | (1 << 14),
        1 => (1 << 3) | (1 << 8),
        2 => (1 << 1) | (1 << 6) | (1 << 12),
        // The rest are single-bit patterns at spread positions.
        i => 1 << ((i * 7) % 32),
    }
}

/// Generate the degrading node's events within its scan windows.
pub fn degrading_events(
    cfg: &DegradingConfig,
    windows: &[ScanWindow],
    rng: &mut StreamRng,
) -> Vec<TransientEvent> {
    let mut events = Vec::new();
    // Weights: the vast majority of events use a single-bit pattern; the
    // multi-bit patterns (indices 0..3) are rare — Fig. 11's November
    // multi-bit burst comes mostly from the solar-modulated process riding
    // on this node, not from the pattern pool.
    let mut weights = vec![1.0; cfg.pattern_pool.max(4) as usize];
    weights[0] = 0.004;
    weights[1] = 0.003;
    weights[2] = 0.002;

    // Pre-drawn address pool: the same addresses recur across events.
    let addr_pool: Vec<u64> = (0..cfg.address_pool)
        .map(|_| rng.below((3u64 << 30) / 4))
        .collect();

    for w in windows {
        if w.end <= cfg.onset {
            continue;
        }
        let start = w.start.max(cfg.onset);
        let hard_end = match cfg.until {
            Some(u) => w.end.min(u),
            None => w.end,
        };
        if start >= hard_end {
            continue;
        }
        let mut t = start.as_secs() as f64;
        let end = hard_end.as_secs() as f64;
        loop {
            // Thinning against the (non-decreasing within a window) rate.
            let max_rate = cfg
                .rate_at(hard_end - uc_simclock::SimDuration::from_secs(1))
                .max(1e-12)
                / 3_600.0;
            t += exponential(rng, max_rate);
            if t >= end {
                break;
            }
            let now = SimTime::from_secs(t as i64);
            if rng.next_f64() * max_rate > cfg.rate_at(now) / 3_600.0 {
                continue; // thinned out
            }
            let burst = if rng.chance(cfg.burst_prob) {
                (2 + geometric(rng, cfg.burst_tail_p) as u32).min(cfg.max_burst)
            } else {
                1
            };
            let mut strikes = Vec::with_capacity(burst as usize);
            let mut used = std::collections::HashSet::new();
            for _ in 0..burst {
                let mut addr = *rng.pick(&addr_pool);
                // Bursts corrupt distinct words.
                while !used.insert(addr) {
                    addr = *rng.pick(&addr_pool);
                }
                let pattern = weighted_index(rng, &weights) as u32;
                let mask = pattern_xor(cfg, pattern);
                // The component drives lines low ~90% of the time; the
                // remainder latches high — the paper's 90/10 direction split.
                let kind = if rng.chance(0.9) {
                    StrikeKind::ForcedClear { mask }
                } else {
                    StrikeKind::ForcedSet { mask }
                };
                strikes.push(Strike {
                    addr: WordAddr(addr),
                    kind,
                });
            }
            events.push(TransientEvent {
                time: now,
                node: cfg.node,
                strikes,
            });
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_simclock::SimDuration;

    fn windows(from_day: i64, to_day: i64) -> Vec<ScanWindow> {
        (from_day..to_day)
            .map(|d| ScanWindow {
                start: SimTime::from_secs(d * 86_400),
                end: SimTime::from_secs(d * 86_400) + SimDuration::from_hours(13),
                alloc_words: (3 << 30) / 4,
            })
            .collect()
    }

    fn onset_day() -> i64 {
        CivilDate::new(2015, 8, 5).midnight().day_index()
    }

    #[test]
    fn silent_before_onset() {
        let cfg = DegradingConfig::paper_default();
        let mut rng = StreamRng::from_seed(1);
        let w = windows(0, onset_day() - 1);
        assert!(degrading_events(&cfg, &w, &mut rng).is_empty());
    }

    #[test]
    fn rate_ramps_exponentially() {
        let cfg = DegradingConfig::paper_default();
        let at = |days: i64| cfg.rate_at(cfg.onset + SimDuration::from_days(days)) * 24.0;
        assert!(at(0) < 30.0, "starts slow: {}/day", at(0));
        assert!(at(60) > 2.0 * at(0));
        assert!(
            at(110) > 1_000.0,
            "over 1000/day by late November: {}/day",
            at(110)
        );
        assert_eq!(cfg.rate_at(cfg.onset - SimDuration::from_secs(1)), 0.0);
    }

    #[test]
    fn component_swap_ends_the_fault() {
        // The future-work experiment: the faulty component moves to another
        // node at a swap date; the original node goes quiet.
        let swap = CivilDate::new(2015, 10, 1).midnight();
        let cfg = DegradingConfig {
            until: Some(swap),
            ..DegradingConfig::paper_default()
        };
        let mut rng = StreamRng::from_seed(11);
        let events = degrading_events(&cfg, &windows(onset_day(), onset_day() + 150), &mut rng);
        assert!(!events.is_empty());
        assert!(
            events.iter().all(|e| e.time < swap),
            "no events after the swap"
        );
        // Rate is literally zero past the swap instant.
        assert_eq!(cfg.rate_at(swap), 0.0);
        assert!(cfg.rate_at(swap - SimDuration::from_hours(1)) > 0.0);
    }

    #[test]
    fn november_dominates_event_counts() {
        let cfg = DegradingConfig::paper_default();
        let mut rng = StreamRng::from_seed(2);
        let nov_start = CivilDate::new(2015, 11, 1).midnight().day_index();
        let events = degrading_events(&cfg, &windows(onset_day(), nov_start + 24), &mut rng);
        assert!(!events.is_empty());
        let in_november = events.iter().filter(|e| e.time.date().month == 11).count();
        assert!(
            in_november * 2 > events.len(),
            "november has most events: {in_november}/{}",
            events.len()
        );
        assert!(events.windows(2).all(|p| p[0].time <= p[1].time));
    }

    #[test]
    fn bursts_have_distinct_addresses_and_bounded_size() {
        let cfg = DegradingConfig {
            burst_prob: 1.0,
            ..DegradingConfig::paper_default()
        };
        let mut rng = StreamRng::from_seed(3);
        let events = degrading_events(&cfg, &windows(onset_day(), onset_day() + 40), &mut rng);
        assert!(!events.is_empty());
        for e in &events {
            assert!(e.strikes.len() >= 2);
            assert!(e.strikes.len() <= 36);
            let distinct: std::collections::HashSet<u64> =
                e.strikes.iter().map(|s| s.addr.0).collect();
            assert_eq!(distinct.len(), e.strikes.len());
        }
    }

    #[test]
    fn patterns_mostly_single_bit() {
        let cfg = DegradingConfig::paper_default();
        let mut rng = StreamRng::from_seed(4);
        let events = degrading_events(&cfg, &windows(onset_day(), onset_day() + 80), &mut rng);
        let mut single = 0u32;
        let mut multi = 0u32;
        for e in &events {
            for s in &e.strikes {
                if s.kind.footprint_bits() == 1 {
                    single += 1;
                } else {
                    multi += 1;
                }
            }
        }
        assert!(single > multi * 10, "single {single} vs multi {multi}");
        assert!(multi > 0, "a few multi-bit patterns exist");
    }

    #[test]
    fn pattern_pool_is_bounded_and_deterministic() {
        let cfg = DegradingConfig::paper_default();
        let all: std::collections::HashSet<u32> = (0..cfg.pattern_pool)
            .map(|i| pattern_xor(&cfg, i))
            .collect();
        assert!(all.len() <= 30, "paper: almost 30 distinct patterns");
        assert!(all.len() >= 20);
        assert_eq!(pattern_xor(&cfg, 5), pattern_xor(&cfg, 5));
    }

    #[test]
    fn address_pool_is_respected() {
        let cfg = DegradingConfig {
            address_pool: 64,
            ..DegradingConfig::paper_default()
        };
        let mut rng = StreamRng::from_seed(5);
        let events = degrading_events(&cfg, &windows(onset_day(), onset_day() + 60), &mut rng);
        let distinct: std::collections::HashSet<u64> = events
            .iter()
            .flat_map(|e| e.strikes.iter().map(|s| s.addr.0))
            .collect();
        assert!(distinct.len() <= 64);
        assert!(distinct.len() > 30, "pool gets exercised");
    }
}
