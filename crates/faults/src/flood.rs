//! The flood node: the removed faulty node behind 98% of all raw logs.
//!
//! "A simple analysis showed that over 98% of the observed failures came
//! from the same node. This node was a faulty node that was removed from
//! the job scheduler pool and is a classic case of a node that gets
//! replaced in production systems."
//!
//! Model: from a failure date onward, a region of words carries stuck-low
//! bits (a dead chip column / solder failure). The scanner re-detects every
//! stuck word on every iteration whose pattern exposes the stuck bits,
//! producing millions of raw ERROR logs that the extraction methodology
//! collapses to a handful of independent faults — and that the paper (and
//! our analyses) exclude from characterization.

use uc_cluster::NodeId;
use uc_dram::device::StuckMask;
use uc_dram::WordAddr;
use uc_simclock::rng::StreamRng;
use uc_simclock::SimTime;

use crate::types::StuckFault;

/// Configuration of the flood node.
#[derive(Clone, Debug)]
pub struct FloodConfig {
    pub node: NodeId,
    /// When the hardware fault appeared.
    pub from: SimTime,
    /// Number of words with stuck bits.
    pub stuck_words: u32,
    /// Base address of the damaged region.
    pub region_base: u64,
    /// Words in the damaged region to scatter stuck cells over.
    pub region_span: u64,
}

impl FloodConfig {
    /// Paper-calibrated default: enough stuck words that a year of scanning
    /// yields tens of millions of raw logs (98% of the total).
    pub fn paper_default() -> FloodConfig {
        use uc_simclock::calendar::CivilDate;
        FloodConfig {
            node: NodeId::from_name("40-07").expect("valid name"),
            from: CivilDate::new(2015, 2, 20).midnight(),
            stuck_words: 80,
            region_base: 0x0600_0000,
            region_span: 1 << 16,
        }
    }
}

/// Generate the stuck faults for the flood node.
pub fn flood_faults(cfg: &FloodConfig, rng: &mut StreamRng) -> Vec<StuckFault> {
    let mut used = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(cfg.stuck_words as usize);
    while out.len() < cfg.stuck_words as usize {
        let addr = cfg.region_base + rng.below(cfg.region_span.max(1));
        if !used.insert(addr) {
            continue;
        }
        // Stuck-low single bits dominate (dead column drivers); a few words
        // get a stuck-high bit as well.
        let bit = rng.below(32) as u32;
        let mask = if rng.chance(0.9) {
            StuckMask {
                force_low: 1 << bit,
                force_high: 0,
            }
        } else {
            StuckMask {
                force_low: 0,
                force_high: 1 << bit,
            }
        };
        out.push(StuckFault {
            addr: WordAddr(addr),
            from: cfg.from,
            mask,
        });
    }
    out.sort_by_key(|f| f.addr.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_words_count_and_region() {
        let cfg = FloodConfig::paper_default();
        let mut rng = StreamRng::from_seed(1);
        let faults = flood_faults(&cfg, &mut rng);
        assert_eq!(faults.len(), 80);
        for f in &faults {
            assert!(f.addr.0 >= cfg.region_base);
            assert!(f.addr.0 < cfg.region_base + cfg.region_span);
            assert_eq!(f.from, cfg.from);
            let bits = f.mask.force_low.count_ones() + f.mask.force_high.count_ones();
            assert_eq!(bits, 1, "one stuck bit per word");
        }
        // Distinct addresses, sorted.
        assert!(faults.windows(2).all(|w| w[0].addr.0 < w[1].addr.0));
    }

    #[test]
    fn mostly_stuck_low() {
        let cfg = FloodConfig {
            stuck_words: 600,
            region_span: 1 << 20,
            ..FloodConfig::paper_default()
        };
        let mut rng = StreamRng::from_seed(2);
        let faults = flood_faults(&cfg, &mut rng);
        let low = faults.iter().filter(|f| f.mask.force_low != 0).count();
        assert!(low as f64 > faults.len() as f64 * 0.8);
        assert!(low < faults.len(), "a few stuck-high bits exist");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = FloodConfig::paper_default();
        let a = flood_faults(&cfg, &mut StreamRng::from_seed(3));
        let b = flood_faults(&cfg, &mut StreamRng::from_seed(3));
        assert_eq!(a, b);
        let c = flood_faults(&cfg, &mut StreamRng::from_seed(4));
        assert_ne!(a, c);
    }
}
