//! Cosmic-ray strike processes.
//!
//! Two components, both driven by the atmospheric-neutron flux model:
//!
//! - a **background** single-cell process, near-homogeneous (the single-bit
//!   rate in the paper shows no diurnal structure, Fig. 5), responsible for
//!   the "<30 errors over all other nodes" background of Fig. 12;
//! - a **multi-lane / shower** process whose rate is *fully* modulated by
//!   the solar elevation, producing the noon-peaked bell of Fig. 6. Events
//!   corrupt a run of adjacent bit lanes in one word (-> per-word multi-bit
//!   errors), sometimes accompanied by single-cell hits in physically
//!   adjacent rows (-> the paper's double+single simultaneity cases), and
//!   occasionally pure multi-word showers of single-bit hits.

use uc_cluster::NodeId;
use uc_dram::{Geometry, WordAddr};
use uc_simclock::dist::{thinned_poisson_times, weighted_index};
use uc_simclock::rng::StreamRng;
use uc_simclock::{NeutronFlux, SimTime};

use crate::scenario::ScanWindow;
use crate::types::{Strike, StrikeKind, TransientEvent};

/// Configuration for the background single-cell process.
#[derive(Clone, Debug)]
pub struct BackgroundConfig {
    /// Strikes per monitored node-hour (before detection losses).
    pub rate_per_hour: f64,
    /// Probability a background event is a small multi-word shower of
    /// single-cell hits instead of one cell.
    pub shower_prob: f64,
    /// Maximum words in a background shower.
    pub shower_max_words: u32,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            // ~25 detected background errors over ~4.2M monitored node-hours
            // at ~50% detection efficiency.
            rate_per_hour: 1.3e-5,
            shower_prob: 0.08,
            shower_max_words: 6,
        }
    }
}

/// Configuration for the solar-modulated multi-bit process.
#[derive(Clone, Debug)]
pub struct MultiBitConfig {
    /// Base rate per monitored node-hour for *ordinary* nodes, scaled by
    /// the (normalized) neutron-flux factor.
    pub rate_per_hour: f64,
    /// Extra rate for the designated hot node (the paper's Fig. 11 shows
    /// multi-bit bursts in November riding on node 02-04's degradation).
    pub hot_node_rate_per_hour: f64,
    /// The hot node, if any.
    pub hot_node: Option<NodeId>,
    /// Window during which the hot node's extra rate applies.
    pub hot_window: Option<(SimTime, SimTime)>,
    /// Relative weights of the lane-span distribution, index 0 => span 2.
    /// Defaults follow Table I: spans {2: 76, 3: 2} (the 4+ bit errors are
    /// the isolated SDCs, placed by `crate::isolated`).
    pub span_weights: Vec<f64>,
    /// Probability a multi-lane strike is accompanied by 1..=3 single-cell
    /// hits in adjacent rows (the 44-of-76 coincidence statistic).
    pub companion_prob: f64,
    /// Probability the companion itself is a second double strike (the
    /// paper saw exactly one double+double event).
    pub double_double_prob: f64,
    /// Probability a strike lands on the node's *characteristic* weak lane
    /// pair instead of a random one. The paper's Table I shows recurring
    /// multi-bit patterns (one double-bit pattern 36 times), i.e. the same
    /// marginal lanes keep getting hit on a given device.
    pub repeat_lane_prob: f64,
}

impl Default for MultiBitConfig {
    fn default() -> Self {
        MultiBitConfig {
            rate_per_hour: 1.0e-5,
            hot_node_rate_per_hour: 0.055,
            hot_node: None,
            hot_window: None,
            span_weights: vec![76.0, 2.0],
            companion_prob: 0.58,
            double_double_prob: 0.013,
            repeat_lane_prob: 0.55,
        }
    }
}

/// Draw event times for a rate that is `base * flux.factor(t) / mean_factor`
/// inside the scan windows. Normalizing by the mean factor keeps `base` an
/// interpretable events-per-hour rate while preserving the diurnal shape.
fn solar_modulated_times(
    rng: &mut StreamRng,
    windows: &[ScanWindow],
    flux: &NeutronFlux,
    base_per_hour: f64,
) -> Vec<SimTime> {
    let mut out = Vec::new();
    if base_per_hour <= 0.0 {
        return out;
    }
    // Mean factor over a representative day (equinox) for normalization.
    let mean = flux.mean_factor_over_day(80).max(1e-9);
    let max = flux.max_factor() / mean;
    for w in windows {
        let rate = base_per_hour / 3_600.0;
        let times = thinned_poisson_times(
            rng,
            w.start.as_secs() as f64,
            w.end.as_secs() as f64,
            rate * max,
            |t| rate * flux.factor(SimTime::from_secs(t as i64)) / mean,
        );
        out.extend(times.into_iter().map(|t| SimTime::from_secs(t as i64)));
    }
    out
}

/// Uniform (non-modulated) event times inside scan windows.
fn uniform_times(rng: &mut StreamRng, windows: &[ScanWindow], rate_per_hour: f64) -> Vec<SimTime> {
    let mut out = Vec::new();
    let rate = rate_per_hour / 3_600.0;
    for w in windows {
        let times = thinned_poisson_times(
            rng,
            w.start.as_secs() as f64,
            w.end.as_secs() as f64,
            rate,
            |_| rate,
        );
        out.extend(times.into_iter().map(|t| SimTime::from_secs(t as i64)));
    }
    out
}

fn random_addr(rng: &mut StreamRng, scan_words: u64) -> WordAddr {
    WordAddr(rng.below(scan_words.max(1)))
}

/// Generate background events for one node.
pub fn background_events(
    cfg: &BackgroundConfig,
    node: NodeId,
    windows: &[ScanWindow],
    scan_words: u64,
    rng: &mut StreamRng,
) -> Vec<TransientEvent> {
    let geometry = Geometry::NODE_4GB;
    uniform_times(rng, windows, cfg.rate_per_hour)
        .into_iter()
        .map(|time| {
            let addr = random_addr(rng, scan_words);
            let strikes = if rng.chance(cfg.shower_prob) {
                let words = 2 + rng.below(u64::from(cfg.shower_max_words.max(3) - 1)) as u32;
                shower_strikes(rng, geometry, addr, words, scan_words)
            } else {
                vec![Strike {
                    addr,
                    kind: StrikeKind::Discharge {
                        start_lane: rng.below(32) as u32,
                        span: 1,
                    },
                }]
            };
            TransientEvent {
                time,
                node,
                strikes,
            }
        })
        .collect()
}

/// Single-cell hits over `words` adjacent rows (same bank/column area) —
/// physically clustered, scattered in the scanner's address space.
fn shower_strikes(
    rng: &mut StreamRng,
    geometry: Geometry,
    origin: WordAddr,
    words: u32,
    scan_words: u64,
) -> Vec<Strike> {
    geometry
        .col_neighbours(origin, words)
        .into_iter()
        .map(|a| Strike {
            // Keep every strike inside the scanned region.
            addr: WordAddr(a.0 % scan_words.max(1)),
            kind: StrikeKind::Discharge {
                start_lane: rng.below(32) as u32,
                span: 1,
            },
        })
        .collect()
}

/// Generate solar-modulated multi-bit events for one node.
pub fn multibit_events(
    cfg: &MultiBitConfig,
    node: NodeId,
    windows: &[ScanWindow],
    scan_words: u64,
    flux: &NeutronFlux,
    rng: &mut StreamRng,
) -> Vec<TransientEvent> {
    let geometry = Geometry::NODE_4GB;
    let mut rate = cfg.rate_per_hour;
    let mut hot_windows: Vec<ScanWindow> = Vec::new();
    if cfg.hot_node == Some(node) {
        if let Some((lo, hi)) = cfg.hot_window {
            hot_windows = windows
                .iter()
                .filter(|w| w.end > lo && w.start < hi)
                .map(|w| ScanWindow {
                    start: w.start.clamp(lo, hi),
                    end: w.end.clamp(lo, hi),
                    ..*w
                })
                .collect();
        } else {
            rate += cfg.hot_node_rate_per_hour;
        }
    }

    let mut times = solar_modulated_times(rng, windows, flux, rate);
    if !hot_windows.is_empty() {
        times.extend(solar_modulated_times(
            rng,
            &hot_windows,
            flux,
            cfg.hot_node_rate_per_hour,
        ));
        times.sort_unstable();
    }

    // The node's characteristic weak lane pair, biased toward the low
    // half-word: the paper notes "the majority of the multiple bit
    // corruptions occur in the least significant bits of the word".
    let characteristic_lane = (uc_simclock::rng::mix64(u64::from(node.0) ^ 0x17AD) % 14) as u32;

    times
        .into_iter()
        .map(|time| {
            let addr = random_addr(rng, scan_words);
            let span = 2 + weighted_index(rng, &cfg.span_weights) as u32;
            let start_lane = if rng.chance(cfg.repeat_lane_prob) {
                characteristic_lane
            } else {
                rng.below(31) as u32
            };
            let mut strikes = vec![Strike {
                addr,
                kind: StrikeKind::Discharge { start_lane, span },
            }];
            if rng.chance(cfg.double_double_prob) {
                // A second double strike in an adjacent row.
                let other = geometry.col_neighbours(addr, 2)[1];
                strikes.push(Strike {
                    addr: WordAddr(other.0 % scan_words.max(1)),
                    kind: StrikeKind::Discharge {
                        start_lane: rng.below(31) as u32,
                        span: 2,
                    },
                });
            } else if rng.chance(cfg.companion_prob) {
                // 1..=3 single-cell companions in adjacent rows.
                let n = 1 + rng.below(3) as u32;
                for a in geometry.col_neighbours(addr, n + 1).into_iter().skip(1) {
                    strikes.push(Strike {
                        addr: WordAddr(a.0 % scan_words.max(1)),
                        kind: StrikeKind::Discharge {
                            start_lane: rng.below(32) as u32,
                            span: 1,
                        },
                    });
                }
            }
            TransientEvent {
                time,
                node,
                strikes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_simclock::solar::BARCELONA;
    use uc_simclock::SimDuration;

    fn windows_days(n: i64) -> Vec<ScanWindow> {
        // One 12h window per day, alternating day/night halves to cover all
        // hours over time.
        (0..n)
            .map(|d| {
                let start = SimTime::from_secs(d * 86_400 + (d % 2) * 43_200);
                ScanWindow {
                    start,
                    end: start + SimDuration::from_hours(12),
                    alloc_words: (3 << 30) / 4,
                }
            })
            .collect()
    }

    #[test]
    fn background_rate_roughly_matches() {
        let cfg = BackgroundConfig {
            rate_per_hour: 0.01,
            ..BackgroundConfig::default()
        };
        let mut rng = StreamRng::from_seed(1);
        let w = windows_days(300);
        let hours: f64 = w.iter().map(|w| (w.end - w.start).as_hours_f64()).sum();
        let events = background_events(&cfg, NodeId(0), &w, (3 << 30) / 4, &mut rng);
        let rate = events.len() as f64 / hours;
        assert!((rate - 0.01).abs() < 0.003, "rate {rate}");
        assert!(events.windows(2).all(|p| p[0].time <= p[1].time));
    }

    #[test]
    fn background_mostly_single_cell() {
        let cfg = BackgroundConfig {
            rate_per_hour: 0.05,
            ..BackgroundConfig::default()
        };
        let mut rng = StreamRng::from_seed(2);
        let events = background_events(&cfg, NodeId(0), &windows_days(200), 1 << 28, &mut rng);
        let single = events.iter().filter(|e| e.strikes.len() == 1).count();
        assert!(single as f64 > events.len() as f64 * 0.85);
        for e in &events {
            for s in &e.strikes {
                assert!(s.addr.0 < 1 << 28, "strike inside scanned region");
                assert_eq!(s.kind.footprint_bits(), 1);
            }
        }
    }

    #[test]
    fn multibit_spans_follow_weights() {
        let cfg = MultiBitConfig {
            rate_per_hour: 0.05,
            companion_prob: 0.0,
            double_double_prob: 0.0,
            ..MultiBitConfig::default()
        };
        let flux = NeutronFlux::new(BARCELONA);
        let mut rng = StreamRng::from_seed(3);
        let events = multibit_events(
            &cfg,
            NodeId(1),
            &windows_days(394),
            1 << 28,
            &flux,
            &mut rng,
        );
        assert!(!events.is_empty());
        let doubles = events
            .iter()
            .filter(|e| matches!(e.strikes[0].kind, StrikeKind::Discharge { span: 2, .. }))
            .count();
        // 76:2 weighting => the overwhelming majority are span-2.
        assert!(doubles as f64 > events.len() as f64 * 0.9);
    }

    #[test]
    fn multibit_is_diurnally_modulated() {
        let cfg = MultiBitConfig {
            rate_per_hour: 0.2,
            companion_prob: 0.0,
            ..MultiBitConfig::default()
        };
        let flux = NeutronFlux::new(BARCELONA);
        let mut rng = StreamRng::from_seed(4);
        let events = multibit_events(
            &cfg,
            NodeId(1),
            &windows_days(394),
            1 << 28,
            &flux,
            &mut rng,
        );
        let day = events
            .iter()
            .filter(|e| (7..18).contains(&e.time.datetime().wall_hour()))
            .count();
        let night = events.len() - day;
        assert!(
            day as f64 > night as f64 * 1.4,
            "day {day} vs night {night} (paper: ~2x)"
        );
    }

    #[test]
    fn companions_share_the_timestamp() {
        let cfg = MultiBitConfig {
            rate_per_hour: 0.1,
            companion_prob: 1.0,
            double_double_prob: 0.0,
            ..MultiBitConfig::default()
        };
        let flux = NeutronFlux::new(BARCELONA);
        let mut rng = StreamRng::from_seed(5);
        let events = multibit_events(
            &cfg,
            NodeId(1),
            &windows_days(100),
            1 << 28,
            &flux,
            &mut rng,
        );
        assert!(!events.is_empty());
        for e in &events {
            assert!(e.strikes.len() >= 2, "companion present");
            let addrs: std::collections::HashSet<u64> =
                e.strikes.iter().map(|s| s.addr.0).collect();
            assert_eq!(addrs.len(), e.strikes.len(), "distinct words");
        }
    }

    #[test]
    fn hot_node_gets_extra_events_in_window() {
        let hot = NodeId(7);
        let lo = SimTime::from_secs(50 * 86_400);
        let hi = SimTime::from_secs(150 * 86_400);
        let cfg = MultiBitConfig {
            rate_per_hour: 0.0005,
            hot_node: Some(hot),
            hot_node_rate_per_hour: 0.05,
            hot_window: Some((lo, hi)),
            ..MultiBitConfig::default()
        };
        let flux = NeutronFlux::new(BARCELONA);
        let mut rng_hot = StreamRng::from_seed(6);
        let mut rng_cold = StreamRng::from_seed(6);
        let w = windows_days(394);
        let hot_events = multibit_events(&cfg, hot, &w, 1 << 28, &flux, &mut rng_hot);
        let cold_events = multibit_events(&cfg, NodeId(8), &w, 1 << 28, &flux, &mut rng_cold);
        assert!(hot_events.len() > cold_events.len() * 5 + 5);
        let inside = hot_events
            .iter()
            .filter(|e| e.time >= lo && e.time < hi)
            .count();
        assert!(inside as f64 > hot_events.len() as f64 * 0.8);
    }

    #[test]
    fn zero_rate_no_events() {
        let cfg = BackgroundConfig {
            rate_per_hour: 0.0,
            ..BackgroundConfig::default()
        };
        let mut rng = StreamRng::from_seed(9);
        assert!(
            background_events(&cfg, NodeId(0), &windows_days(10), 1 << 20, &mut rng).is_empty()
        );
    }
}
