//! Corruption safety, as a property: *any* single bit flip anywhere in a
//! database file is detected and surfaces as a typed error — never a
//! wrong answer. Every byte of the file is covered by a check (magic
//! compare, per-block CRC-32, footer CRC-32, trailer bounds validation),
//! and CRC-32 detects all single-bit errors, so the assertion can be
//! strict: open-or-scan MUST fail. Truncation is weaker in principle
//! (the new last 16 bytes could in theory parse as a valid trailer), so
//! there the property is "typed error, or results identical to clean".

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use unprotected_computing::faultdb::format::write_db;
use unprotected_computing::faultdb::{FaultDb, Snapshot, WriteOptions};
use unprotected_computing::faultlog::ingest::{recover_text, IngestStats};
use unprotected_computing::faultlog::store::ClusterLog;

/// Build one clean database, once, and hand back its bytes.
fn clean_db_bytes() -> (Vec<u8>, Snapshot) {
    let mut stats = IngestStats::default();
    let mut logs = Vec::new();
    for name in ["01-01", "02-05"] {
        let mut text = format!("START t=0 node={name} alloc=3221225472 temp=30.0\n");
        for k in 0i64..30 {
            let vaddr = 0x800 + 0x80 * k as u64;
            text.push_str(&format!(
                "ERROR t={t} node={name} vaddr=0x{vaddr:08x} page=0x{page:06x} \
                 expected=0xffffffff actual=0xfffffffe temp=34.0\n",
                t = 100 + 900 * k,
                page = vaddr >> 12
            ));
        }
        text.push_str(&format!("END t=50000 node={name} temp=31.0\n"));
        let rec = recover_text(&text);
        stats.merge(&rec.stats);
        logs.push(rec.log);
    }
    let snap = Snapshot::from_cluster(&ClusterLog::new(logs), stats);
    let dir = std::env::temp_dir().join(format!("uc-fdb-dmg-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("clean.fdb");
    write_db(
        &snap,
        &path,
        &WriteOptions {
            rows_per_block: 8,
            ..WriteOptions::default()
        },
    )
    .unwrap();
    (fs::read(&path).unwrap(), snap)
}

fn write_tmp(tag: &str, bytes: &[u8]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uc-fdb-dmg-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.fdb"));
    fs::write(&path, bytes).unwrap();
    path
}

/// Full read sweep: open, decode every block, rebuild the snapshot.
fn read_all(path: &Path) -> Result<Snapshot, String> {
    let db = FaultDb::open(path).map_err(|e| e.to_string())?;
    db.snapshot().map_err(|e| e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single flipped bit makes the read path fail with a typed
    /// error; it never silently yields different faults.
    #[test]
    fn any_single_bit_flip_is_detected(seed in 0usize..usize::MAX, bit in 0u8..8) {
        let (clean, _snap) = clean_db_bytes();
        let offset = seed % clean.len();
        let mut damaged = clean.clone();
        damaged[offset] ^= 1 << bit;
        let path = write_tmp(&format!("flip-{offset}-{bit}"), &damaged);
        let outcome = read_all(&path);
        let _ = fs::remove_file(&path);
        prop_assert!(
            outcome.is_err(),
            "flip at byte {offset} bit {bit} went undetected"
        );
    }

    /// Truncation at any point either fails typed or (vanishingly
    /// unlikely by construction) reads back the identical snapshot.
    #[test]
    fn truncation_never_yields_wrong_results(cut in 0usize..usize::MAX) {
        let (clean, snap) = clean_db_bytes();
        let cut = cut % clean.len(); // strictly shorter than the file
        let path = write_tmp(&format!("cut-{cut}"), &clean[..cut]);
        let outcome = read_all(&path);
        let _ = fs::remove_file(&path);
        match outcome {
            Err(_) => {} // typed refusal: the expected outcome
            Ok(back) => prop_assert_eq!(back, snap),
        }
    }
}

/// The error is *typed*, not a panic or a bare string: damage in a block
/// payload names the block and the damage kind.
#[test]
fn block_damage_error_names_the_block() {
    use unprotected_computing::faultdb::DbError;
    let (clean, _snap) = clean_db_bytes();
    // Flip a byte early in the first block's payload (right after magic).
    let mut damaged = clean.clone();
    damaged[8] ^= 0x40;
    let path = write_tmp("typed", &damaged);
    let db = FaultDb::open(&path).expect("footer is intact, open succeeds");
    match db.faults_all() {
        Err(DbError::BlockCorrupt { index: 0, .. }) => {}
        other => panic!("expected BlockCorrupt for block 0, got {other:?}"),
    }
    let _ = fs::remove_file(&path);
}

/// Appending trailing garbage after the trailer must also fail: the
/// trailer is located from the end of the file.
#[test]
fn appended_garbage_is_detected() {
    let (clean, _snap) = clean_db_bytes();
    let mut damaged = clean.clone();
    damaged.extend_from_slice(b"tail of junk");
    let path = write_tmp("append", &damaged);
    assert!(read_all(&path).is_err());
    let _ = fs::remove_file(&path);
}
