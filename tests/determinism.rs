//! Cross-crate determinism: the campaign's output is a pure function of its
//! configuration — the DESIGN.md §6 contract.

use unprotected_core::{run_campaign, CampaignConfig, Report};

#[test]
fn same_seed_same_everything() {
    let a = run_campaign(&CampaignConfig::small(123, 7));
    let b = run_campaign(&CampaignConfig::small(123, 7));

    assert_eq!(a.raw_error_logs(), b.raw_error_logs());
    assert_eq!(a.all_faults(), b.all_faults());
    assert_eq!(a.characterized_faults(), b.characterized_faults());
    assert_eq!(a.monitored_node_hours(), b.monitored_node_hours());
    assert_eq!(a.terabyte_hours(), b.terabyte_hours());

    // Per-node logs byte-identical.
    for (oa, ob) in a.completed().zip(b.completed()) {
        assert_eq!(oa.node, ob.node);
        assert_eq!(oa.log.entries(), ob.log.entries(), "node {}", oa.node);
    }

    // Reports identical down to the rendered text.
    let ra = Report::build(&a);
    let rb = Report::build(&b);
    assert_eq!(
        unprotected_core::render::full_report(&ra),
        unprotected_core::render::full_report(&rb)
    );
}

#[test]
fn golden_numbers_for_seed_42() {
    // Regression anchor: the campaign is a pure function of its config, so
    // these exact values must never drift unintentionally. If a deliberate
    // model recalibration changes them, update the constants *and* re-check
    // EXPERIMENTS.md / the paperref bands.
    let result = run_campaign(&CampaignConfig::small(42, 8));
    assert_eq!(result.raw_error_logs(), 36_528_844);
    assert_eq!(result.characterized_faults().len(), 53_128);
    let report = Report::build(&result);
    assert_eq!(report.multibit.max_bit_distance, 11);
    assert_eq!(report.headline.flood_nodes.len(), 1);
}

#[test]
fn different_seeds_different_results() {
    let a = run_campaign(&CampaignConfig::small(1, 7));
    let b = run_campaign(&CampaignConfig::small(2, 7));
    assert_ne!(a.all_faults(), b.all_faults());
    assert_ne!(a.raw_error_logs(), b.raw_error_logs());
}

#[test]
fn node_simulation_independent_of_fleet_composition() {
    // A node's log depends only on (seed, node, its own fault scenario):
    // scaling the topology up must not change nodes present in both.
    // Scenario-special nodes are excluded — CampaignConfig::small relocates
    // them based on the blade count, so their scenarios legitimately differ.
    let cfg_a = CampaignConfig::small(5, 7);
    let cfg_b = CampaignConfig::small(5, 10);
    let mut special: Vec<_> = cfg_a.scenario.special_nodes();
    special.extend(cfg_b.scenario.special_nodes());
    let small = run_campaign(&cfg_a);
    let bigger = run_campaign(&cfg_b);
    let mut checked = 0;
    for oa in small.completed() {
        if special.contains(&oa.node) {
            continue;
        }
        if let Some(ob) = bigger.completed().find(|o| o.node == oa.node) {
            assert_eq!(oa.log.entries(), ob.log.entries(), "node {}", oa.node);
            checked += 1;
        }
    }
    assert!(checked >= 60, "most nodes present in both ({checked})");
}
