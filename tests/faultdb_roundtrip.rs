//! faultdb integration: databases built from recovered cluster logs
//! round-trip exactly, queries agree with brute-force scans over the
//! original faults, pruning never changes an answer, and the decoded-
//! block cache stays invisible to results while its counters move.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use unprotected_computing::faultdb::format::write_db;
use unprotected_computing::faultdb::{
    db::QueryOptions, DbOptions, FaultDb, Snapshot, WriteOptions,
};
use unprotected_computing::faultlog::ingest::{recover_text, IngestStats};
use unprotected_computing::faultlog::store::ClusterLog;
use unprotected_computing::parallel::with_thread_limit;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uc-fdb-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A cluster with enough variety to light up every query dimension:
/// several nodes across blades, multi-bit patterns, both flip
/// directions, and a spread of timestamps.
fn varied_snapshot() -> Snapshot {
    let mut stats = IngestStats::default();
    let mut logs = Vec::new();
    for (i, name) in ["01-01", "01-09", "05-03", "09-14", "33-07"]
        .iter()
        .enumerate()
    {
        let mut text = format!("START t=0 node={name} alloc=3221225472 temp=30.0\n");
        for k in 0i64..40 {
            let t = 200 + 3_000 * k + 17 * i as i64;
            let vaddr = 0x1000 * (1 + (k as u64 % 9));
            // Vary the corruption: single-bit clears, single-bit sets,
            // double-bit, and a wide multi-bit word.
            let actual: u32 = match k % 4 {
                0 => 0xffff_fffe, // one bit 1→0
                1 => 0xffff_fffc, // two bits 1→0
                2 => 0x7fff_ffff, // high bit 1→0
                _ => 0x00ff_ffff, // 8 bits 1→0
            };
            text.push_str(&format!(
                "ERROR t={t} node={name} vaddr=0x{vaddr:08x} page=0x{page:06x} \
                 expected=0xffffffff actual=0x{actual:08x} temp=3{i}.0\n",
                page = vaddr >> 12
            ));
        }
        text.push_str(&format!("END t=200000 node={name} temp=31.0\n"));
        let rec = recover_text(&text);
        assert!(rec.stats.is_conserved());
        stats.merge(&rec.stats);
        logs.push(rec.log);
    }
    Snapshot::from_cluster(&ClusterLog::new(logs), stats)
}

#[test]
fn snapshot_roundtrips_and_reports_identically() {
    let dir = tempdir("roundtrip");
    let snap = varied_snapshot();
    assert!(!snap.faults.is_empty());
    let path = dir.join("t.fdb");
    write_db(
        &snap,
        &path,
        &WriteOptions {
            rows_per_block: 16,
            ..WriteOptions::default()
        },
    )
    .unwrap();
    let db = FaultDb::open(&path).unwrap();
    let back = db.snapshot().unwrap();
    assert_eq!(back, snap);
    assert_eq!(back.report_text(), snap.report_text());
}

#[test]
fn queries_agree_with_brute_force_and_pruning_is_sound() {
    let dir = tempdir("brute");
    let snap = varied_snapshot();
    let path = dir.join("t.fdb");
    write_db(
        &snap,
        &path,
        &WriteOptions {
            rows_per_block: 8,
            ..WriteOptions::default()
        },
    )
    .unwrap();
    let db = FaultDb::open(&path).unwrap();
    let opts = QueryOptions::default();

    // count where multibit — brute force over the original faults.
    let expect = snap.faults.iter().filter(|f| f.is_multi_bit()).count();
    let got = db.query("count where multibit", &opts).unwrap();
    assert_eq!(got.lines, vec![expect.to_string()]);

    // A pruned time window: fewer blocks scanned, same exact rows.
    let (lo, hi) = (50_000i64, 110_000i64);
    let windowed = db
        .query(&format!("count where time>={lo} and time<{hi}"), &opts)
        .unwrap();
    let expect_window = snap
        .faults
        .iter()
        .filter(|f| (lo..hi).contains(&f.time.as_secs()))
        .count();
    assert_eq!(windowed.lines, vec![expect_window.to_string()]);
    assert!(
        windowed.blocks_scanned < windowed.blocks_total,
        "a narrow window over time-sorted rows must prune ({}/{} scanned)",
        windowed.blocks_scanned,
        windowed.blocks_total
    );

    // group node — brute force with a BTreeMap, rendered the same way.
    let grouped = db.query("group node", &opts).unwrap();
    let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
    for f in &snap.faults {
        *counts.entry(f.node.0).or_insert(0) += 1;
    }
    let expect_lines: Vec<String> = counts
        .iter()
        .map(|(&n, &c)| format!("{} {c}", unprotected_computing::cluster::NodeId(n)))
        .collect();
    assert_eq!(grouped.lines, expect_lines);

    // hist bits sums to the total fault count.
    let hist = db.query("hist bits", &opts).unwrap();
    let total: u64 = hist
        .lines
        .iter()
        .map(|l| l.split_whitespace().nth(1).unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(total, snap.faults.len() as u64);
}

#[test]
fn query_results_thread_invariant_through_the_public_api() {
    let dir = tempdir("threads");
    let snap = varied_snapshot();
    let path = dir.join("t.fdb");
    write_db(
        &snap,
        &path,
        &WriteOptions {
            rows_per_block: 8,
            ..WriteOptions::default()
        },
    )
    .unwrap();
    let db = FaultDb::open(&path).unwrap();
    for q in [
        "count",
        "group class",
        "group dir",
        "top 4 blade",
        "list limit 7 where class=2 or bits>=8",
        "hist bits where time>=10000",
    ] {
        let one = with_thread_limit(1, || db.query(q, &QueryOptions::default())).unwrap();
        let many = with_thread_limit(8, || db.query(q, &QueryOptions::default())).unwrap();
        assert_eq!(one, many, "{q}");
    }
}

#[test]
fn cache_counters_move_but_results_do_not() {
    let dir = tempdir("cache");
    let snap = varied_snapshot();
    let path = dir.join("t.fdb");
    write_db(
        &snap,
        &path,
        &WriteOptions {
            rows_per_block: 8,
            ..WriteOptions::default()
        },
    )
    .unwrap();

    // Tiny cache: forced evictions on a full scan.
    let db = FaultDb::open_with(&path, &DbOptions { cache_blocks: 4 }).unwrap();
    let opts = QueryOptions::default();
    let first = db.query("group class", &opts).unwrap();
    let second = db.query("group class", &opts).unwrap();
    let third = db.query("group class", &opts).unwrap();
    assert_eq!(first, second);
    assert_eq!(first, third);
    let stats = db.cache_stats();
    assert_eq!(
        stats.hits + stats.misses,
        3 * db.blocks() as u64,
        "every block lookup is either a hit or a miss: {stats:?}"
    );
    assert!(
        stats.evictions > 0,
        "4-block cache over {} blocks must evict",
        db.blocks()
    );

    // Same queries against an uncached-in-practice big-cache handle:
    // identical answers, proving the cache is invisible to results.
    let db_big = FaultDb::open(&path).unwrap();
    assert_eq!(db_big.query("group class", &opts).unwrap(), first);
}
