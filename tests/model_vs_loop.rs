//! Cross-validation: the event-driven scan model (used by the campaign)
//! must produce the same ERROR records the *real* scan loop produces when
//! the same faults hit a real device at the same instants.
//!
//! Method: build a tiny device and a session over it; inject each fault
//! into the device between the loop passes that bracket its event time,
//! drive `DeviceScanner` pass by pass, and compare the corruption content
//! against `ScanModel::render_session` for the identical session and event
//! list.

use uc_cluster::NodeId;
use uc_dram::{Geometry, LaneScrambler, MemoryDevice, VecDevice, WordAddr};
use uc_faultlog::record::ErrorRecord;
use uc_faultlog::store::NodeLog;
use uc_faults::types::{Strike, StrikeKind, TransientEvent};
use uc_memscan::{DeviceScanner, Pattern, ScanModel, SessionSpec};
use uc_simclock::rng::StreamRng;
use uc_simclock::{SimDuration, SimTime};

const NODE: NodeId = NodeId(9);
const POLARITY_SALT: u64 = 77;

/// A scan model whose iteration period over the tiny device is exactly
/// `ITER_SECS`, so loop passes and model gaps line up one to one.
const ITER_SECS: i64 = 4;

fn model() -> ScanModel {
    ScanModel {
        words_per_second: Geometry::TINY.words() / ITER_SECS as u64,
        polarity_salt: POLARITY_SALT,
        scrambler: LaneScrambler::default(),
        geometry: Geometry::TINY,
    }
}

fn session(pattern: Pattern, passes: i64) -> SessionSpec {
    SessionSpec {
        node: NODE,
        start: SimTime::from_secs(1_000),
        end: SimTime::from_secs(1_000 + passes * ITER_SECS),
        alloc_words: Geometry::TINY.words(),
        pattern,
        clean_end: true,
    }
}

/// Drive the real loop: apply each event's strikes to the device in the
/// gap (pass index) its timestamp falls into, collect every ERROR record.
fn run_loop(spec: &SessionSpec, events: &[TransientEvent]) -> Vec<ErrorRecord> {
    // The scan model derives each node's polarity as salt ^ mix64(node);
    // give the device the same effective salt.
    let device_salt = POLARITY_SALT ^ uc_simclock::rng::mix64(u64::from(NODE.0));
    let device = VecDevice::new(Geometry::TINY, device_salt);
    let (mut scanner, _start) = DeviceScanner::start(device, spec.pattern, NODE, spec.start, None);
    let passes = (spec.end - spec.start).as_secs() / ITER_SECS;
    let mut out = Vec::new();
    for pass in 0..passes {
        // Inject events whose time falls in gap `pass` (after the write of
        // pass value `pass`, before the check).
        let gap_lo = spec.start + SimDuration::from_secs(pass * ITER_SECS);
        let gap_hi = gap_lo + SimDuration::from_secs(ITER_SECS);
        for ev in events {
            if ev.time >= gap_lo && ev.time < gap_hi {
                for s in &ev.strikes {
                    match s.kind {
                        StrikeKind::Discharge { start_lane, span } => {
                            scanner.device_mut().inject_strike(s.addr, start_lane, span);
                        }
                        StrikeKind::ForcedFlip { xor } => {
                            scanner.device_mut().inject_flip(s.addr, xor);
                        }
                        StrikeKind::ForcedClear { mask } => {
                            let v = scanner.device_mut().read_word(s.addr);
                            scanner.device_mut().write_word(s.addr, v & !mask);
                        }
                        StrikeKind::ForcedSet { mask } => {
                            let v = scanner.device_mut().read_word(s.addr);
                            scanner.device_mut().write_word(s.addr, v | mask);
                        }
                    }
                }
            }
        }
        let detect_time = spec.start + SimDuration::from_secs((pass + 1) * ITER_SECS);
        let rep = scanner.run_iteration(detect_time, None);
        out.extend(rep.errors);
    }
    out
}

/// Run the event-driven model over the same session and events.
fn run_model(spec: &SessionSpec, events: &[TransientEvent]) -> Vec<ErrorRecord> {
    let mut log = NodeLog::new(NODE);
    model().render_session(spec, events, &[], &|_| None, &mut log);
    log.iter().filter_map(|r| r.as_error().copied()).collect()
}

/// Compare the corruption content (time, address, expected, actual).
fn assert_equivalent(spec: &SessionSpec, events: &[TransientEvent]) {
    let mut from_loop: Vec<(i64, u64, u32, u32)> = run_loop(spec, events)
        .iter()
        .map(|e| (e.time.as_secs(), e.vaddr, e.expected, e.actual))
        .collect();
    let mut from_model: Vec<(i64, u64, u32, u32)> = run_model(spec, events)
        .iter()
        .map(|e| (e.time.as_secs(), e.vaddr, e.expected, e.actual))
        .collect();
    from_loop.sort_unstable();
    from_model.sort_unstable();
    assert_eq!(from_loop, from_model);
}

fn event(t: i64, strikes: Vec<Strike>) -> TransientEvent {
    TransientEvent {
        time: SimTime::from_secs(t),
        node: NODE,
        strikes,
    }
}

fn discharge(addr: u64, lane: u32, span: u32) -> Strike {
    Strike {
        addr: WordAddr(addr),
        kind: StrikeKind::Discharge {
            start_lane: lane,
            span,
        },
    }
}

#[test]
fn single_discharge_matches() {
    for pattern in [Pattern::Alternating, Pattern::incrementing()] {
        let spec = session(pattern, 6);
        // One strike per gap, various lanes/spans/addresses.
        let events = vec![
            event(1_001, vec![discharge(100, 3, 1)]),
            event(1_005, vec![discharge(2_000, 9, 2)]),
            event(1_010, vec![discharge(40_000, 30, 3)]),
            event(1_014, vec![discharge(100, 15, 1)]),
        ];
        assert_equivalent(&spec, &events);
    }
}

#[test]
fn multi_word_event_matches() {
    let spec = session(Pattern::Alternating, 4);
    let events = vec![event(
        1_006,
        vec![
            discharge(10, 0, 1),
            discharge(5_000, 7, 1),
            discharge(60_000, 13, 2),
        ],
    )];
    assert_equivalent(&spec, &events);
}

#[test]
fn forced_strikes_match() {
    for pattern in [Pattern::Alternating, Pattern::incrementing()] {
        let spec = session(pattern, 5);
        let events = vec![
            event(
                1_001,
                vec![Strike {
                    addr: WordAddr(777),
                    kind: StrikeKind::ForcedFlip { xor: 0xE600_6300 },
                }],
            ),
            event(
                1_006,
                vec![Strike {
                    addr: WordAddr(888),
                    kind: StrikeKind::ForcedClear { mask: 0x0000_0F00 },
                }],
            ),
            event(
                1_010,
                vec![Strike {
                    addr: WordAddr(999),
                    kind: StrikeKind::ForcedSet { mask: 0x0000_0021 },
                }],
            ),
        ];
        assert_equivalent(&spec, &events);
    }
}

#[test]
fn event_after_final_pass_unobserved_in_both() {
    let spec = session(Pattern::Alternating, 3);
    // Time lands in the last gap, whose check would happen at/after end.
    let t = spec.end.as_secs() - 1;
    let events = vec![event(t, vec![discharge(42, 5, 1)])];
    let from_loop = run_loop(&spec, &events);
    let from_model = run_model(&spec, &events);
    assert!(from_loop.is_empty(), "loop: {from_loop:?}");
    assert!(from_model.is_empty(), "model: {from_model:?}");
}

#[test]
fn randomized_event_storm_matches() {
    // Property-style: many random discharge events across a longer
    // session, both pattern modes; loop and model must agree exactly.
    let mut rng = StreamRng::from_seed(2016);
    for pattern in [Pattern::Alternating, Pattern::incrementing()] {
        let passes = 12;
        let spec = session(pattern, passes);
        let mut events = Vec::new();
        for _ in 0..60 {
            let t = spec.start.as_secs() + rng.below(((passes - 1) * ITER_SECS) as u64) as i64;
            let n_strikes = 1 + rng.below(3);
            let strikes = (0..n_strikes)
                .map(|_| {
                    discharge(
                        rng.below(Geometry::TINY.words()),
                        rng.below(32) as u32,
                        1 + rng.below(4) as u32,
                    )
                })
                .collect();
            events.push(event(t, strikes));
        }
        events.sort_by_key(|e| e.time);
        // Deduplicate addresses hit twice in the same gap: the loop XORs
        // cumulative strikes on one word, the model treats each strike
        // against the freshly-written value — both are defensible, so keep
        // the comparison to the common single-hit-per-gap case.
        let mut seen: std::collections::HashSet<(i64, u64)> = std::collections::HashSet::new();
        for ev in &mut events {
            let gap = (ev.time.as_secs() - 1_000) / ITER_SECS;
            ev.strikes.retain(|s| seen.insert((gap, s.addr.0)));
        }
        events.retain(|e| !e.strikes.is_empty());
        assert_equivalent(&spec, &events);
    }
}
