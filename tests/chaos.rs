//! Chaos-injection harness: a campaign corpus on disk is deterministically
//! damaged (bit flips, truncations, duplicated/reordered/garbage lines,
//! dropped files) and the recovering ingestion path must degrade
//! gracefully — never panic, account for every line it saw, and still
//! recover a fault set close to the uncorrupted one.

use std::fs;
use std::path::{Path, PathBuf};

use uc_analysis::extract::{extract_recovered, ExtractConfig, RecoveredExtract};
use uc_faultlog::chaos::{corrupt_dir, ChaosConfig};
use uc_faultlog::files::write_cluster_log;
use uc_faultlog::ingest::read_cluster_log_recovering;
use uc_faultlog::store::ClusterLog;
use unprotected_core::{run_campaign, CampaignConfig};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uc-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Write a small campaign's logs (minus the flood node, whose run-length
/// compressed store expands to tens of millions of text lines) to `dir`.
fn write_corpus(dir: &Path) -> usize {
    let cfg = CampaignConfig::small(42, 6);
    let result = run_campaign(&cfg);
    let flood = result.flood_nodes(0.5);
    let logs: Vec<_> = result
        .completed()
        .filter(|o| !flood.contains(&o.node))
        .map(|o| o.log.clone())
        .collect();
    let n = logs.len();
    write_cluster_log(dir, &ClusterLog::new(logs)).unwrap();
    n
}

fn ingest_and_extract(dir: &Path) -> RecoveredExtract {
    let (cluster, stats) = read_cluster_log_recovering(dir).unwrap();
    assert!(stats.is_conserved(), "accounting broken: {stats:?}");
    extract_recovered(&cluster, stats, &ExtractConfig::default(), 0.5)
}

#[test]
fn one_percent_corruption_degrades_gracefully() {
    let dir = tempdir("light");
    write_corpus(&dir);

    let baseline = ingest_and_extract(&dir);
    assert!(baseline.faults.len() > 500, "baseline too small to compare");
    assert_eq!(baseline.stats.dropped(), 0, "clean corpus drops nothing");

    let report = corrupt_dir(&dir, &ChaosConfig::lines(7, 0.01)).unwrap();
    assert!(report.files_corrupted > 0);
    assert!(report.total_line_mutations() > 0);

    let damaged = ingest_and_extract(&dir);
    // The accounting is accurate: damage shows up in the drop counters,
    // and every line read is either kept or attributed to a category.
    assert!(damaged.stats.dropped() > 0, "{:?}", damaged.stats);
    assert!(damaged.stats.records_kept > 0);

    // Graceful degradation: 1% line corruption moves the recovered fault
    // count by at most 2%.
    let a = baseline.faults.len() as f64;
    let b = damaged.faults.len() as f64;
    let deviation = (a - b).abs() / a;
    assert!(
        deviation <= 0.02,
        "fault count deviated {:.2}% ({} -> {})",
        deviation * 100.0,
        baseline.faults.len(),
        damaged.faults.len()
    );

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn heavy_corruption_never_panics_and_still_accounts() {
    let dir = tempdir("heavy");
    let files = write_corpus(&dir);

    // 20% of lines mutated, 10% of files truncated, 5% dropped entirely.
    let cfg = ChaosConfig {
        seed: 99,
        line_corruption_rate: 0.20,
        truncate_file_rate: 0.10,
        drop_file_rate: 0.05,
    };
    let report = corrupt_dir(&dir, &cfg).unwrap();
    assert!(report.files_corrupted > 0);

    let (cluster, stats) = read_cluster_log_recovering(&dir).unwrap();
    assert!(stats.is_conserved(), "accounting broken: {stats:?}");
    assert!(stats.dropped() > 0);
    assert_eq!(
        cluster.node_logs().len() + report.files_dropped as usize,
        files,
        "every surviving file yields a log"
    );
    // Even at 20% corruption most records survive: damage is per-line.
    assert!(
        stats.records_kept as f64 > stats.lines_read as f64 * 0.5,
        "{:?}",
        stats
    );

    // The damaged corpus (bit flips, duplicated and reordered lines,
    // truncations) must flow through extraction too — recovery sorts
    // entries by *start* time only, so a duplicated or displaced RUN line
    // still expands past its successors and extraction sees backwards
    // time-steps, which it must treat as new faults rather than wrapping
    // or panicking.
    let recovered = extract_recovered(&cluster, stats, &ExtractConfig::default(), 0.5);
    assert!(!recovered.faults.is_empty());
    let mut sorted = recovered.faults.clone();
    sorted.sort_by_key(uc_analysis::extract::fault_sort_key);
    assert_eq!(sorted, recovered.faults, "extraction output is sorted");

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reordered_records_extract_identically_at_any_thread_count() {
    let dir = tempdir("reorder");
    write_corpus(&dir);

    // A heavy line-mutation dose includes Reorder swaps and Duplicate
    // lines (see `faultlog::chaos::LineMutation`); recovery's stable sort
    // is by entry *start* time, so displaced run-length entries still
    // overlap their successors and extraction sees non-monotonic
    // timestamps. The whole pipeline must stay panic-free and
    // byte-identical regardless of the worker count.
    let report = corrupt_dir(&dir, &ChaosConfig::lines(4242, 0.30)).unwrap();
    assert!(report.total_line_mutations() > 0);

    let one = uc_parallel::with_thread_limit(1, || ingest_and_extract(&dir));
    let four = uc_parallel::with_thread_limit(4, || ingest_and_extract(&dir));
    let eight = uc_parallel::with_thread_limit(8, || ingest_and_extract(&dir));
    assert!(!one.faults.is_empty());
    assert_eq!(one.stats, four.stats);
    assert_eq!(one.faults, four.faults);
    assert_eq!(one.stats, eight.stats);
    assert_eq!(one.faults, eight.faults);

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn chaos_is_deterministic_end_to_end() {
    let dir_a = tempdir("det-a");
    let dir_b = tempdir("det-b");
    write_corpus(&dir_a);
    write_corpus(&dir_b);

    let cfg = ChaosConfig::lines(1234, 0.05);
    let ra = corrupt_dir(&dir_a, &cfg).unwrap();
    let rb = corrupt_dir(&dir_b, &cfg).unwrap();
    assert_eq!(ra.line_mutations, rb.line_mutations);

    let a = ingest_and_extract(&dir_a);
    let b = ingest_and_extract(&dir_b);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.faults, b.faults);

    fs::remove_dir_all(&dir_a).unwrap();
    fs::remove_dir_all(&dir_b).unwrap();
}
