//! Crash matrix for the live streaming path (DESIGN.md §9): a live
//! database is driven through a deterministic schedule of ingest
//! batches, WAL flushes, and generation seals, and after EVERY flush
//! and seal boundary the whole directory is snapshotted byte-for-byte —
//! each snapshot IS a kill point, because a crash can only ever leave
//! the bytes that were durable at some boundary (plus a torn tail).
//! Every snapshot is restored into a fresh directory, optionally
//! damaged at the tail the way a real crash tears a page, fsck'd under
//! the conservation law, reopened, and the reopened database must
//! answer every selftest query exactly like a batch database built from
//! the records the WAL actually preserved — including byte-identical
//! generation files.
//!
//! Seed the damage schedule with `UC_CHAOS_SEED` (default 1); CI runs
//! several seeds.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use uc_cluster::NodeId;
use uc_faultdb::server::SELFTEST_QUERIES;
use uc_faultdb::{
    build_db, fsck_live_dir, gen_file_name, Engine, FaultDb, LiveDb, QueryOptions, WriteOptions,
};

fn chaos_seed() -> u64 {
    std::env::var("UC_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// xorshift64* — deterministic schedule jitter, seeded from the env.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uc-live-stream-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A node's full corpus: a session frame around a burst of single-bit
/// errors, shaped like the campaign's real text logs.
fn corpus(node: &str, salt: u64, records: usize) -> Vec<String> {
    let mut lines = Vec::with_capacity(records + 2);
    lines.push(format!("START t=0 node={node} alloc=3221225472 temp=30.0"));
    for k in 0..records {
        let vaddr = 0x1000 + 0x180 * (k as u64) + (salt << 24);
        lines.push(format!(
            "ERROR t={t} node={node} vaddr=0x{vaddr:08x} page=0x{page:06x} \
             expected=0xffffffff actual=0xfffffffe temp=33.0",
            t = 120 + 5400 * (k as i64),
            page = vaddr >> 12
        ));
    }
    lines.push(format!(
        "END t={t} node={node} temp=31.0",
        t = 5400 * records as i64 + 300
    ));
    lines
}

/// Byte-for-byte image of a directory tree, keyed by relative path.
fn snapshot_dir(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).unwrap().map(|e| e.unwrap()) {
            let path = entry.path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_str()
                    .unwrap()
                    .to_string();
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

fn restore_dir(snapshot: &BTreeMap<String, Vec<u8>>, dir: &Path) {
    for (rel, bytes) in snapshot {
        let path = dir.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).unwrap();
        }
        fs::write(&path, bytes).unwrap();
    }
}

/// The unsealed WAL segment a crash would tear: highest-index `.dlog.tmp`.
fn active_wal_tmp(dir: &Path) -> Option<PathBuf> {
    fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".dlog.tmp"))
        })
        .max()
}

/// Batch oracle over exactly `lines_by_node`: plain text node logs in a
/// fresh directory, through the standard `build-db` pipeline.
fn build_oracle(tag: &str, lines_by_node: &BTreeMap<String, Vec<String>>) -> Option<PathBuf> {
    if lines_by_node.values().all(|v| v.is_empty()) {
        return None;
    }
    let logdir = fresh_dir(&format!("{tag}-oracle-logs"));
    for (node, lines) in lines_by_node {
        if lines.is_empty() {
            continue;
        }
        let mut text = lines.join("\n");
        text.push('\n');
        fs::write(logdir.join(format!("node-{node}.log")), text).unwrap();
    }
    let out = std::env::temp_dir().join(format!(
        "uc-live-stream-{tag}-oracle-{}.ucfdb",
        std::process::id()
    ));
    let _ = fs::remove_file(&out);
    build_db(&logdir, &out, &WriteOptions::default()).unwrap();
    let _ = fs::remove_dir_all(&logdir);
    Some(out)
}

/// Every selftest query, answered single-threaded for a stable oracle.
fn answers(db: &Engine) -> Vec<Vec<String>> {
    uc_parallel::with_thread_limit(1, || {
        SELFTEST_QUERIES
            .iter()
            .map(|q| db.query(q, &QueryOptions::default()).unwrap().lines)
            .collect()
    })
}

#[test]
fn crash_matrix_at_every_flush_and_seal_boundary() {
    let seed = chaos_seed();
    let dir = fresh_dir("matrix");
    let (live, _) = LiveDb::open(&dir).unwrap();

    let names = ["01-01", "01-02", "02-01"];
    let nodes: Vec<NodeId> = names
        .iter()
        .map(|n| NodeId::from_name(n).unwrap())
        .collect();
    let corpora: Vec<Vec<String>> = names
        .iter()
        .enumerate()
        .map(|(i, n)| corpus(n, i as u64, 16))
        .collect();

    // What is *durable* (WAL-flushed) per node at each kill point:
    // the directory image plus the per-node flushed-line counts.
    type KillPoint = (BTreeMap<String, Vec<u8>>, Vec<usize>);
    let mut accepted = vec![0usize; names.len()];
    let mut flushed = vec![0usize; names.len()];
    let mut kill_points: Vec<KillPoint> = Vec::new();
    let mut rng = Rng::new(seed);

    while accepted.iter().zip(&corpora).any(|(&a, c)| a < c.len())
        || flushed != accepted
        || kill_points.is_empty()
    {
        match rng.below(10) {
            // Ingest a batch on one node (records are only durable at
            // the next flush — a kill before that legitimately loses
            // them, which the matrix verifies).
            0..=5 => {
                let i = rng.below(names.len() as u64) as usize;
                let n = (1 + rng.below(5)) as usize;
                for _ in 0..n {
                    if accepted[i] >= corpora[i].len() {
                        break;
                    }
                    let outcome = live
                        .ingest(nodes[i], accepted[i] as u64, &corpora[i][accepted[i]])
                        .unwrap();
                    assert_eq!(format!("{outcome:?}"), "Accepted");
                    accepted[i] += 1;
                }
            }
            6..=8 => {
                live.flush().unwrap();
                flushed.copy_from_slice(&accepted);
                kill_points.push((snapshot_dir(&dir), flushed.clone()));
            }
            _ => {
                live.seal().unwrap();
                flushed.copy_from_slice(&accepted);
                kill_points.push((snapshot_dir(&dir), flushed.clone()));
            }
        }
    }
    live.seal().unwrap();
    kill_points.push((snapshot_dir(&dir), flushed.clone()));
    drop(live);
    assert!(
        kill_points.len() >= 4,
        "schedule produced too few boundaries"
    );

    for (k, (snap, durable)) in kill_points.iter().enumerate() {
        let tag = format!("matrix-k{k}");
        let crashed = fresh_dir(&tag);
        restore_dir(snap, &crashed);

        // A real crash can also tear the page holding the WAL tail:
        // garbage appended past the last complete frame, or a clean
        // suffix sheared off. Neither may cost more than the tail.
        let torn = k % 3;
        if torn != 0 {
            if let Some(wal) = active_wal_tmp(&crashed) {
                let mut bytes = fs::read(&wal).unwrap();
                if torn == 1 {
                    bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
                } else {
                    bytes.truncate(bytes.len().saturating_sub(3));
                }
                fs::write(&wal, bytes).unwrap();
            }
        }

        // Operators may fsck before restarting — or not. Both must work.
        if k % 2 == 1 {
            let report = fsck_live_dir(&crashed).unwrap();
            assert!(report.is_conserved(), "k={k}: {}", report.render());
        }

        let (revived, open) = LiveDb::open(&crashed).unwrap();

        // Survivors per node must be a clean prefix of what was durably
        // flushed — never reordered, never invented, and a torn tail may
        // cost at most the final record.
        let mut survived: BTreeMap<String, Vec<String>> =
            names.iter().map(|n| (n.to_string(), Vec::new())).collect();
        for rec in &open.wal.records {
            let lines = survived.get_mut(&rec.node.to_string()).unwrap();
            if rec.seq == lines.len() as u64 {
                lines.push(rec.line.clone());
            }
        }
        let mut total_survived = 0usize;
        let mut total_durable = 0usize;
        for (i, name) in names.iter().enumerate() {
            let got = &survived[*name];
            let want = &corpora[i][..durable[i]];
            assert!(
                got.len() <= want.len() && got[..] == want[..got.len()],
                "k={k} {name}: survivors are not a prefix of the flushed stream"
            );
            total_survived += got.len();
            total_durable += durable[i];
        }
        let floor = if torn == 2 {
            total_durable.saturating_sub(1)
        } else {
            total_durable
        };
        assert!(
            total_survived >= floor,
            "k={k}: lost {} records to a 3-byte tear",
            total_durable - total_survived
        );

        // The revived database must be indistinguishable from a batch
        // build over exactly the surviving records.
        match build_oracle(&tag, &survived) {
            None => {
                let db = revived.handle().current();
                let count = db.query("count", &QueryOptions::default()).unwrap().lines;
                assert_eq!(count, vec!["0".to_string()], "k={k}");
            }
            Some(oracle_path) => {
                let status = revived.seal().unwrap();
                let gen_path = crashed.join(gen_file_name(status.generation));
                assert_eq!(
                    fs::read(&gen_path).unwrap(),
                    fs::read(&oracle_path).unwrap(),
                    "k={k}: generation file is not byte-identical to the batch build"
                );
                let live_db = revived.handle().current();
                let oracle: Engine =
                    std::sync::Arc::new(FaultDb::open(&oracle_path).unwrap()).into();
                assert_eq!(answers(&live_db), answers(&oracle), "k={k}");
                let _ = fs::remove_file(&oracle_path);
            }
        }
        drop(revived);
        let _ = fs::remove_dir_all(&crashed);
    }

    // The matrix must not be vacuous: the final kill point carries the
    // full corpus and extracts real faults.
    let full = kill_points.last().unwrap().1.iter().sum::<usize>();
    assert_eq!(full, corpora.iter().map(Vec::len).sum::<usize>());
    let _ = fs::remove_dir_all(&dir);
}

/// Kills *inside* the seal itself: the generation file mid-rename, the
/// catalog not yet rewritten. fsck must promote complete work, discard
/// torn work, and conserve every byte either way.
#[test]
fn seal_boundary_crash_states_recover() {
    let base = fresh_dir("sealpoint");
    let (live, _) = LiveDb::open(&base).unwrap();
    let names = ["03-01", "03-02"];
    for (i, name) in names.iter().enumerate() {
        let node = NodeId::from_name(name).unwrap();
        for (seq, line) in corpus(name, i as u64, 8).iter().enumerate() {
            live.ingest(node, seq as u64, line).unwrap();
        }
    }
    let status = live.seal().unwrap();
    drop(live);
    let image = snapshot_dir(&base);
    let gen_name = gen_file_name(status.generation);
    let gen_bytes = image[&gen_name].clone();
    let expected = {
        let (reopened, _) = LiveDb::open(&base).unwrap();
        answers(&reopened.handle().current())
    };

    // (a) torn generation tmp — the seal died mid-write.
    // (b) complete generation tmp — the seal died just before rename.
    // (c) renamed generation, stale catalog — the seal died before the
    //     catalog rewrite landed.
    for (case, fabricate) in [("torn-tmp", 0u8), ("complete-tmp", 1), ("stale-catalog", 2)] {
        let dir = fresh_dir(&format!("sealpoint-{case}"));
        restore_dir(&image, &dir);
        let next = gen_file_name(status.generation + 1);
        match fabricate {
            0 => fs::write(
                dir.join(format!("{next}.tmp")),
                &gen_bytes[..gen_bytes.len() / 2],
            )
            .unwrap(),
            1 => fs::write(dir.join(format!("{next}.tmp")), &gen_bytes).unwrap(),
            _ => fs::write(dir.join(&next), &gen_bytes).unwrap(),
        }

        let report = fsck_live_dir(&dir).unwrap();
        assert!(report.is_conserved(), "{case}: {}", report.render());
        assert!(
            !dir.join(format!("{next}.tmp")).exists(),
            "{case}: tmp left behind"
        );
        // fsck is idempotent: a second pass finds nothing to do.
        let again = fsck_live_dir(&dir).unwrap();
        assert!(
            again.is_conserved(),
            "{case} second pass: {}",
            again.render()
        );
        assert_eq!(
            (
                again.gens_promoted,
                again.gens_quarantined,
                again.catalog_rollbacks
            ),
            (0, 0, 0),
            "{case}: second fsck pass still found work"
        );

        let (revived, open) = LiveDb::open(&dir).unwrap();
        assert_eq!(open.replayed, 2 * (8 + 2), "{case}");
        assert_eq!(answers(&revived.handle().current()), expected, "{case}");
        drop(revived);
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&base);
}
