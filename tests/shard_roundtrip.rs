//! The sharded engine's differential oracle: every query over every
//! combination of encoding (v1 fixed / v2 packed), shard count, and
//! thread limit must answer **byte-identically** to the single-file v1
//! engine scanned single-threaded. This is the acceptance bar for the
//! root catalog: sharding, compression, and fan-out parallelism are
//! performance features, never observable ones.
//!
//! The `uc analyze --db` path rides on the same snapshot merge, so the
//! full report text is compared too.

use std::fs;
use std::path::PathBuf;

use uc_analysis::extract::fault_sort_key;
use uc_analysis::fault::Fault;
use uc_cluster::NodeId;
use uc_faultdb::{
    format, write_sharded, Engine, FaultDb, FileEncoding, QueryOptions, RootDb, Snapshot,
    WriteOptions,
};
use uc_parallel::with_thread_limit;
use uc_simclock::SimTime;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uc-shard-diff-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A campaign-shaped snapshot: nodes across both racks, clustered and
/// scattered times, temp present on some rows, several flip shapes.
fn snapshot(n: usize) -> Snapshot {
    let mut faults: Vec<Fault> = (0..n)
        .map(|i| {
            let burst = i % 17 == 0;
            Fault {
                node: NodeId(((i * 131) % 1080) as u32),
                time: SimTime::from_secs(if burst {
                    250_000 + (i as i64 % 7)
                } else {
                    (i as i64 * 613) % 864_000
                }),
                vaddr: 0x4000 + (i as u64 % 251) * 0x40,
                expected: 0xFFFF_FFFF,
                actual: match i % 6 {
                    0 => 0xFFFF_FFFE, // single bit
                    1 => 0xFFFF_FFFC, // double bit
                    2 => 0x0000_FFFF, // many bits
                    3 => 0x7FFF_FFFF, // high bit
                    4 => 0xFFFF_0FFF, // nibble
                    _ => 0xFFFF_FFF0, // low nibble
                },
                temp: (i % 3 == 0).then_some(28.0 + (i % 40) as f32 / 2.0),
                raw_logs: 1 + (i as u64 % 6),
            }
        })
        .collect();
    faults.sort_by_key(fault_sort_key);
    Snapshot {
        faults,
        flood_nodes: vec![NodeId(3), NodeId(77)],
        stats: Default::default(),
        node_logs: 12,
        raw_records: n as u64 * 4,
        raw_errors: n as u64 + 9,
        day_volume: Default::default(),
    }
}

const QUERIES: &[&str] = &[
    "count",
    "count where multibit",
    "count where bits=1",
    "count where rack=1",
    "count where rack=2 and multibit",
    "count where blade=40",
    "count where time>=100000 and time<500000",
    "count where raw>=4",
    "count where dir=1to0 or dir=mixed",
    "count where not (bits>=4)",
    "group class",
    "group rack",
    "group day where multibit",
    "group hour where time<200000",
    "top 5 node",
    "top 3 blade where bits>=2",
    "hist bits",
    "hist bits where rack=2",
    "list limit 25",
    "list limit 10 where bits>=8",
    "list where class=2 and rack=1",
];

/// The single-file v1 engine at one thread is the oracle everything
/// else must match byte-for-byte.
#[test]
fn every_engine_shape_answers_byte_identically() {
    let dir = fresh_dir("matrix");
    let snap = snapshot(3000);

    // Oracle: v1 single file, single-threaded scan.
    let v1_path = dir.join("oracle-v1.ucfdb");
    format::write_db(
        &snap,
        &v1_path,
        &WriteOptions {
            rows_per_block: 128,
            encoding: FileEncoding::V1,
        },
    )
    .unwrap();
    let oracle_db = FaultDb::open(&v1_path).unwrap();
    let opts = QueryOptions::default();
    let oracle: Vec<(Vec<String>, u64)> = with_thread_limit(1, || {
        QUERIES
            .iter()
            .map(|q| {
                let r = oracle_db.query(q, &opts).unwrap();
                (r.lines, r.matched)
            })
            .collect()
    });
    let oracle_report = oracle_db.snapshot().unwrap().report_text();

    // Matrix: encoding × shard count × thread limit.
    for encoding in [FileEncoding::V1, FileEncoding::V2] {
        let enc_tag = match encoding {
            FileEncoding::V1 => "v1",
            FileEncoding::V2 => "v2",
        };
        let wopts = WriteOptions {
            rows_per_block: 128,
            encoding,
        };

        // Single file in this encoding.
        let single = dir.join(format!("single-{enc_tag}.ucfdb"));
        format::write_db(&snap, &single, &wopts).unwrap();

        // Sharded roots at several window counts (racks multiply these).
        let mut engines: Vec<(String, Engine)> = vec![(
            format!("single/{enc_tag}"),
            Engine::open_auto(&single).unwrap(),
        )];
        for windows in [1usize, 3, 8] {
            let root = dir.join(format!("root-{enc_tag}-w{windows}"));
            let summary = write_sharded(&snap, &root, windows, &wopts).unwrap();
            assert!(summary.shards >= windows, "both racks are occupied");
            engines.push((
                format!("root/{enc_tag}/w{windows}"),
                Engine::open_auto(&root).unwrap(),
            ));
        }

        for (tag, engine) in &engines {
            for threads in [1usize, 2, 8] {
                let got: Vec<(Vec<String>, u64)> = with_thread_limit(threads, || {
                    QUERIES
                        .iter()
                        .map(|q| {
                            let r = engine.query(q, &opts).unwrap();
                            (r.lines, r.matched)
                        })
                        .collect()
                });
                assert_eq!(got, oracle, "{tag} at {threads} threads");
            }
            // The analyze path: byte-identical report text.
            assert_eq!(
                engine.snapshot().unwrap().report_text(),
                oracle_report,
                "{tag} snapshot"
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Shard pruning must never change an answer, only skip work: a window
/// predicate that prunes shards still counts exactly the oracle's rows.
#[test]
fn pruned_fanout_counts_match_unpruned() {
    let dir = fresh_dir("prune");
    let snap = snapshot(2000);
    let root = dir.join("root");
    write_sharded(
        &snap,
        &root,
        6,
        &WriteOptions {
            rows_per_block: 64,
            ..WriteOptions::default()
        },
    )
    .unwrap();
    let db = RootDb::open(&root).unwrap();
    let opts = QueryOptions::default();
    for q in [
        "count where time>=700000",
        "count where time<100000",
        "count where rack=1 and time>=400000",
    ] {
        let pruned = db.query(q, &opts).unwrap();
        assert!(
            pruned.shards_scanned < pruned.shards_total,
            "{q}: expected shard pruning ({}/{})",
            pruned.shards_scanned,
            pruned.shards_total
        );
        // Brute force over the raw faults.
        let want = snap
            .faults
            .iter()
            .filter(|f| uc_faultdb::parse_query(q).unwrap().pred.matches(f))
            .count() as u64;
        assert_eq!(pruned.matched, want, "{q}");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// `faults_all` over a root reassembles the exact global row order the
/// single file stores — the k-way merge leaves no permutation behind.
#[test]
fn root_faults_all_is_the_global_sort_order() {
    let dir = fresh_dir("order");
    let snap = snapshot(1500);
    let root = dir.join("root");
    write_sharded(&snap, &root, 5, &WriteOptions::default()).unwrap();
    let db = RootDb::open(&root).unwrap();
    assert_eq!(db.faults_all().unwrap(), snap.faults);
    let _ = fs::remove_dir_all(&dir);
}
