//! CLI contract tests: shell out to the real `uc` binary.
//!
//! Usage errors (no/unknown subcommand, bad flags) must print usage to
//! stderr and exit 2 — distinct from runtime failures (exit 1) so shell
//! scripts and CI can tell "called wrong" from "work failed". The
//! happy-path test drives the new database workflow end to end:
//! build-db → query → analyze parity between the text and `--db` paths.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn uc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_uc"))
        .args(args)
        .output()
        .expect("spawn uc")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn no_arguments_prints_usage_to_stderr_and_exits_2() {
    let out = uc(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"), "{}", stderr(&out));
    assert!(stdout(&out).is_empty());
}

#[test]
fn unknown_subcommand_exits_2() {
    let out = uc(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown subcommand"), "{err}");
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn unknown_flag_exits_2_and_names_the_flag() {
    let out = uc(&["analyze", "somedir", "--frob", "x"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("--frob"), "{err}");
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn garbage_numeric_flag_exits_2() {
    let out = uc(&["report", "--seed", "banana"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--seed"), "{}", stderr(&out));
}

#[test]
fn missing_required_positional_exits_2() {
    let out = uc(&["build-db", "only-one-arg"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("positional"), "{}", stderr(&out));
}

#[test]
fn version_prints_and_exits_0() {
    let out = uc(&["--version"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.starts_with("uc "), "{text}");
    assert!(text.trim().len() > 3);
}

#[test]
fn runtime_failure_is_exit_1_not_2() {
    // Well-formed invocation, nonexistent directory: the work fails.
    let out = uc(&["analyze", "/nonexistent/uc-cli-test"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(!stderr(&out).contains("usage:"), "{}", stderr(&out));
}

/// A tiny on-disk log directory: 2 nodes, a START/END pair and a handful
/// of errors each — enough for extraction to produce faults.
fn write_tiny_logs(dir: &PathBuf) {
    fs::create_dir_all(dir).unwrap();
    for name in ["01-01", "01-02"] {
        let mut text = format!("START t=0 node={name} alloc=3221225472 temp=30.0\n");
        for k in 0i64..12 {
            let vaddr = 0x400 + 0x100 * k as u64;
            text.push_str(&format!(
                "ERROR t={t} node={name} vaddr=0x{vaddr:08x} page=0x{page:06x} \
                 expected=0xffffffff actual=0xfffffffe temp=33.0\n",
                t = 60 + 600 * k,
                page = vaddr >> 12
            ));
        }
        text.push_str(&format!("END t=90000 node={name} temp=31.0\n"));
        fs::write(dir.join(format!("node-{name}.log")), text).unwrap();
    }
}

#[test]
fn build_db_query_and_analyze_parity_end_to_end() {
    let base = std::env::temp_dir().join(format!("uc-cli-e2e-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    let logs = base.join("logs");
    write_tiny_logs(&logs);
    let db = base.join("faults.fdb");
    let logs_s = logs.to_str().unwrap();
    let db_s = db.to_str().unwrap();

    let built = uc(&["build-db", logs_s, db_s]);
    assert_eq!(built.status.code(), Some(0), "{}", stderr(&built));
    assert!(stdout(&built).contains("faults"), "{}", stdout(&built));
    assert!(db.is_file());

    // count == the number of ERROR lines (each is its own fault: distinct
    // vaddrs, far apart in time).
    let count = uc(&["query", db_s, "count"]);
    assert_eq!(count.status.code(), Some(0), "{}", stderr(&count));
    assert_eq!(stdout(&count).trim(), "24");

    // A structured query through the shell: predicate + aggregation.
    let grouped = uc(&["query", db_s, "group", "node", "where", "time>=0"]);
    assert_eq!(grouped.status.code(), Some(0), "{}", stderr(&grouped));
    assert_eq!(stdout(&grouped).lines().count(), 2, "{}", stdout(&grouped));

    // A malformed query is a runtime failure (exit 1), not usage (2).
    let bad = uc(&["query", db_s, "frobnicate", "everything"]);
    assert_eq!(bad.status.code(), Some(1));

    // The acceptance bar: `analyze --db` stdout is byte-identical to
    // `analyze` over the raw text logs, at different thread counts too.
    let text_report = uc(&["analyze", logs_s]);
    assert_eq!(
        text_report.status.code(),
        Some(0),
        "{}",
        stderr(&text_report)
    );
    let db_report = uc(&["analyze", "--db", db_s]);
    assert_eq!(db_report.status.code(), Some(0), "{}", stderr(&db_report));
    assert_eq!(stdout(&text_report), stdout(&db_report));
    let db_report_1t = uc(&["analyze", "--db", db_s, "--threads", "1"]);
    assert_eq!(stdout(&text_report), stdout(&db_report_1t));

    let _ = fs::remove_dir_all(&base);
}

#[test]
fn ingest_addr_without_ingest_is_a_usage_error() {
    let out = uc(&["serve", "somedir", "--ingest-addr", "127.0.0.1:9"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--ingest-addr"), "{}", stderr(&out));
}

#[test]
fn ingest_selftest_passes_through_the_binary() {
    let base = std::env::temp_dir().join(format!("uc-cli-ingest-self-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    fs::create_dir_all(&base).unwrap();

    let out = uc(&[
        "serve",
        base.to_str().unwrap(),
        "--ingest",
        "x",
        "--selftest",
        "3",
        "--chaos-seed",
        "11",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("0 mismatches"), "{text}");

    let _ = fs::remove_dir_all(&base);
}

/// The full operational loop through the shell: start a live server,
/// `uc stream` real node logs into it with a final seal, query the
/// records back over TCP, stop the server with SIGTERM (the graceful
/// path, exit 0), and fsck the directory it leaves behind.
#[cfg(unix)]
#[test]
fn stream_serve_ingest_sigterm_and_fsck_end_to_end() {
    use std::io::BufRead;

    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGTERM: i32 = 15;

    let base = std::env::temp_dir().join(format!("uc-cli-ingest-e2e-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    let logs = base.join("logs");
    write_tiny_logs(&logs);
    let live = base.join("live");

    // If an assertion below fails, the server must die with the test —
    // a leaked child keeps the harness pipes open forever.
    struct KillOnDrop(std::process::Child);
    impl Drop for KillOnDrop {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }

    // Port 0 on both endpoints: the server prints the bound addresses.
    let child = Command::new(env!("CARGO_BIN_EXE_uc"))
        .args([
            "serve",
            live.to_str().unwrap(),
            "--ingest",
            "x",
            "--ingest-addr",
            "127.0.0.1:0",
            "--addr",
            "127.0.0.1:0",
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn uc serve --ingest");
    let mut child = KillOnDrop(child);
    let mut reader = std::io::BufReader::new(child.0.stderr.take().unwrap());
    let mut banner = String::new();
    let (ingest_addr, query_addr) = loop {
        let mut line = String::new();
        assert_ne!(
            reader.read_line(&mut line).unwrap(),
            0,
            "server died: {banner}"
        );
        banner.push_str(&line);
        if let Some(rest) = line.strip_prefix("ingest on ") {
            let (i, rest) = rest.split_once(", queries on ").unwrap();
            break (
                i.to_string(),
                rest.split(';').next().unwrap().trim().to_string(),
            );
        }
    };

    let streamed = uc(&[
        "stream",
        &ingest_addr,
        logs.to_str().unwrap(),
        "--seal",
        "x",
    ]);
    assert_eq!(streamed.status.code(), Some(0), "{}", stderr(&streamed));
    assert!(
        stdout(&streamed).contains("28 records acked"),
        "{}",
        stdout(&streamed)
    );

    // The sealed generation answers over the query endpoint.
    let mut client =
        uc_faultdb::Client::connect(query_addr.parse().unwrap()).expect("connect query endpoint");
    match client.request("count").expect("count over live endpoint") {
        uc_faultdb::Response::Ok(lines) => assert_eq!(lines, vec!["24".to_string()]),
        other => panic!("unexpected response: {other:?}"),
    }
    drop(client);

    // SIGTERM drains and exits 0 — the graceful path, not a kill.
    assert_eq!(unsafe { kill(child.0.id() as i32, SIGTERM) }, 0);
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut reader, &mut rest).unwrap();
    let status = child.0.wait().unwrap();
    assert_eq!(status.code(), Some(0), "{banner}{rest}");
    assert!(rest.contains("signal received"), "{rest}");

    // What the server leaves behind is a conserved, healthy live dir.
    let fsck = uc(&["fsck", live.to_str().unwrap()]);
    assert_eq!(fsck.status.code(), Some(0), "{}", stderr(&fsck));
    assert!(
        stderr(&fsck).contains("conserved=true"),
        "{}",
        stderr(&fsck)
    );

    let _ = fs::remove_dir_all(&base);
}

/// Every numeric flag follows one contract: garbage AND overflow are
/// usage errors (stderr + exit 2), never a silent wrap into a
/// valid-looking value. `--max-attempts 4294967301` used to truncate
/// to 5 via an `as u32` cast; these pin the normalized behavior.
#[test]
fn numeric_flag_overflow_and_garbage_both_exit_2() {
    // u32 flag: one past u32::MAX must not wrap (4294967296 -> 0, +5 -> 5).
    let wrap = uc(&[
        "stream",
        "127.0.0.1:1",
        "somedir",
        "--max-attempts",
        "4294967301",
    ]);
    assert_eq!(wrap.status.code(), Some(2), "{}", stderr(&wrap));
    assert!(
        stderr(&wrap).contains("--max-attempts"),
        "{}",
        stderr(&wrap)
    );
    let garbage = uc(&["stream", "127.0.0.1:1", "somedir", "--max-attempts", "many"]);
    assert_eq!(garbage.status.code(), Some(2));

    // u64 flag: one past u64::MAX overflows the parse itself.
    let big = uc(&["report", "--seed", "18446744073709551616"]);
    assert_eq!(big.status.code(), Some(2));
    assert!(stderr(&big).contains("--seed"), "{}", stderr(&big));

    // Derived overflow: the MB -> bytes multiply must be checked.
    let mb = uc(&["scan", "--mb", "99999999999999"]);
    assert_eq!(mb.status.code(), Some(2));
    assert!(stderr(&mb).contains("--mb"), "{}", stderr(&mb));

    // Range check instead of silent clamp.
    let rpb = uc(&["build-db", "a", "b", "--rows-per-block", "2000000"]);
    assert_eq!(rpb.status.code(), Some(2));
    assert!(
        stderr(&rpb).contains("--rows-per-block"),
        "{}",
        stderr(&rpb)
    );

    // --threads: zero, garbage, and overflow all land on the same exit.
    for bad in ["0", "x", "18446744073709551616"] {
        let out = uc(&["report", "--threads", bad]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "--threads {bad}: {}",
            stderr(&out)
        );
        assert!(stderr(&out).contains("--threads"), "{}", stderr(&out));
    }
}

#[test]
fn campaign_without_out_or_db_exits_2() {
    let out = uc(&["campaign"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("--out") && err.contains("--db"), "{err}");
}

#[test]
fn campaign_db_only_rejects_text_layout_flags() {
    let out = uc(&["campaign", "--db", "x.ucfdb", "--compact", "x"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--out"), "{}", stderr(&out));
}

/// A crash inside the db sealer's write-then-rename window leaves only a
/// `*.ucfdb.tmp`; `uc fsck` must quarantine it into `.lost+found`.
#[test]
fn fsck_quarantines_torn_db_seal_tmps() {
    let base = std::env::temp_dir().join(format!("uc-cli-dbtmp-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    fs::create_dir_all(&base).unwrap();
    fs::write(base.join("direct.ucfdb.tmp"), b"half-written seal").unwrap();
    fs::write(base.join("sealed.ucfdb"), b"not touched").unwrap();

    let out = uc(&["fsck", base.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("quarantined torn db seal direct.ucfdb.tmp"),
        "{}",
        stderr(&out)
    );
    assert!(!base.join("direct.ucfdb.tmp").exists());
    assert!(base.join(".lost+found").join("direct.ucfdb.tmp").is_file());
    assert!(base.join("sealed.ucfdb").is_file());

    let _ = fs::remove_dir_all(&base);
}

/// `uc help` (and `--help`) print the full usage table to stdout and
/// exit 0 — and the table must list every subcommand, because it is
/// generated from the same table `main` dispatches on.
#[test]
fn help_lists_every_subcommand_and_exits_0() {
    for invocation in [&["help"][..], &["--help"][..]] {
        let out = uc(invocation);
        assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
        let text = stdout(&out);
        for cmd in [
            "campaign", "fsck", "analyze", "build-db", "query", "serve", "stream", "scrub",
            "promote", "policy", "scan", "report",
        ] {
            assert!(
                text.contains(&format!("uc {cmd}")),
                "help missing {cmd}: {text}"
            );
        }
        assert!(stderr(&out).is_empty(), "{}", stderr(&out));
    }
}

#[test]
fn policy_usage_errors_exit_2() {
    // No database path and no --selftest.
    let out = uc(&["policy"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"), "{}", stderr(&out));

    // Unknown policy name.
    let out = uc(&["policy", "some.fdb", "--policy", "ouija"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--policy"), "{}", stderr(&out));

    // Garbage numerics follow the strict-flag contract.
    for (flag, value) in [
        ("--seed", "banana"),
        ("--train-days", "x"),
        ("--threshold", "0"),
    ] {
        let out = uc(&["policy", "some.fdb", flag, value]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{flag} {value}: {}",
            stderr(&out)
        );
        assert!(stderr(&out).contains(flag), "{}", stderr(&out));
    }

    // Unknown flag.
    let out = uc(&["policy", "some.fdb", "--frob", "x"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--frob"), "{}", stderr(&out));

    // --selftest and a positional path are contradictory.
    let out = uc(&["policy", "some.fdb", "--selftest", "x"]);
    assert_eq!(out.status.code(), Some(2));
}

/// Multi-day logs for the policy replay: one node faulting daily on the
/// same page (retire bait), one quiet node.
fn write_multiday_logs(dir: &PathBuf) {
    fs::create_dir_all(dir).unwrap();
    let mut text = String::from("START t=0 node=01-01 alloc=3221225472 temp=30.0\n");
    for d in 1i64..12 {
        text.push_str(&format!(
            "ERROR t={t} node=01-01 vaddr=0x00005008 page=0x000005 \
             expected=0xffffffff actual=0xfffffffe temp=41.0\n",
            t = d * 86_400 + 300
        ));
    }
    text.push_str("END t=1100000 node=01-01 temp=31.0\n");
    fs::write(dir.join("node-01-01.log"), text).unwrap();

    // Matching volume on a second node keeps both under the flood
    // filter's 50% share so neither gets excluded from the snapshot.
    let mut text = String::from("START t=0 node=01-02 alloc=3221225472 temp=30.0\n");
    for d in 1i64..12 {
        let vaddr = 0x41_000 + 0x2000 * d as u64;
        text.push_str(&format!(
            "ERROR t={t} node=01-02 vaddr=0x{vaddr:08x} page=0x{page:06x} \
             expected=0xffffffff actual=0x7fffffff temp=32.0\n",
            t = d * 86_400 + 900,
            page = vaddr >> 12
        ));
    }
    text.push_str("END t=1100000 node=01-02 temp=31.0\n");
    fs::write(dir.join("node-01-02.log"), text).unwrap();
}

#[test]
fn policy_replay_end_to_end_through_the_binary() {
    let base = std::env::temp_dir().join(format!("uc-cli-policy-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    let logs = base.join("logs");
    write_multiday_logs(&logs);
    let db = base.join("faults.fdb");
    let built = uc(&["build-db", logs.to_str().unwrap(), db.to_str().unwrap()]);
    assert_eq!(built.status.code(), Some(0), "{}", stderr(&built));
    let db_s = db.to_str().unwrap();

    // Full comparison: table lists every policy, reruns byte-identically,
    // and the CSV export matches across runs too.
    let csv1 = base.join("run1.csv");
    let csv2 = base.join("run2.csv");
    let run1 = uc(&[
        "policy",
        db_s,
        "--seed",
        "9",
        "--csv",
        csv1.to_str().unwrap(),
    ]);
    assert_eq!(run1.status.code(), Some(0), "{}", stderr(&run1));
    let table = stdout(&run1);
    for name in [
        "never",
        "always-checkpoint",
        "threshold",
        "bandit",
        "oracle",
    ] {
        assert!(table.contains(name), "table missing {name}: {table}");
    }
    let run2 = uc(&[
        "policy",
        db_s,
        "--seed",
        "9",
        "--csv",
        csv2.to_str().unwrap(),
    ]);
    assert_eq!(stdout(&run1), stdout(&run2));
    assert_eq!(
        fs::read_to_string(&csv1).unwrap(),
        fs::read_to_string(&csv2).unwrap()
    );

    // Thread count must not change a byte either.
    let run_1t = uc(&["policy", db_s, "--seed", "9", "--threads", "1"]);
    assert_eq!(stdout(&run1), stdout(&run_1t));

    // A single policy still gets the oracle appended for regret.
    let single = uc(&["policy", db_s, "--policy", "bandit"]);
    assert_eq!(single.status.code(), Some(0), "{}", stderr(&single));
    assert!(stdout(&single).contains("bandit"), "{}", stdout(&single));
    assert!(stdout(&single).contains("oracle"), "{}", stdout(&single));

    // A training window that swallows the whole stream is a runtime
    // failure (exit 1), not a usage error.
    let bad = uc(&["policy", db_s, "--train-days", "99999"]);
    assert_eq!(bad.status.code(), Some(1), "{}", stderr(&bad));
    assert!(stderr(&bad).contains("--train-days"), "{}", stderr(&bad));

    // Nonexistent database: runtime failure.
    let missing = uc(&["policy", base.join("nope.fdb").to_str().unwrap()]);
    assert_eq!(missing.status.code(), Some(1));

    let _ = fs::remove_dir_all(&base);
}

#[test]
fn policy_on_faultless_db_says_so_and_exits_0() {
    let base = std::env::temp_dir().join(format!("uc-cli-policy-empty-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    let logs = base.join("logs");
    fs::create_dir_all(&logs).unwrap();
    // A healthy node that never faulted: the db seals with zero rows.
    fs::write(
        logs.join("node-01-01.log"),
        "START t=0 node=01-01 alloc=3221225472 temp=30.0\nEND t=90000 node=01-01 temp=31.0\n",
    )
    .unwrap();
    let db = base.join("faults.fdb");
    let built = uc(&["build-db", logs.to_str().unwrap(), db.to_str().unwrap()]);
    assert_eq!(built.status.code(), Some(0), "{}", stderr(&built));

    let out = uc(&["policy", db.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("nothing to replay"),
        "{}",
        stdout(&out)
    );

    let _ = fs::remove_dir_all(&base);
}

#[test]
fn serve_selftest_passes_through_the_binary() {
    let base = std::env::temp_dir().join(format!("uc-cli-serve-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    let logs = base.join("logs");
    write_tiny_logs(&logs);
    let db = base.join("faults.fdb");
    let built = uc(&["build-db", logs.to_str().unwrap(), db.to_str().unwrap()]);
    assert_eq!(built.status.code(), Some(0), "{}", stderr(&built));

    let out = uc(&["serve", db.to_str().unwrap(), "--selftest", "4"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("0 mismatches"), "{text}");

    let _ = fs::remove_dir_all(&base);
}
