//! Property suite for the v2 compressed encodings and the branch-free
//! scan kernels, all through the public API:
//!
//! 1. a v2 (packed/delta) file decodes byte-identically to a v1 file of
//!    the same snapshot — the encoding is invisible to every reader;
//! 2. every query kernel agrees with a brute-force row-filter oracle on
//!    arbitrary predicate expressions, over both encodings;
//! 3. a single bit flip inside a v2 block payload surfaces as a typed
//!    `BlockCorrupt`, never as different rows.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use uc_analysis::extract::fault_sort_key;
use uc_analysis::fault::Fault;
use uc_cluster::NodeId;
use uc_faultdb::format::write_db;
use uc_faultdb::{
    parse_query, DbError, FaultDb, FileEncoding, QueryOptions, Snapshot, WriteOptions,
};
use uc_simclock::SimTime;

fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uc-v2-props-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

prop_compose! {
    fn fault_strategy()(
        node in 0u32..1080,
        t in 0i64..1_000_000_000,
        vaddr in 0u64..(1u64 << 40),
        expected in any::<u32>(),
        actual in any::<u32>(),
        temp in proptest::option::of(-50.0f32..120.0),
        raw_logs in 1u64..50,
    ) -> Fault {
        // A recorded fault always has expected != actual.
        let actual = if actual == expected { actual ^ 1 } else { actual };
        Fault {
            node: NodeId(node),
            time: SimTime::from_secs(t),
            vaddr,
            expected,
            actual,
            temp,
            raw_logs,
        }
    }
}

fn snapshot_of(mut faults: Vec<Fault>) -> Snapshot {
    faults.sort_by_key(fault_sort_key);
    let n = faults.len() as u64;
    Snapshot {
        faults,
        flood_nodes: vec![],
        stats: Default::default(),
        node_logs: 3,
        raw_records: n * 2,
        raw_errors: n,
        day_volume: Default::default(),
    }
}

/// One comparison atom the grammar accepts, with a value in (or near)
/// the generated data's range so predicates are rarely vacuous.
fn leaf() -> BoxedStrategy<String> {
    prop_oneof![
        Just("all".to_string()),
        Just("multibit".to_string()),
        (1u32..=72).prop_map(|b| format!("blade={b}")),
        (1u32..=2).prop_map(|r| format!("rack={r}")),
        (0u32..=33).prop_map(|b| format!("bits={b}")),
        (0u32..=33).prop_map(|b| format!("bits>={b}")),
        (0u32..=33).prop_map(|b| format!("bits<={b}")),
        (1u64..6).prop_map(|r| format!("raw>={r}")),
        (0i64..1_000_000_000).prop_map(|t| format!("time>={t}")),
        (0i64..1_000_000_000).prop_map(|t| format!("time<{t}")),
        Just("class=1".to_string()),
        Just("class=2".to_string()),
        Just("class=6+".to_string()),
        Just("dir=1to0".to_string()),
        Just("dir=0to1".to_string()),
        Just("dir=mixed".to_string()),
    ]
    .boxed()
}

/// Arbitrary boolean expression over the leaves: and/or/not/parens,
/// built by explicit recursion on a depth bound.
fn pred_expr(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        return leaf();
    }
    prop_oneof![
        leaf(),
        (pred_expr(depth - 1), pred_expr(depth - 1)).prop_map(|(a, b)| format!("( {a} and {b} )")),
        (pred_expr(depth - 1), pred_expr(depth - 1)).prop_map(|(a, b)| format!("( {a} or {b} )")),
        pred_expr(depth - 1).prop_map(|a| format!("not ( {a} )")),
    ]
    .boxed()
}

fn action() -> BoxedStrategy<String> {
    prop_oneof![
        Just("count".to_string()),
        Just("list limit 20".to_string()),
        Just("group class".to_string()),
        Just("group rack".to_string()),
        Just("top 4 node".to_string()),
        Just("hist bits".to_string()),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// v1 and v2 files of the same snapshot are indistinguishable to
    /// every reader: same rows back, same snapshot.
    #[test]
    fn v2_decodes_byte_identically_to_v1(
        faults in proptest::collection::vec(fault_strategy(), 0..300),
        rows_per_block in 1usize..96,
    ) {
        let dir = fresh_dir();
        let snap = snapshot_of(faults);
        let v1 = dir.join("ident-v1.ucfdb");
        let v2 = dir.join("ident-v2.ucfdb");
        write_db(&snap, &v1, &WriteOptions { rows_per_block, encoding: FileEncoding::V1 }).unwrap();
        write_db(&snap, &v2, &WriteOptions { rows_per_block, encoding: FileEncoding::V2 }).unwrap();
        let db1 = FaultDb::open(&v1).unwrap();
        let db2 = FaultDb::open(&v2).unwrap();
        prop_assert_eq!(db1.faults_all().unwrap(), db2.faults_all().unwrap());
        prop_assert_eq!(db1.snapshot().unwrap(), db2.snapshot().unwrap());
        let _ = fs::remove_file(&v1);
        let _ = fs::remove_file(&v2);
    }

    /// Every kernel, over both encodings, agrees with the brute-force
    /// row filter on arbitrary predicate expressions.
    #[test]
    fn kernels_agree_with_brute_force_on_arbitrary_predicates(
        faults in proptest::collection::vec(fault_strategy(), 0..250),
        pred in pred_expr(3),
        act in action(),
    ) {
        let dir = fresh_dir();
        let snap = snapshot_of(faults);
        let text = format!("{act} where {pred}");
        let q = parse_query(&text).unwrap();
        let want_matched = snap.faults.iter().filter(|f| q.pred.matches(f)).count() as u64;

        let opts = QueryOptions::default();
        let mut answers = Vec::new();
        for (tag, encoding) in [("v1", FileEncoding::V1), ("v2", FileEncoding::V2)] {
            let path = dir.join(format!("kern-{tag}.ucfdb"));
            write_db(&snap, &path, &WriteOptions { rows_per_block: 32, encoding }).unwrap();
            let db = FaultDb::open(&path).unwrap();
            let r = db.query(&text, &opts).unwrap();
            prop_assert_eq!(r.matched, want_matched, "{} {}", tag, text);
            answers.push(r.lines);
            let _ = fs::remove_file(&path);
        }
        // Both encodings render the identical bytes, not just counts.
        prop_assert_eq!(&answers[0], &answers[1], "{}", text);
    }

    /// Any single bit flip inside a v2 block payload is a typed
    /// `BlockCorrupt` from the scan path — never different rows.
    #[test]
    fn v2_block_bit_flip_is_typed_damage(
        faults in proptest::collection::vec(fault_strategy(), 1..200),
        seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let dir = fresh_dir();
        let snap = snapshot_of(faults);
        let path = dir.join(format!("flip-{seed}-{bit}.ucfdb"));
        write_db(&snap, &path, &WriteOptions { rows_per_block: 16, encoding: FileEncoding::V2 }).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // The block region sits between the magic and the footer; the
        // trailer's first 8 bytes locate the footer.
        let trailer_at = bytes.len() - 16;
        let footer_off =
            u64::from_le_bytes(bytes[trailer_at..trailer_at + 8].try_into().unwrap()) as usize;
        let magic_len = 7;
        prop_assume!(footer_off > magic_len);
        let offset = magic_len + (seed as usize) % (footer_off - magic_len);
        bytes[offset] ^= 1 << bit;
        fs::write(&path, &bytes).unwrap();

        // The footer is intact, so open succeeds; decoding the damaged
        // block must name it.
        let db = FaultDb::open(&path).unwrap();
        match db.faults_all() {
            Err(DbError::BlockCorrupt { .. }) => {}
            Err(other) => prop_assert!(false, "wrong error kind: {other:?}"),
            Ok(rows) => prop_assert!(
                false,
                "flip at byte {} bit {} went undetected ({} rows)",
                offset, bit, rows.len()
            ),
        }
        let _ = fs::remove_file(&path);
    }
}
