//! Shape assertions against the paper's findings, on a mid-size slice of
//! the machine (16 blades — all special nodes present, full 13-month
//! window). The absolute numbers scale with fleet size; the *shapes* are
//! what the reproduction must preserve (DESIGN.md §3).

use std::sync::OnceLock;

use unprotected_core::{run_campaign, CampaignConfig, CampaignResult, Report};

fn campaign() -> &'static (CampaignResult, Report) {
    static CELL: OnceLock<(CampaignResult, Report)> = OnceLock::new();
    CELL.get_or_init(|| {
        let result = run_campaign(&CampaignConfig::small(42, 16));
        let report = Report::build(&result);
        (result, report)
    })
}

#[test]
fn flood_node_dominates_raw_logs_like_the_paper() {
    // Paper: "over 98% of the observed failures came from the same node".
    let (_, report) = campaign();
    assert_eq!(report.headline.flood_nodes.len(), 1);
    assert!(
        report.headline.flood_log_share > 0.98,
        "flood share {}",
        report.headline.flood_log_share
    );
}

#[test]
fn errors_concentrate_in_under_one_percent_of_nodes() {
    // Paper: ">99.9% of errors occurring in less than 1% of the nodes".
    let (_, report) = campaign();
    assert!(
        report.headline.top3_concentration > 0.99,
        "top-3 concentration {}",
        report.headline.top3_concentration
    );
}

#[test]
fn most_nodes_show_no_fault_at_all() {
    // Paper Fig. 3: "most of the nodes did not show any failure".
    let (result, report) = campaign();
    let faulty = report.fig3_faults.nonzero_cells();
    assert!(
        faulty * 2 < result.completed().count(),
        "{faulty} faulty of {}",
        result.completed().count()
    );
}

#[test]
fn doubles_dominate_multibit_and_silent_tail_exists() {
    // Paper Table I: 76 of 85 multi-bit errors are doubles; 9 exceed the
    // SECDED detection guarantee.
    let (_, report) = campaign();
    let m = &report.multibit;
    assert!(m.multi_bit_faults > 20);
    assert!(
        m.double_bit_faults as f64 > m.multi_bit_faults as f64 * 0.75,
        "doubles {}/{}",
        m.double_bit_faults,
        m.multi_bit_faults
    );
    assert!(m.over_two_bit_faults >= 7, "the placed SDCs at minimum");
}

#[test]
fn multibit_mostly_non_adjacent_with_distance_shape() {
    // Paper: majority non-adjacent, mean in-word distance ~3, max 11.
    let (_, report) = campaign();
    let m = &report.multibit;
    assert!(m.non_adjacent_faults * 2 > m.multi_bit_faults);
    assert!(
        (2.0..=5.5).contains(&m.mean_bit_distance),
        "mean distance {}",
        m.mean_bit_distance
    );
    assert_eq!(m.max_bit_distance, 11, "the 11-bit maximum gap");
}

#[test]
fn ninety_percent_of_flips_are_one_to_zero() {
    let (_, report) = campaign();
    let frac = report.flips.one_to_zero_fraction();
    assert!((0.82..=0.97).contains(&frac), "1->0 fraction {frac}");
}

#[test]
fn simultaneous_corruption_is_pervasive() {
    // Paper: >26k corruptions in simultaneous groups, >99.9% of them pure
    // single-bit groups; groups up to 36 bits.
    let (_, report) = campaign();
    let c = &report.coincidence;
    assert!(c.faults_in_groups > 1_000, "{}", c.faults_in_groups);
    assert!(c.multi_single_groups > 500);
    assert!(
        c.max_group_bits >= 12,
        "large groups exist: {}",
        c.max_group_bits
    );
    // Most multi-bit faults are accompanied by simultaneous singles.
    assert!(c.double_with_single > 0);
}

#[test]
fn single_bit_rate_flat_across_the_day() {
    // Paper Fig. 5: no particular hour concentrates single-bit errors.
    let (_, report) = campaign();
    let series = report
        .hourly
        .class_series(uc_analysis::fault::BitClass::One);
    let max = *series.iter().max().unwrap() as f64;
    let min = *series.iter().min().unwrap() as f64;
    assert!(min > 0.0, "every hour sees errors");
    assert!(max / min < 6.0, "roughly flat profile: {max}/{min}");
}

#[test]
fn multibit_day_night_ratio_above_one() {
    // Paper Fig. 6: daytime multi-bit count about double the night count.
    // At the paper's sample size (~85 events) the ratio is noisy; assert
    // the direction and magnitude band rather than a point value.
    let (_, report) = campaign();
    let (day, night) = report.hourly.multibit_day_night();
    assert!(day > night, "day {day} vs night {night}");
    let ratio = day as f64 / night.max(1) as f64;
    assert!((1.1..=4.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn temperatures_nominal_and_uncorrelated() {
    // Paper Figs. 7-8: most faults at 30-40 C; multi-bit faults all at
    // nominal temperature; and some early faults lack telemetry.
    let (_, report) = campaign();
    let t = &report.temperature;
    assert!(t.fraction_in_band(30.0, 40.0) > 0.6);
    assert!(t.censored > 0, "pre-April faults have no temperature");
    assert_eq!(t.count_above(60.0, true), 0, "no hot multi-bit faults");
}

#[test]
fn scanning_volume_does_not_drive_errors() {
    // Paper Section III-G: |r| small (they report -0.18).
    let (_, report) = campaign();
    let p = report.scan_error_pearson;
    assert!(p.r.abs() < 0.35, "r {}", p.r);
}

#[test]
fn vacation_months_scan_more() {
    // Paper Fig. 9: August/September/December peaks.
    let (_, report) = campaign();
    let months = report.daily.monthly_tb_hours();
    let total_of = |month: u8| -> f64 {
        months
            .iter()
            .filter(|(_, m, _)| *m == month)
            .map(|(_, _, tb)| tb)
            .sum()
    };
    assert!(total_of(8) > total_of(5) * 1.3, "August beats May");
    assert!(total_of(9) > total_of(6) * 1.3, "September beats June");
}

#[test]
fn hot_node_ramps_from_august_and_dominates_fig12() {
    let (_, report) = campaign();
    let (hot, series) = &report.fig12.nodes[0];
    assert_eq!(hot.to_string(), "02-04");
    let total: u64 = series.iter().sum();
    let others: u64 = report.fig12.others.iter().sum();
    assert!(total > others * 5, "hot {total} vs others {others}");
    // Nothing before August (day index of Aug 1 2015 is 212; series starts
    // Feb 1 = day 31).
    let pre_onset: u64 = series[..(212 - 31)].iter().sum();
    assert_eq!(pre_onset, 0, "silent before onset");
    // November (days 273..303 of the year) dominates.
    let nov: u64 = series[(304 - 31)..(334 - 31)].iter().sum();
    assert!(nov * 2 > total, "november carries most: {nov}/{total}");
}

#[test]
fn regime_split_matches_paper_fractions() {
    // Paper: 18.1% degraded days; MTBF 167 h normal vs 0.39 h degraded.
    let (_, report) = campaign();
    let frac = report.regime.degraded_fraction();
    assert!((0.08..=0.30).contains(&frac), "degraded fraction {frac}");
    let s = report.regime_summary;
    assert!(s.normal_mtbf_h > 80.0, "normal MTBF {}", s.normal_mtbf_h);
    assert!(
        s.degraded_mtbf_h < 2.0,
        "degraded MTBF {}",
        s.degraded_mtbf_h
    );
    assert!(
        s.normal_mtbf_h / s.degraded_mtbf_h > 100.0,
        "orders of magnitude apart"
    );
}

#[test]
fn quarantine_restores_mtbf_cheaply() {
    // Paper Table II: MTBF up by orders of magnitude for <0.1% capacity.
    let (_, report) = campaign();
    let q0 = &report.table2[0];
    let q30 = report.table2.last().unwrap();
    assert!(q30.system_mtbf_h / q0.system_mtbf_h > 10.0);
    assert!(
        q30.surviving_faults * 10 < q0.surviving_faults,
        "{} vs {}",
        q30.surviving_faults,
        q0.surviving_faults
    );
    assert!(q30.availability_loss < 0.02);
    // Monotone improvement in surviving faults along the sweep.
    for w in report.table2.windows(2) {
        assert!(w[1].surviving_faults <= w[0].surviving_faults);
    }
}

#[test]
fn faults_are_bursty_not_poisson() {
    // Paper Section III-I: "memory errors are ... clustered in time".
    let (_, report) = campaign();
    assert!(
        report.burstiness.interarrival_cv > 3.0,
        "CV {}",
        report.burstiness.interarrival_cv
    );
    assert!(
        report.burstiness.daily_fano > 10.0,
        "Fano {}",
        report.burstiness.daily_fano
    );
}

#[test]
fn spatio_temporal_predictor_works() {
    // Paper: "it is relatively simple to foresee future failures using the
    // spatio-temporal analysis" — a 24 h per-node alarm catches nearly
    // everything, because repeat offenders dominate.
    let (_, report) = campaign();
    let recall_24h = report
        .predictor_recall
        .iter()
        .find(|(h, _)| *h == 24)
        .map(|(_, r)| *r)
        .unwrap();
    assert!(recall_24h > 0.9, "24 h recall {recall_24h}");
    // Monotone in horizon.
    assert!(report.predictor_recall.windows(2).all(|w| w[0].1 <= w[1].1));
}

#[test]
fn multibit_bits_concentrate_in_low_half() {
    // Paper: "the majority of the multiple bit corruptions occur in the
    // least significant bits of the word".
    let (_, report) = campaign();
    let frac = report.bitpos_multibit.low_half_fraction();
    assert!(frac > 0.6, "low-half fraction {frac}");
}

#[test]
fn finer_scrubbing_prevents_accumulation() {
    let (_, report) = campaign();
    // Monotone: longer scrub intervals accumulate at least as much.
    assert!(report
        .scrub
        .windows(2)
        .all(|w| w[0].1.accumulated_words <= w[1].1.accumulated_words));
}

#[test]
fn isolated_sdcs_on_quiet_nodes() {
    // Paper Section III-D: the >3-bit errors sit on nodes with (almost) no
    // other errors, uncorrelated with anything.
    let (result, _) = campaign();
    let faults = result.characterized_faults();
    let big: Vec<_> = faults.iter().filter(|f| f.bits_corrupted() > 3).collect();
    assert!(big.len() >= 7, "the placed SDCs observed: {}", big.len());
    for f in &big {
        let node_total = faults.iter().filter(|g| g.node == f.node).count();
        assert!(
            node_total <= 4,
            "SDC node {} has {node_total} faults — not quiet",
            f.node
        );
    }
}

#[test]
fn weak_bit_nodes_are_pure_repeaters() {
    // Paper Section III-H: "the corrupted bit was the same in 100% of the
    // cases" on the two weak-bit nodes.
    let (result, _) = campaign();
    let faults = result.characterized_faults();
    let census = uc_analysis::spatial::node_census(&faults);
    let mut found = 0;
    for name in ["04-05", "06-02"] {
        let node = uc_cluster::NodeId::from_name(name).unwrap();
        if let Some(c) = census.get(&node) {
            assert!(c.faults > 300, "{name} has {} faults", c.faults);
            assert!(
                c.dominant_fraction > 0.99,
                "{name} dominant fraction {}",
                c.dominant_fraction
            );
            assert_eq!(c.distinct_addresses, 1, "{name}");
            found += 1;
        }
    }
    assert_eq!(found, 2, "both weak-bit nodes present");
}

#[test]
fn degrading_node_census_matches_section_iii_h() {
    // Paper: >11,000 distinct addresses, ~30 patterns, mostly 1->0.
    let (result, _) = campaign();
    let faults = result.characterized_faults();
    let census = uc_analysis::spatial::node_census(&faults);
    let hot = uc_cluster::NodeId::from_name("02-04").unwrap();
    let c = &census[&hot];
    assert!(c.faults > 10_000, "hot node faults {}", c.faults);
    assert!(
        c.distinct_addresses > 5_000,
        "addresses {}",
        c.distinct_addresses
    );
    // The paper reports "almost 30" patterns; our hot node also hosts the
    // solar multi-bit strikes (each a fresh mask) and counter-phase
    // partial clears, so the count runs somewhat higher.
    assert!(
        (10..=90).contains(&c.distinct_patterns),
        "patterns {}",
        c.distinct_patterns
    );
    assert!(c.one_to_zero_fraction > 0.85);
    assert!(c.dominant_fraction < 0.05, "no single signature dominates");
}
