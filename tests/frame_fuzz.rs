//! Frame-codec fuzz properties: the UCSEG1 frame layer is the trust
//! boundary for every byte that arrives off the network or off disk —
//! WAL segments, ingest sessions, replication shipping. Whatever bytes
//! it is fed, [`FrameReader`] must never panic, must terminate, and must
//! never hand back a payload it did not checksum: garbage surfaces as a
//! typed [`FrameEvent::Damaged`] (or a clean `Eof`), never as an
//! invented frame.

use std::io::Cursor;

use proptest::prelude::*;

use uc_faultlog::durable::{write_frame, FrameEvent, FrameReader, MAGIC};

/// Drain a reader to termination, collecting every decoded payload.
/// Returns (payloads, terminal event description). The iteration bound
/// proves termination: every yielded frame consumes at least a header's
/// worth of input, so `len + 2` rounds can never be exceeded.
fn drain(bytes: &[u8]) -> (Vec<Vec<u8>>, String) {
    let mut reader = FrameReader::new(Cursor::new(bytes));
    let mut payloads = Vec::new();
    let bound = bytes.len() + 2;
    for _ in 0..bound {
        match reader.next_frame() {
            Ok(FrameEvent::Frame(p)) => payloads.push(p),
            Ok(FrameEvent::Eof) => return (payloads, "eof".to_string()),
            Ok(FrameEvent::Damaged(d)) => return (payloads, format!("damaged: {d}")),
            Err(e) => return (payloads, format!("io: {e}")),
        }
    }
    panic!("FrameReader did not terminate within {bound} rounds");
}

fn encode_stream(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for p in payloads {
        write_frame(&mut bytes, p).unwrap();
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure byte soup: never a panic, always a typed termination, and
    /// any frame that does decode was genuinely CRC-valid in the input.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let (payloads, _terminal) = drain(&bytes);
        // A decoded payload can never exceed what the input could carry.
        let total: usize = payloads.iter().map(|p| p.len() + 8).sum();
        prop_assert!(
            total <= bytes.len(),
            "decoded {total} payload+header bytes out of a {}-byte input",
            bytes.len()
        );
    }

    /// Byte soup that *starts* like a real session (magic prefix) is no
    /// more dangerous than raw soup.
    #[test]
    fn magic_prefixed_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut stream = MAGIC.to_vec();
        stream.extend_from_slice(&bytes);
        let mut reader = FrameReader::new(Cursor::new(&stream[..]));
        prop_assert!(reader.expect_magic().unwrap(), "magic prefix not recognized");
        let (_, terminal) = drain(&stream[MAGIC.len()..]);
        prop_assert!(!terminal.is_empty());
    }

    /// Clean round-trip: every framed payload comes back intact, in
    /// order, ending in a clean Eof.
    #[test]
    fn clean_streams_round_trip(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 0..20)
    ) {
        let bytes = encode_stream(&payloads);
        let (got, terminal) = drain(&bytes);
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(terminal, "eof".to_string());
    }

    /// A single flipped bit anywhere in a framed stream: frames before
    /// the damage decode intact, and from the damaged frame onward the
    /// reader never yields a payload that differs from what was written
    /// — it either resynchronizes on genuinely-valid frames or reports
    /// typed damage. CRC-32 catches all single-bit errors inside a
    /// frame, so the damaged frame itself can never be yielded.
    #[test]
    fn single_bit_flip_never_yields_a_wrong_payload(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..200), 1..12),
        pos in 0usize..usize::MAX,
        bit in 0u8..8,
    ) {
        let clean = encode_stream(&payloads);
        let offset = pos % clean.len();
        let mut damaged = clean.clone();
        damaged[offset] ^= 1 << bit;

        // Which frame holds the flipped byte?
        let mut frame_starts = Vec::with_capacity(payloads.len());
        let mut at = 0usize;
        for p in &payloads {
            frame_starts.push(at);
            at += 8 + p.len();
        }
        let victim = frame_starts.iter().rposition(|&s| s <= offset).unwrap();

        let (got, _terminal) = drain(&damaged);
        // Everything before the victim frame is untouched bytes and must
        // decode identically.
        prop_assert!(
            got.len() >= victim,
            "flip in frame {victim} destroyed {} earlier intact frames",
            victim - got.len()
        );
        for (i, p) in got.iter().take(victim).enumerate() {
            prop_assert_eq!(p, &payloads[i], "intact frame {} decoded differently", i);
        }
        // The victim frame fails its CRC; anything decoded at or past it
        // must be a byte-exact later frame the reader resynchronized on
        // (possible only when the flip hit the length field and the
        // shifted window happens to checksum — never a mangled payload).
        for p in got.iter().skip(victim) {
            prop_assert!(
                payloads.iter().any(|orig| orig == p),
                "reader invented a payload after bit flip at byte {offset}"
            );
        }
    }

    /// Truncation at any point: a typed ending, all decoded frames are
    /// an exact prefix of what was written.
    #[test]
    fn truncation_yields_a_clean_prefix(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 1..12),
        cut in 0usize..usize::MAX,
    ) {
        let clean = encode_stream(&payloads);
        let keep = cut % (clean.len() + 1);
        let (got, _terminal) = drain(&clean[..keep]);
        prop_assert!(got.len() <= payloads.len());
        for (i, p) in got.iter().enumerate() {
            prop_assert_eq!(p, &payloads[i], "truncated stream frame {} differs", i);
        }
    }
}
