//! Day-stream contract: `Engine::day_stream` partitions the stored
//! fault stream exactly like a brute-force `SimTime::day_index` split —
//! every fault lands in exactly one day, a fault at the exact midnight
//! boundary lands in the *starting* day and no other, empty days inside
//! the span are yielded, and concatenating the per-day faults
//! reproduces the sealed stream byte for byte. Proven against both
//! database shapes (single sealed file and sharded root) by a property
//! test over arbitrary fault placements with a deliberate bias toward
//! exact-midnight timestamps.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use unprotected_computing::analysis::fault::Fault;
use unprotected_computing::faultdb::format::write_db;
use unprotected_computing::faultdb::{write_sharded, Engine, WriteOptions};
use unprotected_computing::faultlog::ingest::{recover_text, IngestStats};
use unprotected_computing::faultlog::store::ClusterLog;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uc-fdb-days-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Seal a database from synthetic per-node log text built from (node
/// index, second, vaddr) placements. Distinct vaddr pages keep
/// extraction from folding placements into one independent fault.
fn snapshot_from_placements(
    placements: &[(usize, i64, u64)],
) -> unprotected_computing::faultdb::Snapshot {
    const NAMES: [&str; 4] = ["01-01", "01-09", "05-03", "09-14"];
    let mut per_node: BTreeMap<usize, Vec<(i64, u64)>> = BTreeMap::new();
    for &(n, t, v) in placements {
        per_node.entry(n % NAMES.len()).or_default().push((t, v));
    }
    let mut stats = IngestStats::default();
    let mut logs = Vec::new();
    for (n, mut faults) in per_node {
        let name = NAMES[n];
        faults.sort_unstable();
        let mut text = format!("START t=0 node={name} alloc=3221225472 temp=30.0\n");
        for (t, vaddr) in faults {
            text.push_str(&format!(
                "ERROR t={t} node={name} vaddr=0x{vaddr:08x} page=0x{page:06x} \
                 expected=0xffffffff actual=0xfffffffe temp=33.0\n",
                page = vaddr >> 12
            ));
        }
        text.push_str(&format!("END t=3000000 node={name} temp=31.0\n"));
        let rec = recover_text(&text);
        stats.merge(&rec.stats);
        logs.push(rec.log);
    }
    unprotected_computing::faultdb::Snapshot::from_cluster(&ClusterLog::new(logs), stats)
}

/// The brute-force oracle: partition by `day_index`, one entry per day
/// from the first stored day through the last, empties included.
fn brute_force_days(faults: &[Fault]) -> Vec<(i64, Vec<Fault>)> {
    let Some(first) = faults.iter().map(|f| f.time.day_index()).min() else {
        return Vec::new();
    };
    let last = faults.iter().map(|f| f.time.day_index()).max().unwrap();
    (first..=last)
        .map(|day| {
            (
                day,
                faults
                    .iter()
                    .filter(|f| f.time.day_index() == day)
                    .cloned()
                    .collect(),
            )
        })
        .collect()
}

fn check_engine_days(db: &Engine, tag: &str) {
    let snap = db.snapshot().unwrap();
    let days = db.collect_days().unwrap();
    let oracle = brute_force_days(&snap.faults);

    assert_eq!(days.len(), oracle.len(), "{tag}: span mismatch");
    for (got, (day, want)) in days.iter().zip(&oracle) {
        assert_eq!(got.day, *day, "{tag}: day ordering diverged");
        assert_eq!(&got.faults, want, "{tag}: day {day} contents diverged");
        for f in &got.faults {
            assert_eq!(
                f.time.day_index(),
                *day,
                "{tag}: fault leaked across the day boundary"
            );
        }
    }
    // Concatenation reproduces the sealed stream exactly — so every
    // fault is in exactly one day.
    let concat: Vec<Fault> = days.into_iter().flat_map(|d| d.faults).collect();
    assert_eq!(concat, snap.faults, "{tag}: concatenation diverged");
}

/// A placement strategy biased toward the exact-midnight boundary:
/// roughly a third of faults land at `day * 86_400` precisely.
fn placements() -> impl Strategy<Value = Vec<(usize, i64, u64)>> {
    let second = prop_oneof![
        // Exact midnight of days 0..=12.
        (0i64..13).prop_map(|d| d * 86_400),
        // Last second of a day.
        (1i64..13).prop_map(|d| d * 86_400 - 1),
        // Anywhere in the first ~12 days.
        0i64..1_000_000,
    ];
    proptest::collection::vec(
        (0usize..4, second, 0u64..64).prop_map(|(n, t, k)| {
            // Distinct pages per (node, slot) so extraction can't merge
            // two placements into one independent fault.
            (n, t, 0x1000 * (1 + k) + 0x100_000 * n as u64)
        }),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn day_stream_matches_brute_force_partition(placements in placements()) {
        let dir = tempdir("prop");
        let snap = snapshot_from_placements(&placements);
        prop_assume!(!snap.faults.is_empty());

        // Single sealed file, small blocks so windows cross block edges.
        let path = dir.join("days.ucfdb");
        write_db(
            &snap,
            &path,
            &WriteOptions { rows_per_block: 8, ..WriteOptions::default() },
        )
        .unwrap();
        check_engine_days(&Engine::open_auto(&path).unwrap(), "single");

        // Sharded root: the fan-out path must partition identically.
        let root = dir.join("days-root");
        write_sharded(&snap, &root, 3, &WriteOptions::default()).unwrap();
        check_engine_days(&Engine::open_auto(&root).unwrap(), "root");

        let _ = fs::remove_dir_all(&dir);
    }
}

/// The pinned boundary case from the contract: a fault at exactly
/// midnight belongs to the starting day, its neighbor one second
/// earlier to the previous day.
#[test]
fn midnight_fault_lands_in_exactly_one_day() {
    let dir = tempdir("midnight");
    // Two faults per node: the flood filter excludes any node holding
    // more than half the raw errors, so volumes stay balanced.
    let snap = snapshot_from_placements(&[
        (0, 3 * 86_400 - 1, 0x4000),    // last second of day 2
        (0, 3 * 86_400, 0x8000),        // exactly midnight: day 3
        (1, 3 * 86_400, 0x200_000),     // another node, same boundary
        (1, 3 * 86_400 - 1, 0x204_000), // same node, last second of day 2
    ]);
    assert_eq!(snap.faults.len(), 4);
    let path = dir.join("midnight.ucfdb");
    write_db(&snap, &path, &WriteOptions::default()).unwrap();
    let db = Engine::open_auto(&path).unwrap();

    assert_eq!(db.day_bounds(), Some((2, 3)));
    let day2 = db.faults_on_day(2).unwrap();
    let day3 = db.faults_on_day(3).unwrap();
    assert_eq!(day2.len(), 2);
    assert!(day2.iter().all(|f| f.time.as_secs() == 3 * 86_400 - 1));
    assert_eq!(day3.len(), 2);
    assert!(day3.iter().all(|f| f.time.as_secs() == 3 * 86_400));
    // Out-of-span days decode nothing.
    assert!(db.faults_on_day(1).unwrap().is_empty());
    assert!(db.faults_on_day(4).unwrap().is_empty());

    let _ = fs::remove_dir_all(&dir);
}

/// Empty days inside the span are yielded (the policy engine charges
/// daily costs whether or not faults landed).
#[test]
fn empty_days_inside_the_span_are_yielded() {
    let dir = tempdir("gaps");
    // One fault per node so the flood filter keeps both.
    let snap = snapshot_from_placements(&[(0, 86_400 + 5, 0x4000), (1, 5 * 86_400 + 5, 0x108_000)]);
    assert_eq!(snap.faults.len(), 2);
    let path = dir.join("gaps.ucfdb");
    write_db(&snap, &path, &WriteOptions::default()).unwrap();
    let db = Engine::open_auto(&path).unwrap();
    let days = db.collect_days().unwrap();
    assert_eq!(
        days.iter().map(|d| d.day).collect::<Vec<_>>(),
        vec![1, 2, 3, 4, 5]
    );
    assert_eq!(
        days.iter().map(|d| d.faults.len()).collect::<Vec<_>>(),
        vec![1, 0, 0, 0, 1]
    );
    let _ = fs::remove_dir_all(&dir);
}
