//! The `ClusterLog::merged` ordering contract, pinned down.
//!
//! The k-way merge promises: records come out sorted by
//! `(time, node id, source log index)`, and within one source log,
//! same-instant records keep their arrival order. For per-source streams
//! that are themselves time-sorted, that is exactly a *stable* sort of
//! the concatenated logs by `(time, node id)` — which is what the
//! property below checks the merge against, record for record.
//!
//! Both extraction and `uc build-db` consume this stream, so any
//! tie-break wobble here would show up as nondeterministic fault output.

use proptest::prelude::*;

use uc_cluster::NodeId;
use uc_faultlog::record::{ErrorRecord, LogRecord};
use uc_faultlog::store::{ClusterLog, LogEntry, NodeLog};
use uc_simclock::SimTime;

/// An error record whose `vaddr` carries a unique tag, so two records
/// with the same (time, node) stay distinguishable through the merge.
fn rec(node: u32, t: i64, tag: u64) -> LogRecord {
    LogRecord::Error(ErrorRecord {
        time: SimTime::from_secs(t),
        node: NodeId(node),
        vaddr: tag,
        phys_page: 0x2,
        expected: 0xFFFF_FFFF,
        actual: 0xFFFF_FFFE,
        temp: None,
    })
}

fn key(r: &LogRecord) -> (i64, u32, u64) {
    let LogRecord::Error(e) = r else {
        panic!("fixture emits errors only")
    };
    (e.time.as_secs(), e.node.0, e.vaddr)
}

proptest! {
    /// merged() == stable sort of the concatenated logs by (time, node),
    /// for arbitrary stream shapes — including duplicate node ids across
    /// source logs and heavy timestamp ties.
    #[test]
    fn merged_is_a_stable_sort_by_time_then_node(
        streams in prop::collection::vec(
            prop::collection::vec(0i64..40, 0..25),
            1..6,
        ),
    ) {
        let mut tag = 0u64;
        let mut logs = Vec::new();
        let mut concatenated: Vec<LogRecord> = Vec::new();
        for (source, times) in streams.iter().enumerate() {
            // `source % 3` gives some logs the *same* node id, so the
            // final source-index tie-break gets exercised too.
            let node = (source % 3) as u32;
            let mut times = times.clone();
            times.sort_unstable();
            let entries: Vec<LogEntry> = times
                .iter()
                .map(|&t| {
                    tag += 1;
                    let r = rec(node, t, tag);
                    concatenated.push(r);
                    LogEntry::One(r)
                })
                .collect();
            logs.push(NodeLog::from_entries(Some(NodeId(node)), entries));
        }
        let cluster = ClusterLog::new(logs);

        // Vec::sort_by_key is stable: same-(time, node) records keep
        // concatenation order, i.e. source index then arrival order.
        let mut expected = concatenated.clone();
        expected.sort_by_key(|r| (r.time(), r.node().0));

        let merged: Vec<LogRecord> = cluster.merged().collect();
        prop_assert_eq!(merged.len(), expected.len());
        for (m, e) in merged.iter().zip(&expected) {
            prop_assert_eq!(key(m), key(e));
        }
    }
}

/// The documented tie-break, spelled out on a hand-built worst case:
/// every record at the same instant, so ordering is decided entirely by
/// (node id, source index, arrival order).
#[test]
fn same_instant_records_order_by_node_then_source_then_arrival() {
    let logs = vec![
        // source 0, node 5: two same-instant records (arrival order 1, 2)
        NodeLog::from_entries(
            Some(NodeId(5)),
            vec![LogEntry::One(rec(5, 10, 1)), LogEntry::One(rec(5, 10, 2))],
        ),
        // source 1, node 2
        NodeLog::from_entries(Some(NodeId(2)), vec![LogEntry::One(rec(2, 10, 3))]),
        // source 2, node 5 again: loses the source tie-break to source 0
        NodeLog::from_entries(Some(NodeId(5)), vec![LogEntry::One(rec(5, 10, 4))]),
    ];
    let cluster = ClusterLog::new(logs);
    let tags: Vec<u64> = cluster
        .merged()
        .map(|r| match r {
            LogRecord::Error(e) => e.vaddr,
            _ => unreachable!(),
        })
        .collect();
    // node 2 first; then node 5 from source 0 (both records, in arrival
    // order) before node 5 from source 2.
    assert_eq!(tags, vec![3, 1, 2, 4]);
}
