//! Supervised campaign execution: checkpointed runs resume byte-identically
//! after an interruption, and a poisoned node degrades the campaign
//! instead of aborting it.

use std::fs;
use std::path::PathBuf;

use uc_cluster::NodeId;
use unprotected_core::checkpoint::{clear_checkpoints, run_campaign_checkpointed};
use unprotected_core::{render, run_campaign, CampaignConfig, Report};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uc-resume-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn interrupted_campaign_resumes_byte_identical() {
    let cfg = CampaignConfig::small(42, 6);
    let fresh = run_campaign(&cfg);
    let fresh_report = render::full_report(&Report::build(&fresh));

    // First run populates the checkpoint directory.
    let ckpt = tempdir("interrupt");
    let first = run_campaign_checkpointed(&cfg, &ckpt);
    assert_eq!(
        render::full_report(&Report::build(&first)),
        fresh_report,
        "checkpointed run matches plain run"
    );

    // Simulate an interruption: every third checkpoint is lost, and one
    // survivor is torn mid-write.
    let mut ckpts: Vec<PathBuf> = fs::read_dir(&ckpt)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    ckpts.sort();
    assert!(
        ckpts.len() > 10,
        "expected many checkpoints: {}",
        ckpts.len()
    );
    for path in ckpts.iter().step_by(3) {
        fs::remove_file(path).unwrap();
    }
    let survivor = ckpts
        .iter()
        .find(|p| p.exists())
        .expect("a surviving checkpoint");
    let text = fs::read(survivor).unwrap();
    fs::write(survivor, &text[..text.len() / 2]).unwrap();

    // Resume: restored + recomputed nodes together are indistinguishable
    // from an uninterrupted run, down to the rendered report text.
    let resumed = run_campaign_checkpointed(&cfg, &ckpt);
    assert!(!resumed.is_degraded());
    for (a, b) in resumed.completed().zip(fresh.completed()) {
        assert_eq!(a.node, b.node);
        assert_eq!(a.log.entries(), b.log.entries(), "node {}", a.node);
        assert_eq!(a.faults, b.faults, "node {}", a.node);
        assert_eq!(a.monitored_hours.to_bits(), b.monitored_hours.to_bits());
        assert_eq!(a.terabyte_hours.to_bits(), b.terabyte_hours.to_bits());
    }
    assert_eq!(render::full_report(&Report::build(&resumed)), fresh_report);

    fs::remove_dir_all(&ckpt).unwrap();
}

#[test]
fn stale_checkpoints_from_another_seed_are_not_reused() {
    let ckpt = tempdir("stale-seed");
    let a = run_campaign_checkpointed(&CampaignConfig::small(42, 6), &ckpt);
    // Same directory, different seed: every checkpoint is stale, so the
    // result must match that seed's plain run, not seed 42's.
    let b = run_campaign_checkpointed(&CampaignConfig::small(43, 6), &ckpt);
    let plain_b = run_campaign(&CampaignConfig::small(43, 6));
    assert_eq!(b.all_faults(), plain_b.all_faults());
    assert_ne!(a.all_faults(), b.all_faults());

    clear_checkpoints(&ckpt).unwrap();
    assert!(fs::read_dir(&ckpt).unwrap().next().is_none());
    fs::remove_dir_all(&ckpt).unwrap();
}

#[test]
fn poisoned_node_yields_degraded_report_naming_the_node() {
    let mut cfg = CampaignConfig::small(42, 6);
    let victim = NodeId::from_name("01-05").unwrap();
    cfg.panic_nodes.push(victim);
    cfg.node_attempts = 2;

    let result = run_campaign(&cfg);
    assert!(result.is_degraded());
    let failed = result.failed_nodes();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].0, victim);
    assert_eq!(failed[0].1, 2, "both attempts consumed");

    // The report survives, names the failed node, and covers the others.
    let report = Report::build(&result);
    assert_eq!(report.failed_nodes.len(), 1);
    assert_eq!(report.failed_nodes[0].0, victim);
    let headline = render::headline(&report);
    assert!(headline.contains("DEGRADED"), "{headline}");
    assert!(headline.contains("01-05"), "{headline}");
    assert!(report.headline.independent_faults > 0);

    // The surviving nodes' output matches a healthy run's exactly.
    let healthy = run_campaign(&CampaignConfig::small(42, 6));
    for (a, b) in result
        .completed()
        .zip(healthy.completed().filter(|o| o.node != victim))
    {
        assert_eq!(a.node, b.node);
        assert_eq!(a.faults, b.faults);
    }
}
