//! Fsck salvage properties (DESIGN.md §7.2): whatever combination of
//! crash damage a durable directory suffers — truncation, torn final
//! frames, duplicated unsealed segments, bit rot, appended garbage —
//! `fsck_dir` never panics, its byte accounting obeys the conservation
//! law `bytes_in == salvaged + quarantined`, a second pass finds nothing
//! left to repair, and the recovering ingestion path still reads the
//! directory with the salvage history folded into its stats.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use proptest::prelude::*;

use uc_faultlog::chaos::{corrupt_durable_dir, SegmentChaosConfig};
use uc_faultlog::durable::{fsck_dir, read_fsck_report, write_cluster_log_durable};
use uc_faultlog::ingest::read_cluster_log_recovering;
use uc_faultlog::store::ClusterLog;
use unprotected_core::{run_campaign, CampaignConfig};

/// A pristine durable corpus, written once: a handful of non-flood node
/// logs plus their MANIFEST. Each proptest case copies it byte-for-byte
/// into a fresh scratch directory before damaging it.
fn template_dir() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("uc-fsck-template-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let result = run_campaign(&CampaignConfig::small(42, 6));
        let flood = result.flood_nodes(0.5);
        let logs: Vec<_> = result
            .completed()
            .filter(|o| !flood.contains(&o.node))
            .map(|o| o.log.clone())
            .take(5)
            .collect();
        assert_eq!(logs.len(), 5, "not enough non-flood nodes for a corpus");
        let outcome = write_cluster_log_durable(&dir, &ClusterLog::new(logs));
        assert!(outcome.is_fully_durable(), "{:?}", outcome.failures);
        dir
    })
}

fn fresh_copy(tag: &str) -> PathBuf {
    let src = template_dir();
    let dir = std::env::temp_dir().join(format!("uc-fsck-props-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
    dir
}

/// Sorted durable segment paths currently in `dir`.
fn dlog_files(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "dlog"))
        .collect();
    v.sort();
    v
}

/// One extra hand-rolled mutilation beyond what the chaos harness does,
/// so the damage space is not limited to the injector's own vocabulary.
fn apply_surgery(dir: &Path, file_sel: usize, op: u8, pos_permille: u32, bit: u8) {
    let files = dlog_files(dir);
    if files.is_empty() {
        return;
    }
    let path = &files[file_sel % files.len()];
    let mut bytes = fs::read(path).unwrap();
    let pos = (bytes.len() as u64 * u64::from(pos_permille) / 1000) as usize;
    match op % 4 {
        // Truncate at an arbitrary offset (possibly inside the magic).
        0 => bytes.truncate(pos),
        // Flip one bit anywhere.
        1 => {
            let pos = pos.min(bytes.len() - 1);
            bytes[pos] ^= 1 << (bit % 8);
        }
        // Append garbage: a torn, never-completed next frame.
        2 => bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, bit]),
        // Leave this file alone.
        _ => return,
    }
    fs::write(path, bytes).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fsck_conserves_bytes_and_converges_under_random_damage(
        seed in 0u64..1_000_000,
        truncate in 0u32..=60,
        torn in 0u32..=60,
        duplicate in 0u32..=60,
        bit_rot in 0u32..=60,
        file_sel in 0usize..8,
        op in 0u8..4,
        pos_permille in 0u32..=1000,
        bit in 0u8..8,
    ) {
        let dir = fresh_copy("case");
        let chaos = SegmentChaosConfig {
            seed,
            truncate_rate: f64::from(truncate) / 100.0,
            torn_final_rate: f64::from(torn) / 100.0,
            duplicate_rate: f64::from(duplicate) / 100.0,
            bit_rot_rate: f64::from(bit_rot) / 100.0,
        };
        corrupt_durable_dir(&dir, &chaos).unwrap();
        apply_surgery(&dir, file_sel, op, pos_permille, bit);

        // Pass 1 repairs whatever it finds, conserving every byte.
        let pass1 = fsck_dir(&dir).unwrap();
        prop_assert!(pass1.is_conserved(), "pass 1: {}", pass1.summary());

        // Pass 2 is a fixpoint: nothing left to salvage or quarantine.
        let pass2 = fsck_dir(&dir).unwrap();
        prop_assert!(pass2.is_conserved(), "pass 2: {}", pass2.summary());
        prop_assert!(!pass2.found_damage(), "not convergent: {}", pass2.summary());

        // The persisted history accumulates both passes' byte totals.
        let history = read_fsck_report(&dir).expect("fsck leaves a report");
        prop_assert_eq!(history.bytes_in, pass1.bytes_in + pass2.bytes_in);
        prop_assert!(history.is_conserved());

        // The repaired directory still ingests (unless every segment was
        // quarantined outright), with the salvage history in its stats.
        if dlog_files(&dir).is_empty() {
            prop_assert!(read_cluster_log_recovering(&dir).is_err());
        } else {
            let (cluster, stats) = read_cluster_log_recovering(&dir).unwrap();
            prop_assert!(stats.is_conserved(), "ingest accounting: {stats:?}");
            prop_assert!(cluster.node_logs().len() <= 5);
            prop_assert_eq!(stats.fsck_bytes_salvaged, history.bytes_salvaged);
            prop_assert_eq!(stats.fsck_bytes_quarantined, history.bytes_quarantined);
            prop_assert_eq!(stats.fsck_files_salvaged, history.files_salvaged);
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
