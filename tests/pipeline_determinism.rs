//! The §6 determinism contract for the parallel analysis pipeline: every
//! stage (recovering ingest, fault extraction, report build) must produce
//! byte-identical output regardless of the worker count, and out-of-order
//! records — which lossy recovery deliberately keeps — must never panic
//! the extraction arithmetic.

use proptest::prelude::*;

use uc_analysis::extract::{
    extract_cluster_faults, extract_recovered, fault_sort_key, ExtractConfig,
};
use uc_faultlog::ingest::recover_text;
use uc_faultlog::store::ClusterLog;
use uc_parallel::with_thread_limit;
use unprotected_core::{render, run_campaign, CampaignConfig, Report};

/// The full rendered report — the pipeline's final byte stream — is
/// identical at 1, 2, and 8 worker threads.
#[test]
fn full_report_is_byte_identical_across_thread_counts() {
    let result = run_campaign(&CampaignConfig::small(42, 6));
    let one = with_thread_limit(1, || render::full_report(&Report::build(&result)));
    let two = with_thread_limit(2, || render::full_report(&Report::build(&result)));
    let eight = with_thread_limit(8, || render::full_report(&Report::build(&result)));
    assert!(!one.is_empty());
    assert_eq!(one, two);
    assert_eq!(one, eight);
}

/// Render one synthetic ERROR line in the on-disk log format.
fn error_line(node: &str, t: i64, vaddr: u64, actual: u32) -> String {
    format!(
        "ERROR t={t} node={node} vaddr=0x{vaddr:08x} page=0x{page:06x} \
         expected=0xffffffff actual=0x{actual:08x} temp=35.0",
        page = vaddr >> 12
    )
}

/// Recover per-node text files into a cluster log. Recovery stable-sorts
/// entries by start time, so same-instant records keep file order — the
/// tie-heavy case the fully discriminating sort key must break
/// identically on every worker.
fn cluster_from_entries(entries: &[(usize, i64, u64, u32)]) -> ClusterLog {
    const NODES: [&str; 3] = ["01-01", "01-02", "01-03"];
    let mut logs = Vec::new();
    for (idx, name) in NODES.iter().enumerate() {
        let text: String = entries
            .iter()
            .filter(|(n, _, _, _)| n % NODES.len() == idx)
            .map(|&(_, t, vaddr, actual)| error_line(name, t, vaddr, actual) + "\n")
            .collect();
        let rec = recover_text(&text);
        assert!(rec.stats.is_conserved());
        logs.push(rec.log);
    }
    ClusterLog::new(logs)
}

proptest! {
    /// Extraction over arbitrary (including out-of-order and tie-heavy)
    /// record streams is identical at 1 vs 4 worker threads, sorted by the
    /// fully discriminating key, and never panics — in debug builds the
    /// checked time arithmetic asserts on any wrap.
    #[test]
    fn extraction_is_thread_count_invariant(
        entries in prop::collection::vec(
            (0usize..3, 0i64..200_000, prop_oneof![Just(0x100u64), Just(0x200u64), 0u64..0x4000],
             prop_oneof![Just(0xffff_fffeu32), Just(0x7fff_ffffu32), any::<u32>()]),
            0..120,
        ),
    ) {
        let cluster = cluster_from_entries(&entries);
        let cfg = ExtractConfig::default();
        let one = with_thread_limit(1, || extract_cluster_faults(&cluster, &cfg));
        let four = with_thread_limit(4, || extract_cluster_faults(&cluster, &cfg));
        prop_assert_eq!(&one, &four);
        let mut sorted = one.clone();
        sorted.sort_by_key(fault_sort_key);
        prop_assert_eq!(&sorted, &one);
    }
}

/// The §6 contract extended to the database path: a report rendered from
/// a sealed fault database is byte-identical to one rendered straight
/// from the ingested cluster, at every thread count — which is exactly
/// what makes `uc analyze --db` a drop-in replacement for `uc analyze`.
#[test]
fn db_report_is_byte_identical_to_text_report_at_any_thread_count() {
    use unprotected_computing::faultdb::{format::write_db, FaultDb, Snapshot, WriteOptions};

    // Tie-heavy synthetic cluster: same-instant records across nodes, so
    // any ordering wobble in build or scan would change the report.
    let entries: Vec<(usize, i64, u64, u32)> = (0..90)
        .map(|i| {
            (
                i % 3,
                (i as i64 / 9) * 40_000,
                0x100 * (1 + i as u64 % 4),
                0xffff_fffe,
            )
        })
        .collect();
    let cluster = cluster_from_entries(&entries);
    let stats = uc_faultlog::ingest::IngestStats::default();
    let direct = Snapshot::from_cluster(&cluster, stats);

    let dir = std::env::temp_dir().join(format!("uc-pipe-db-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.fdb");
    // Small blocks so the parallel build and scan actually fan out.
    write_db(
        &direct,
        &path,
        &WriteOptions {
            rows_per_block: 4,
            ..WriteOptions::default()
        },
    )
    .unwrap();

    let baseline = direct.report_text();
    for threads in [1, 2, 8] {
        let report = with_thread_limit(threads, || {
            FaultDb::open(&path)
                .unwrap()
                .snapshot()
                .unwrap()
                .report_text()
        });
        assert_eq!(report, baseline, "threads = {threads}");
    }
    // And the build itself is thread-invariant: re-seal at 1 thread and
    // compare the file bytes.
    let single = dir.join("t1.fdb");
    with_thread_limit(1, || {
        write_db(
            &direct,
            &single,
            &WriteOptions {
                rows_per_block: 4,
                ..WriteOptions::default()
            },
        )
        .unwrap()
    });
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&single).unwrap(),
        "sealed database bytes depend on thread count"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A hand-built worst case: reordered records with extreme timestamps for
/// the same (vaddr, pattern) key. Recovery stable-sorts entries by start
/// time, so extraction sees MIN+1, 10, 10, 4e9, MAX-1 — and the very
/// first recurrence gap (`10 - (i64::MIN + 1)`) overflows `i64`. Raw
/// `SimTime` subtraction would wrap (and `debug_assert` in this build);
/// the checked recurrence gap must classify the pair as separate faults
/// instead, at every thread count.
#[test]
fn reversed_extreme_timestamps_survive_recovery_and_extraction() {
    // Three nodes with the same pathological stream, so no single node
    // crosses the 50% flood threshold and the k-way merge sees duplicate
    // keys across streams.
    let mut stats = uc_faultlog::ingest::IngestStats::default();
    let mut logs = Vec::new();
    for name in ["01-01", "01-02", "01-03"] {
        let text = [
            error_line(name, 4_000_000_000, 0x100, 0xffff_fffe),
            error_line(name, 10, 0x100, 0xffff_fffe),
            error_line(name, i64::MAX - 1, 0x100, 0xffff_fffe),
            error_line(name, i64::MIN + 1, 0x100, 0xffff_fffe),
            error_line(name, 10, 0x100, 0xffff_fffe),
        ]
        .join("\n")
            + "\n";
        let rec = recover_text(&text);
        assert!(rec.stats.is_conserved());
        assert_eq!(rec.stats.records_kept, 5);
        stats.merge(&rec.stats);
        logs.push(rec.log);
    }
    let cluster = ClusterLog::new(logs);
    let cfg = ExtractConfig::default();
    let one = with_thread_limit(1, || extract_recovered(&cluster, stats, &cfg, 0.5));
    let eight = with_thread_limit(8, || extract_recovered(&cluster, stats, &cfg, 0.5));
    assert!(one.flood_nodes.is_empty());
    // Per node, the two t=10 records are adjacent after recovery's sort
    // and merge into one fault; every other step either overflows the
    // checked gap or exceeds the merge window, so each opens a new fault:
    // four faults per node.
    assert_eq!(one.faults.len(), 12);
    assert_eq!(one.faults, eight.faults);
    let mut sorted = one.faults.clone();
    sorted.sort_by_key(fault_sort_key);
    assert_eq!(sorted, one.faults);
}
