//! Scrubber end-to-end (DESIGN.md §11): silent corruption planted in a
//! sealed generation — at a position picked by the chaos seed — must be
//! detected by CRC, repaired by resealing from the WAL into the exact
//! original bytes, and accounted for under the same conservation law
//! fsck enforces: every byte is kept or quarantined, never destroyed.
//!
//! Seed the corruption schedule with `UC_CHAOS_SEED` (default 1); CI
//! runs several seeds.

use std::fs;
use std::path::PathBuf;

use uc_cluster::NodeId;
use uc_faultdb::{fsck_live_dir, gen_file_name, scrub_live_dir, LiveDb, ScrubConfig, ScrubReport};

fn chaos_seed() -> u64 {
    std::env::var("UC_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// xorshift64* — deterministic corruption positions, seeded from the env.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uc-scrub-e2e-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn corpus(node: &str, salt: u64, records: usize) -> Vec<String> {
    let mut lines = Vec::with_capacity(records + 2);
    lines.push(format!("START t=0 node={node} alloc=3221225472 temp=30.0"));
    for k in 0..records {
        let vaddr = 0x4000 + 0x200 * (k as u64) + (salt << 24);
        lines.push(format!(
            "ERROR t={t} node={node} vaddr=0x{vaddr:08x} page=0x{page:06x} \
             expected=0xffffffff actual=0xfffffffe temp=33.0",
            t = 200 + 4500 * (k as i64),
            page = vaddr >> 12
        ));
    }
    lines.push(format!(
        "END t={t} node={node} temp=31.0",
        t = 4500 * records as i64 + 500
    ));
    lines
}

/// A live directory with three sealed generations of real records.
fn populated_dir(tag: &str) -> (PathBuf, u64) {
    let dir = fresh_dir(tag);
    let (live, _) = LiveDb::open(&dir).unwrap();
    let names = ["04-01", "04-02"];
    let mut seq = [0u64; 2];
    let mut last_gen = 0;
    for round in 0..2 {
        for (i, name) in names.iter().enumerate() {
            let node = NodeId::from_name(name).unwrap();
            for line in corpus(name, (round * 2 + i) as u64, 6) {
                live.ingest(node, seq[i], &line).unwrap();
                seq[i] += 1;
            }
        }
        last_gen = live.seal().unwrap().generation;
    }
    drop(live);
    (dir, last_gen)
}

/// CRC damage planted at a seeded position inside the newest sealed
/// generation is detected, repaired byte-identically from the WAL, and
/// the corrupted original lands in quarantine — conservation holds at
/// every step, and a second pass finds nothing left to do.
#[test]
fn seeded_corruption_is_repaired_byte_identical_and_conserved() {
    let seed = chaos_seed();
    let mut rng = Rng::new(seed);
    let (dir, last_gen) = populated_dir(&format!("repair-{seed}"));
    let gen_path = dir.join(gen_file_name(last_gen));
    let pristine = fs::read(&gen_path).unwrap();

    // Corrupt 1-3 bytes at seeded offsets (skipping nothing: header,
    // blocks, and footer are all fair game — every region is CRC'd).
    let mut corrupted = pristine.clone();
    let flips = 1 + rng.below(3) as usize;
    for _ in 0..flips {
        let pos = rng.below(corrupted.len() as u64) as usize;
        corrupted[pos] ^= 0x01 << rng.below(8);
    }
    if corrupted == pristine {
        // A flip of a flip can cancel out; force at least one real bit.
        corrupted[pristine.len() / 2] ^= 0x40;
    }
    fs::write(&gen_path, &corrupted).unwrap();

    let report = scrub_live_dir(&dir, &ScrubConfig::default()).unwrap();
    assert!(report.is_conserved(), "not conserved: {}", report.render());
    assert_eq!(
        (
            report.gens_damaged,
            report.gens_repaired,
            report.gens_unrecoverable
        ),
        (1, 1, 0),
        "unexpected damage accounting: {}",
        report.render()
    );

    // Byte-identical repair: resealing from the WAL reproduces the exact
    // pre-corruption bytes, and the damaged original is preserved in
    // quarantine, not destroyed.
    assert_eq!(
        fs::read(&gen_path).unwrap(),
        pristine,
        "repair did not reproduce the original generation bytes"
    );
    let lost = dir.join(".lost+found");
    let quarantined: Vec<Vec<u8>> = fs::read_dir(&lost)
        .expect("no quarantine directory after a repair")
        .map(|e| fs::read(e.unwrap().path()).unwrap())
        .collect();
    assert!(
        quarantined.iter().any(|bytes| bytes == &corrupted),
        "corrupted original is not preserved in quarantine"
    );

    // fsck agrees the directory is healthy, and scrubbing again is a
    // no-op: same conservation law, zero new work.
    let fsck = fsck_live_dir(&dir).unwrap();
    assert!(fsck.is_conserved(), "fsck after scrub: {}", fsck.render());
    let again: ScrubReport = scrub_live_dir(&dir, &ScrubConfig::default()).unwrap();
    assert!(again.is_conserved());
    assert_eq!(
        (
            again.gens_damaged,
            again.gens_repaired,
            again.gens_unrecoverable
        ),
        (0, 0, 0),
        "second scrub pass still found work: {}",
        again.render()
    );
    assert!(!again.found_damage(), "{}", again.render());

    // The repaired directory reopens and serves.
    let (revived, open) = LiveDb::open(&dir).unwrap();
    assert!(open.served_existing, "repair forced a reseal on reopen");
    drop(revived);
    let _ = fs::remove_dir_all(&dir);
}

/// Dry-run mode reports the same damage but changes nothing: the
/// corrupted bytes stay in place, and conservation still balances
/// (damaged bytes are counted as kept, because they were).
#[test]
fn dry_run_detects_without_mutating() {
    let seed = chaos_seed();
    let (dir, last_gen) = populated_dir(&format!("dry-{seed}"));
    let gen_path = dir.join(gen_file_name(last_gen));
    let pristine = fs::read(&gen_path).unwrap();
    let mut corrupted = pristine.clone();
    corrupted[pristine.len() / 3] ^= 0x10;
    fs::write(&gen_path, &corrupted).unwrap();

    let cfg = ScrubConfig {
        repair: false,
        ..ScrubConfig::default()
    };
    let report = scrub_live_dir(&dir, &cfg).unwrap();
    assert!(report.is_conserved(), "{}", report.render());
    assert_eq!(report.gens_damaged, 1, "{}", report.render());
    assert_eq!(report.gens_repaired, 0, "dry run repaired something");
    assert_eq!(
        fs::read(&gen_path).unwrap(),
        corrupted,
        "dry run mutated the damaged generation"
    );
    assert!(
        !dir.join(".lost+found").exists(),
        "dry run quarantined something"
    );
    let _ = fs::remove_dir_all(&dir);
}
