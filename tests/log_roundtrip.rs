//! End-to-end persistence round trip: a campaign's logs written to disk in
//! the paper's one-file-per-node text layout, read back, and re-extracted
//! must yield byte-identical fault sets. This is the guarantee that the
//! text format is a faithful serialization of the study — and that an
//! `uc analyze <dir>` of an `uc campaign --out <dir>` reproduces the
//! in-memory report.

use std::fs;
use std::path::PathBuf;

use uc_analysis::extract::{extract_node_faults, ExtractConfig};
use uc_faultlog::files::{read_cluster_log, write_cluster_log};
use uc_faultlog::store::ClusterLog;
use unprotected_core::{run_campaign, CampaignConfig};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uc-roundtrip-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn campaign_logs_roundtrip_through_text_files() {
    let cfg = CampaignConfig::small(11, 6);
    let result = run_campaign(&cfg);

    // Keep the test I/O bounded: persist every node except the flood node
    // (whose run-length-compressed store expands to tens of millions of
    // text lines — exercised separately by the `uc` CLI at full scale).
    let flood = result.flood_nodes(0.5);
    let logs: Vec<_> = result
        .completed()
        .filter(|o| !flood.contains(&o.node))
        .map(|o| o.log.clone())
        .collect();
    let node_count = logs.len();
    let cluster = ClusterLog::new(logs);

    let dir = tempdir("campaign");
    let written = write_cluster_log(&dir, &cluster).unwrap();
    assert_eq!(written, node_count);

    let (loaded, issues) = read_cluster_log(&dir).unwrap();
    assert!(issues.bad_lines.is_empty(), "{:?}", issues.bad_lines);
    assert!(issues.skipped_files.is_empty());
    assert_eq!(loaded.raw_record_count(), cluster.raw_record_count());
    assert_eq!(loaded.raw_error_count(), cluster.raw_error_count());

    // Re-extraction over the parsed logs matches the campaign's faults.
    let ecfg = ExtractConfig::default();
    let mut reparsed: Vec<_> = loaded
        .node_logs()
        .iter()
        .flat_map(|log| extract_node_faults(log, &ecfg))
        .collect();
    reparsed.sort_by_key(|f| (f.time, f.node.0, f.vaddr, f.expected, f.actual));
    let original = result.characterized_faults();

    assert_eq!(reparsed.len(), original.len());
    for (a, b) in reparsed.iter().zip(&original) {
        assert_eq!(a.node, b.node);
        assert_eq!(a.time, b.time);
        assert_eq!(a.vaddr, b.vaddr);
        assert_eq!(a.expected, b.expected);
        assert_eq!(a.actual, b.actual);
        assert_eq!(a.raw_logs, b.raw_logs);
        // Temperatures survive the one-decimal text format within 0.05 C.
        match (a.temp, b.temp) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 0.051, "{x} vs {y}"),
            (x, y) => assert_eq!(x.is_some(), y.is_some()),
        }
    }

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn merged_stream_equivalent_after_roundtrip() {
    let cfg = CampaignConfig::small(13, 6);
    let result = run_campaign(&cfg);
    // A couple of interesting nodes only (hot + weak bit) to keep it quick.
    let keep = ["02-04", "04-05"];
    let logs: Vec<_> = result
        .completed()
        .filter(|o| keep.contains(&o.node.to_string().as_str()))
        .map(|o| o.log.clone())
        .collect();
    assert_eq!(logs.len(), 2);
    let cluster = ClusterLog::new(logs);

    let dir = tempdir("merged");
    write_cluster_log(&dir, &cluster).unwrap();
    let (loaded, _) = read_cluster_log(&dir).unwrap();

    let orig: Vec<String> = cluster
        .merged()
        .map(|r| uc_faultlog::codec::format_record(&r))
        .collect();
    let back: Vec<String> = loaded
        .merged()
        .map(|r| uc_faultlog::codec::format_record(&r))
        .collect();
    assert_eq!(orig.len(), back.len());
    assert_eq!(orig, back, "merged text streams identical");

    fs::remove_dir_all(&dir).unwrap();
}
