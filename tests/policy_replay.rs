//! Policy engine contracts, end to end and by property:
//!
//! 1. **Conservation** — every policy accounts for exactly the faults in
//!    the evaluation window: mitigated + missed + unmanaged.
//! 2. **Oracle lower bound** — the clairvoyant per-day argmin costs no
//!    more than any policy, on arbitrary streams (proptest) and against
//!    an *exhaustive* enumeration of every possible action sequence on a
//!    tiny stream (the oracle is the global optimum over all 5^k
//!    assignments, not merely better than our three baselines).
//! 3. **Determinism** — byte-identical comparisons across reruns at a
//!    fixed seed and across worker pools of 1, 2, and 8 threads.
//!
//! The end-to-end variants run through a sealed database and the real
//! `Engine::collect_days` feed; the property tests drive `replay`
//! directly on generated day streams.

use std::fs;
use std::path::Path;

use proptest::prelude::*;

use unprotected_computing::analysis::fault::Fault;
use unprotected_computing::cluster::NodeId;
use unprotected_computing::faultdb::format::write_db;
use unprotected_computing::faultdb::{DayFaults, Engine, WriteOptions};
use unprotected_computing::faultlog::ingest::{recover_text, IngestStats};
use unprotected_computing::faultlog::store::ClusterLog;
use unprotected_computing::parallel::with_thread_limit;
use unprotected_computing::policy::{
    render_csv, render_table, replay, run_comparison, NodeHistory, PolicyKind, ReplayConfig,
};
use unprotected_computing::resilience::{day_cost, CostModel, MitigationAction};
use unprotected_computing::simclock::SimTime;

fn fault(node: u32, secs: i64, vaddr: u64) -> Fault {
    Fault {
        node: NodeId(node),
        time: SimTime::from_secs(secs),
        vaddr,
        expected: 0xffff_ffff,
        actual: 0xffff_fffe,
        temp: None,
        raw_logs: 1,
    }
}

/// Build a contiguous day stream (empties included) from (day, node,
/// vaddr) placements, faults ordered by time within each day.
fn stream(span: i64, placements: &[(i64, u32, u64)]) -> Vec<DayFaults> {
    (0..span)
        .map(|day| {
            let mut faults: Vec<Fault> = placements
                .iter()
                .enumerate()
                .filter(|&(_, &(d, _, _))| d == day)
                .map(|(i, &(d, node, vaddr))| fault(node, d * 86_400 + i as i64, vaddr))
                .collect();
            faults.sort_by_key(|f| (f.time.as_secs(), f.node.0));
            DayFaults { day, faults }
        })
        .collect()
}

/// A month-long sealed database with three node personalities, built
/// through the real ingest + seal pipeline.
fn sealed_campaign_db(dir: &Path) -> Engine {
    const DAY: i64 = 86_400;
    let mut stats = IngestStats::default();
    let mut logs = Vec::new();
    // Volumes stay balanced under the snapshot flood filter (a node
    // holding more than half the raw errors would be excluded).
    for (name, days_and_pages) in [
        // Hot-page repeater: same page daily.
        ("01-01", (2..20).map(|d| (d, 0x5000u64)).collect::<Vec<_>>()),
        // Scattered: a fault every other day on fresh pages.
        (
            "01-09",
            (0..16)
                .map(|k| (2 * k + 1, 0x40_000 + 0x3000 * k as u64))
                .collect(),
        ),
        // Quiet: four isolated faults.
        (
            "05-03",
            vec![
                (6, 0x90_000),
                (13, 0x98_000),
                (19, 0xa0_000),
                (26, 0xa8_000),
            ],
        ),
    ] {
        let mut text = format!("START t=0 node={name} alloc=3221225472 temp=30.0\n");
        for (d, vaddr) in days_and_pages {
            text.push_str(&format!(
                "ERROR t={t} node={name} vaddr=0x{vaddr:08x} page=0x{page:06x} \
                 expected=0xffffffff actual=0xfffffffe temp=39.0\n",
                t = d as i64 * DAY + 600,
                page = vaddr >> 12
            ));
        }
        text.push_str(&format!("END t=2600000 node={name} temp=31.0\n"));
        let rec = recover_text(&text);
        stats.merge(&rec.stats);
        logs.push(rec.log);
    }
    let snap =
        unprotected_computing::faultdb::Snapshot::from_cluster(&ClusterLog::new(logs), stats);
    let path = dir.join("campaign.ucfdb");
    write_db(&snap, &path, &WriteOptions::default()).unwrap();
    Engine::open_auto(&path).unwrap()
}

#[test]
fn sealed_campaign_conservation_bound_and_determinism() {
    let dir = std::env::temp_dir().join(format!("uc-policy-it-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let db = sealed_campaign_db(&dir);
    let days = db.collect_days().unwrap();
    let cfg = ReplayConfig {
        seed: 42,
        ..ReplayConfig::default()
    };

    let cmp = run_comparison(&days, &PolicyKind::ALL, &cfg);
    let oracle = cmp.oracle().unwrap();
    for run in &cmp.runs {
        // Conservation + the oracle bound, per policy.
        assert_eq!(run.eval_faults(), cmp.eval_faults, "{}", run.kind.label());
        assert!(
            run.eval_cost_mnh >= oracle.eval_cost_mnh,
            "{}",
            run.kind.label()
        );
    }
    // The learned policy must never lose to the worst static baseline
    // (the beats-BEST-static claim is the paper-scale acceptance check,
    // exercised on the full campaign in CI and EXPERIMENTS.md — a
    // 30-day toy stream is too short for the bandit to converge).
    let bandit = cmp
        .runs
        .iter()
        .find(|r| r.kind == PolicyKind::Bandit)
        .unwrap();
    let worst_static = unprotected_computing::policy::worst_static(&cmp).unwrap();
    assert!(
        bandit.eval_cost_mnh <= worst_static.eval_cost_mnh,
        "bandit {} mNh lost to the worst static {} ({} mNh)",
        bandit.eval_cost_mnh,
        worst_static.kind.label(),
        worst_static.eval_cost_mnh
    );

    // Byte-identical rerun at the same seed, and across thread counts.
    let table = render_table(&cmp);
    let csv = render_csv(&cmp);
    let again = run_comparison(&days, &PolicyKind::ALL, &cfg);
    assert_eq!(render_table(&again), table);
    assert_eq!(render_csv(&again), csv);
    for threads in [1, 2, 8] {
        let t = with_thread_limit(threads, || {
            render_table(&run_comparison(&days, &PolicyKind::ALL, &cfg))
        });
        assert_eq!(t, table, "diverged at {threads} threads");
    }

    let _ = fs::remove_dir_all(&dir);
}

/// Replicate the replay's managed-decision bookkeeping to extract every
/// (faults_today, hot_faults) decision point plus the unmanaged
/// penalty — the raw material for exhaustive enumeration.
fn decision_points(days: &[DayFaults], cost: &CostModel) -> (Vec<(u64, u64)>, u64) {
    use std::collections::BTreeMap;
    let mut histories: BTreeMap<u32, NodeHistory> = BTreeMap::new();
    let mut points = Vec::new();
    let mut unmanaged_mnh = 0u64;
    for day in days {
        let mut by_node: BTreeMap<u32, Vec<&Fault>> = BTreeMap::new();
        for f in &day.faults {
            by_node.entry(f.node.0).or_default().push(f);
        }
        for (&node, hist) in &histories {
            let today = by_node.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            points.push((today.len() as u64, hist.hot_faults(today)));
        }
        for (&node, faults) in &by_node {
            if !histories.contains_key(&node) {
                unmanaged_mnh += cost.miss_mnh * faults.len() as u64;
            }
        }
        for (node, faults) in &by_node {
            histories
                .entry(*node)
                .or_insert_with(|| NodeHistory::new(day.day))
                .absorb_day(day.day, faults);
        }
    }
    (points, unmanaged_mnh)
}

/// Exhaustive optimality: on a tiny stream, enumerate EVERY possible
/// assignment of actions to decision points (5^k sequences) and verify
/// the oracle's replayed total equals the global minimum. No realizable
/// policy of any kind — learning, static, clairvoyant — can beat it.
#[test]
fn oracle_equals_exhaustive_minimum_on_tiny_stream() {
    // 2 nodes, 7 days, train_days=0: both nodes fault on day 0 (their
    // management start) and then produce 6 decision points each... keep
    // k small: span 4 → k = managed node-days.
    let days = stream(
        4,
        &[
            (0, 1, 0x5000),
            (1, 1, 0x5008), // same page: turns hot on absorb
            (2, 1, 0x5010),
            (0, 2, 0x9000),
            (3, 2, 0x9800),
        ],
    );
    let cfg = ReplayConfig {
        train_days: Some(0),
        ..ReplayConfig::default()
    };
    let (points, unmanaged_mnh) = decision_points(&days, &cfg.cost);
    // Node 1 managed from day 1 (3 decisions), node 2 from day 1 (3).
    assert_eq!(points.len(), 6);

    // Enumerate all 5^6 = 15,625 action assignments.
    let actions = MitigationAction::ALL;
    let mut best = u64::MAX;
    let k = points.len();
    for mut code in 0..5u64.pow(k as u32) {
        let mut total = unmanaged_mnh;
        for &(n, hot) in &points {
            let action = actions[(code % 5) as usize];
            code /= 5;
            total = total.saturating_add(day_cost(&cfg.cost, action, n, hot).cost_mnh);
        }
        best = best.min(total);
    }

    let oracle = replay(&days, PolicyKind::Oracle, &cfg);
    assert_eq!(
        oracle.eval_cost_mnh, best,
        "oracle is not the global optimum over all {k}-point action sequences"
    );
}

/// Day-stream placements over a small grid; streams include empty days
/// and first-fault/management-boundary interactions by construction.
fn placements() -> impl Strategy<Value = Vec<(i64, u32, u64)>> {
    proptest::collection::vec(
        (0i64..12, 1u32..5, 0u64..6).prop_map(|(d, n, p)| (d, n, 0x1000 * (1 + p))),
        0..32,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation and the oracle bound hold on arbitrary streams, for
    /// every policy, at an arbitrary train split and seed.
    #[test]
    fn conservation_and_oracle_bound_hold(
        placements in placements(),
        seed in 0u64..1_000,
        train in 0i64..12,
    ) {
        let days = stream(12, &placements);
        let cfg = ReplayConfig { seed, train_days: Some(train), ..ReplayConfig::default() };
        let cmp = run_comparison(&days, &PolicyKind::ALL, &cfg);
        let oracle = cmp.oracle().unwrap();
        for run in &cmp.runs {
            prop_assert_eq!(run.eval_faults(), cmp.eval_faults);
            prop_assert!(run.eval_cost_mnh >= oracle.eval_cost_mnh,
                "{} ({} mNh) beat the oracle ({} mNh)",
                run.kind.label(), run.eval_cost_mnh, oracle.eval_cost_mnh);
        }
    }

    /// Replays are deterministic: same stream, same seed, same bytes —
    /// including under different worker pools.
    #[test]
    fn replay_is_deterministic(
        placements in placements(),
        seed in 0u64..1_000,
    ) {
        let days = stream(12, &placements);
        let cfg = ReplayConfig { seed, ..ReplayConfig::default() };
        let a = run_comparison(&days, &PolicyKind::ALL, &cfg);
        let b = run_comparison(&days, &PolicyKind::ALL, &cfg);
        prop_assert_eq!(&a, &b);
        let t1 = with_thread_limit(1, || run_comparison(&days, &PolicyKind::ALL, &cfg));
        prop_assert_eq!(&a, &t1);
        prop_assert_eq!(render_table(&a), render_table(&t1));
    }
}
