//! Checkpoint codec properties (DESIGN.md §7.2): a written checkpoint
//! round-trips bit-exactly through the public API, and any damage —
//! truncation at an arbitrary byte offset, or a single flipped bit —
//! makes the checkpoint read as missing. Never a panic, never a
//! silently-wrong resume.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use proptest::prelude::*;

use unprotected_core::checkpoint::{read_node_checkpoint, write_node_checkpoint};
use unprotected_core::{run_campaign, CampaignConfig, NodeSim};

const SEED: u64 = 42;

/// One small campaign's completed sims, computed once and shared by
/// every proptest case (simulation is the expensive part, not I/O).
fn sims() -> &'static Vec<NodeSim> {
    static SIMS: OnceLock<Vec<NodeSim>> = OnceLock::new();
    SIMS.get_or_init(|| {
        let result = run_campaign(&CampaignConfig::small(SEED, 6));
        let sims: Vec<NodeSim> = result.completed().cloned().collect();
        assert!(sims.len() > 4, "campaign too small: {}", sims.len());
        sims
    })
}

/// A fresh scratch directory per case; `tag` keeps parallel tests apart.
fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uc-ckpt-props-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_same_sim(a: &NodeSim, b: &NodeSim) {
    assert_eq!(a.node, b.node);
    assert_eq!(a.log.entries(), b.log.entries(), "node {}", a.node);
    assert_eq!(a.faults, b.faults, "node {}", a.node);
    assert_eq!(a.monitored_hours.to_bits(), b.monitored_hours.to_bits());
    assert_eq!(a.terabyte_hours.to_bits(), b.terabyte_hours.to_bits());
}

fn ckpt_file(dir: &Path, sim: &NodeSim) -> PathBuf {
    dir.join(format!("node-{}.ckpt", sim.node))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Write → read returns the simulation bit-for-bit: entries, faults,
    /// and the f64 hour counters compared by raw bits.
    #[test]
    fn checkpoint_roundtrips_bit_exact(idx in 0usize..64) {
        let sims = sims();
        let sim = &sims[idx % sims.len()];
        let dir = tempdir("roundtrip");
        write_node_checkpoint(&dir, SEED, sim).unwrap();
        let back = read_node_checkpoint(&dir, SEED, sim.node)
            .expect("clean checkpoint must read back");
        assert_same_sim(&back, sim);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Truncation at ANY byte offset: the full file reads back intact;
    /// any proper prefix is treated as missing (the frame scan or the
    /// entry-count check rejects it) — and reading never panics.
    #[test]
    fn truncated_checkpoint_is_treated_as_missing(
        idx in 0usize..64,
        cut_permille in 0u32..=1000,
    ) {
        let sims = sims();
        let sim = &sims[idx % sims.len()];
        let dir = tempdir("truncate");
        write_node_checkpoint(&dir, SEED, sim).unwrap();
        let path = ckpt_file(&dir, sim);
        let bytes = fs::read(&path).unwrap();
        let cut = (bytes.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        fs::write(&path, &bytes[..cut]).unwrap();

        match read_node_checkpoint(&dir, SEED, sim.node) {
            Some(back) => {
                prop_assert_eq!(cut, bytes.len(), "a proper prefix decoded");
                assert_same_sim(&back, sim);
            }
            None => prop_assert!(cut < bytes.len(), "the intact file must decode"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A single flipped bit anywhere in the file — magic, frame header,
    /// stored CRC, or payload — is always detected: the read returns
    /// `None` and the node recomputes instead of resuming wrong.
    #[test]
    fn bit_flipped_checkpoint_is_treated_as_missing(
        idx in 0usize..64,
        pos_permille in 0u32..1000,
        bit in 0u8..8,
    ) {
        let sims = sims();
        let sim = &sims[idx % sims.len()];
        let dir = tempdir("bitflip");
        write_node_checkpoint(&dir, SEED, sim).unwrap();
        let path = ckpt_file(&dir, sim);
        let mut bytes = fs::read(&path).unwrap();
        let pos = (bytes.len() as u64 * u64::from(pos_permille) / 1000) as usize;
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        fs::write(&path, &bytes).unwrap();

        prop_assert!(
            read_node_checkpoint(&dir, SEED, sim.node).is_none(),
            "flipped bit {bit} at byte {pos} went undetected"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
