//! Failover end-to-end (DESIGN.md §11): a replica follows a primary over
//! a hostile chaos link, catches up byte-identically, is promoted over
//! the query wire after the primary dies, serves exactly the batch
//! oracle of everything it acked — and the partitioned ex-primary, which
//! accepted a divergent tail the replica never saw, is fenced with a
//! typed error the moment it tries to rejoin.
//!
//! Seed the fault schedule with `UC_CHAOS_SEED` (default 1); CI runs
//! several seeds.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use uc_cluster::NodeId;
use uc_faultdb::server::SELFTEST_QUERIES;
use uc_faultdb::{
    build_db, stream_lines, Client, Engine, FaultDb, IngestConfig, IngestServer, LiveDb, NodeAdmin,
    QueryOptions, ReplicaConfig, Replication, Response, Role, ServeConfig, Server, ServerAdmin,
    StreamOptions, WriteOptions,
};
use uc_faultlog::chaos::NetChaosConfig;
use uc_faultlog::durable::RetryPolicy;

fn chaos_seed() -> u64 {
    std::env::var("UC_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uc-failover-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn corpus(node: &str, salt: u64, records: usize) -> Vec<String> {
    let mut lines = Vec::with_capacity(records + 2);
    lines.push(format!("START t=0 node={node} alloc=3221225472 temp=30.0"));
    for k in 0..records {
        let vaddr = 0x3000 + 0x1c0 * (k as u64) + (salt << 24);
        lines.push(format!(
            "ERROR t={t} node={node} vaddr=0x{vaddr:08x} page=0x{page:06x} \
             expected=0xffffffff actual=0xfffffffe temp=33.0",
            t = 150 + 5100 * (k as i64),
            page = vaddr >> 12
        ));
    }
    lines.push(format!(
        "END t={t} node={node} temp=31.0",
        t = 5100 * records as i64 + 400
    ));
    lines
}

fn chaotic_opts(seed: u64) -> StreamOptions {
    StreamOptions {
        batch: 4,
        retry: RetryPolicy {
            max_attempts: 80,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
        },
        chaos: Some(NetChaosConfig::hostile(seed)),
        ..StreamOptions::default()
    }
}

/// Wait until the replica's status matches the primary's sealed state.
fn await_convergence(primary: &LiveDb, replica: &LiveDb, what: &str) {
    let want = primary.status();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let got = replica.status();
        if got.records == want.records
            && got.stream_crc == want.stream_crc
            && got.generation == want.generation
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{what}: replica stuck at {}/{} records, gen {}/{}",
            got.records,
            want.records,
            got.generation,
            want.generation
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Every `gen-*.ucfdb` present in BOTH directories must be byte-equal.
fn assert_gens_byte_identical(a: &Path, b: &Path) {
    let mut compared = 0usize;
    for entry in fs::read_dir(a).unwrap().map(|e| e.unwrap()) {
        let name = entry.file_name().to_str().unwrap().to_string();
        if !(name.starts_with("gen-") && name.ends_with(".ucfdb")) {
            continue;
        }
        let peer = b.join(&name);
        if !peer.exists() {
            continue;
        }
        assert_eq!(
            fs::read(entry.path()).unwrap(),
            fs::read(&peer).unwrap(),
            "{name}: replica generation diverges from the primary's bytes"
        );
        compared += 1;
    }
    assert!(compared >= 2, "only {compared} generations compared");
}

fn answers(db: &Engine) -> Vec<Vec<String>> {
    uc_parallel::with_thread_limit(1, || {
        SELFTEST_QUERIES
            .iter()
            .map(|q| db.query(q, &QueryOptions::default()).unwrap().lines)
            .collect()
    })
}

fn build_oracle(tag: &str, lines_by_node: &BTreeMap<String, Vec<String>>) -> PathBuf {
    let logdir = fresh_dir(&format!("{tag}-oracle-logs"));
    for (node, lines) in lines_by_node {
        let mut text = lines.join("\n");
        text.push('\n');
        fs::write(logdir.join(format!("node-{node}.log")), text).unwrap();
    }
    let out = std::env::temp_dir().join(format!("uc-failover-{tag}-{}.ucfdb", std::process::id()));
    let _ = fs::remove_file(&out);
    build_db(&logdir, &out, &WriteOptions::default()).unwrap();
    let _ = fs::remove_dir_all(&logdir);
    out
}

/// The full life of a replicated pair: chaotic catch-up, wire-driven
/// promotion, client resume on the new primary, and fencing of the
/// divergent ex-primary.
#[test]
fn failover_promotes_replica_and_fences_divergent_ex_primary() {
    let seed = chaos_seed();
    let names = ["03-07", "03-08"];
    let nodes: Vec<NodeId> = names
        .iter()
        .map(|n| NodeId::from_name(n).unwrap())
        .collect();
    // 12 lines per node (START + 10 ERROR + END); the first 8 are the
    // commonly-replicated prefix, the rest diverge per branch below.
    let corpora: Vec<Vec<String>> = names
        .iter()
        .enumerate()
        .map(|(i, n)| corpus(n, i as u64, 10))
        .collect();
    const PREFIX: usize = 8;

    // --- primary A with a role-aware ingest endpoint.
    let dir_a = fresh_dir("a");
    let (live_a, _) = LiveDb::open(&dir_a).unwrap();
    let live_a = Arc::new(live_a);
    let ingest_a = IngestServer::start_with_role(
        Arc::clone(&live_a),
        &IngestConfig::default(),
        Some(Arc::new(Role::primary())),
    )
    .unwrap();
    let addr_a = ingest_a.local_addr();

    // --- replica B: sync loop over a hostile link, role-aware ingest,
    // query endpoint with the replication admin answering PROMOTE.
    let dir_b = fresh_dir("b");
    let (live_b, _) = LiveDb::open(&dir_b).unwrap();
    let live_b = Arc::new(live_b);
    let mut rcfg = ReplicaConfig::new(&addr_a.to_string());
    rcfg.poll_interval = Duration::from_millis(5);
    rcfg.chaos = Some(NetChaosConfig::hostile(seed ^ 0xB0B0));
    let repl = Arc::new(Replication::start(Arc::clone(&live_b), rcfg));
    let ingest_b = IngestServer::start_with_role(
        Arc::clone(&live_b),
        &IngestConfig::default(),
        Some(repl.role()),
    )
    .unwrap();
    let addr_b = ingest_b.local_addr();
    let admin: Arc<dyn ServerAdmin> =
        Arc::new(NodeAdmin::replica(Arc::clone(&live_b), Arc::clone(&repl)));
    let query_b =
        Server::start_with_admin(live_b.handle(), &ServeConfig::default(), Some(admin)).unwrap();

    // --- phase 1: stream the common prefix into A under chaos, seal,
    // and wait for B to catch up byte-identically.
    for (i, node) in nodes.iter().enumerate() {
        let report = stream_lines(
            addr_a,
            *node,
            &corpora[i][..PREFIX],
            &chaotic_opts(seed ^ (i as u64) << 8),
            None,
        )
        .unwrap();
        assert_eq!(report.acked, PREFIX as u64);
    }
    live_a.seal().unwrap();
    await_convergence(&live_a, &live_b, "catch-up");
    assert_gens_byte_identical(&dir_a, &dir_b);
    let stats = repl.stats();
    assert_eq!(stats.lag, 0, "converged replica still reports lag");
    assert_eq!(stats.role, "replica");

    // A readonly replica refuses direct pushes with a typed error.
    let refused = stream_lines(
        addr_b,
        nodes[0],
        &corpora[0],
        &StreamOptions::default(),
        None,
    );
    let msg = refused
        .expect_err("readonly replica accepted a push")
        .to_string();
    assert!(msg.contains("readonly"), "untyped refusal: {msg}");

    // --- phase 2: promotion over the query wire. B stops following and
    // bumps its epoch; the divergent tail pushed to A afterwards is a
    // fork B never sees.
    let mut client = Client::connect(query_b.local_addr()).unwrap();
    match client.request("PROMOTE").unwrap() {
        Response::Ok(lines) => assert_eq!(lines, vec!["epoch 1".to_string()]),
        Response::Err { kind, message } => panic!("PROMOTE refused: {kind}: {message}"),
    }
    drop(client);
    assert_eq!(live_b.epoch(), 1);
    assert!(!repl.role().is_readonly(), "promoted node still readonly");

    // A keeps accepting its own tail (the partition writes), then dies.
    for (i, node) in nodes.iter().enumerate() {
        stream_lines(addr_a, *node, &corpora[i], &StreamOptions::default(), None).unwrap();
    }
    live_a.seal().unwrap();
    ingest_a.shutdown();
    ingest_a.join();
    let records_a = live_a.status().records;
    drop(live_a);

    // --- phase 3: clients resume against promoted B with a *different*
    // tail (same seqs, different bytes — a true fork). Exactly-once
    // resume: B already holds the prefix, so only the tail is new.
    let forked: Vec<Vec<String>> = corpora
        .iter()
        .map(|lines| {
            let mut lines = lines.clone();
            for line in lines.iter_mut().skip(PREFIX) {
                *line = line.replace("temp=33.0", "temp=35.5");
            }
            lines
        })
        .collect();
    for (i, node) in nodes.iter().enumerate() {
        let report = stream_lines(
            addr_b,
            *node,
            &forked[i],
            &chaotic_opts(seed ^ 0xF0F0 ^ i as u64),
            None,
        )
        .unwrap();
        assert_eq!(report.acked, forked[i].len() as u64);
    }
    live_b.seal().unwrap();

    // Promoted B answers exactly like a batch build over what it acked.
    let sealed: BTreeMap<String, Vec<String>> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.to_string(), forked[i].clone()))
        .collect();
    let oracle_path = build_oracle("post-promote", &sealed);
    let oracle: Engine = std::sync::Arc::new(FaultDb::open(&oracle_path).unwrap()).into();
    assert_eq!(
        answers(&live_b.handle().current()),
        answers(&oracle),
        "promoted replica diverged from the batch oracle"
    );
    let _ = fs::remove_file(&oracle_path);

    // --- phase 4: the ex-primary rejoins as a replica of B. Its WAL
    // holds the same number of records with different bytes — a fork the
    // cursor CRC catches. B must fence it (stale epoch), typed.
    let (live_a2, _) = LiveDb::open(&dir_a).unwrap();
    assert_eq!(live_a2.status().records, records_a);
    let live_a2 = Arc::new(live_a2);
    let mut rejoin = ReplicaConfig::new(&addr_b.to_string());
    rejoin.poll_interval = Duration::from_millis(5);
    rejoin.retry = RetryPolicy {
        max_attempts: 5,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(10),
    };
    let repl_a = Replication::start(Arc::clone(&live_a2), rejoin);
    let deadline = Instant::now() + Duration::from_secs(30);
    while !repl_a.role().is_fenced() {
        assert!(
            Instant::now() < deadline,
            "divergent ex-primary was never fenced: {:?}",
            repl_a.stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = repl_a.stats();
    assert!(stats.fenced);
    let reason = repl_a
        .role()
        .fence_reason()
        .expect("fenced without a recorded reason");
    assert!(
        reason.contains("fenced") || reason.contains("epoch") || reason.contains("crc"),
        "opaque fence reason: {reason}"
    );

    // A fenced node's own ingest endpoint refuses pushes, typed.
    let ingest_a2 = IngestServer::start_with_role(
        Arc::clone(&live_a2),
        &IngestConfig::default(),
        Some(repl_a.role()),
    )
    .unwrap();
    let refused = stream_lines(
        ingest_a2.local_addr(),
        nodes[0],
        &corpora[0],
        &StreamOptions::default(),
        None,
    );
    let msg = refused
        .expect_err("fenced node accepted a push")
        .to_string();
    assert!(msg.contains("fenced"), "untyped fenced refusal: {msg}");

    // Teardown.
    ingest_a2.shutdown();
    ingest_a2.join();
    ingest_b.shutdown();
    ingest_b.join();
    query_b.shutdown_handle().shutdown();
    query_b.join();
    drop(repl_a);
    drop(repl);
    drop(live_a2);
    drop(live_b);
    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}
