//! The crash matrix (DESIGN.md §7.2): simulate a crash at EVERY flush
//! boundary of the durable checkpoint store — torn mid-frame or cut
//! clean at the boundary, sealed or still a `.tmp` — then run fsck and
//! resume. The resumed campaign must reproduce the uninterrupted run's
//! report byte-for-byte, and fsck's accounting must conserve every byte.
//!
//! `UC_CHAOS_SEED` (default 1) varies the campaign seed so a CI matrix
//! exercises different corpora with the same invariants.

use std::fs;
use std::path::PathBuf;

use uc_faultlog::durable::{
    fsck_dir, scan_segment_bytes, write_cluster_log_durable, FRAME_HEADER_LEN, MAGIC,
};
use uc_faultlog::ingest::read_cluster_log_recovering;
use uc_faultlog::store::ClusterLog;
use unprotected_core::checkpoint::run_campaign_checkpointed;
use unprotected_core::{render, run_campaign, CampaignConfig, Report};

fn chaos_seed() -> u64 {
    std::env::var("UC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "uc-crash-matrix-{tag}-{}-{}",
        chaos_seed(),
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The byte offsets at which the durable writer flushed `bytes`: after
/// every `stride = ceil(n/4)` frames, plus the sealed end of file. This
/// mirrors the writer's contract; the matrix crashes at each of them.
fn flush_boundaries(bytes: &[u8]) -> Vec<u64> {
    let scan = scan_segment_bytes(bytes);
    assert!(scan.damage.is_none(), "matrix input must be pristine");
    let n = scan.payloads.len();
    let stride = n.div_ceil(4).max(1);
    let mut boundaries = Vec::new();
    let mut pos = MAGIC.len() as u64;
    for (i, p) in scan.payloads.iter().enumerate() {
        pos += (FRAME_HEADER_LEN + p.len()) as u64;
        if (i + 1) % stride == 0 {
            boundaries.push(pos);
        }
    }
    if boundaries.last() != Some(&(bytes.len() as u64)) {
        boundaries.push(bytes.len() as u64);
    }
    boundaries
}

/// Crash at every checkpoint flush boundary, fsck, resume: the report is
/// byte-identical to an uninterrupted run's, at every crash point.
#[test]
fn crash_at_every_flush_boundary_resumes_byte_identical() {
    let cfg = CampaignConfig::small(40 + chaos_seed(), 6);
    let reference = render::full_report(&Report::build(&run_campaign(&cfg)));

    // One clean checkpointed run provides the pristine snapshot the
    // matrix re-damages per iteration.
    let dir = tempdir("ckpt");
    let first = run_campaign_checkpointed(&cfg, &dir);
    assert_eq!(render::full_report(&Report::build(&first)), reference);
    let mut snapshot: Vec<(String, Vec<u8>)> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".ckpt"))
        .map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            (name, fs::read(e.path()).unwrap())
        })
        .collect();
    snapshot.sort();
    assert!(
        snapshot.len() > 4,
        "too few checkpoints: {}",
        snapshot.len()
    );

    let max_boundaries = snapshot
        .iter()
        .map(|(_, bytes)| flush_boundaries(bytes).len())
        .max()
        .unwrap();

    for k in 0..max_boundaries {
        // Rebuild the directory as a crash at boundary k would leave it:
        // every file cut at its k-th flush boundary (clamped), odd
        // iterations torn a few bytes into the never-flushed next frame,
        // and any incomplete file still unsealed under its `.tmp` name.
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        for (name, bytes) in &snapshot {
            let boundaries = flush_boundaries(bytes);
            let cut = boundaries[k.min(boundaries.len() - 1)] as usize;
            let torn = if k % 2 == 1 { 3 } else { 0 };
            let cut = (cut + torn).min(bytes.len());
            if cut == bytes.len() {
                fs::write(dir.join(name), bytes).unwrap();
            } else {
                fs::write(dir.join(format!("{name}.tmp")), &bytes[..cut]).unwrap();
            }
        }

        let report = fsck_dir(&dir).unwrap();
        assert!(
            report.is_conserved(),
            "boundary {k}: fsck accounting broken: {}",
            report.summary()
        );

        let resumed = run_campaign_checkpointed(&cfg, &dir);
        assert!(!resumed.is_degraded(), "boundary {k}: degraded resume");
        assert_eq!(
            render::full_report(&Report::build(&resumed)),
            reference,
            "boundary {k}: resumed report diverged from uninterrupted run"
        );
    }

    fs::remove_dir_all(&dir).unwrap();
}

/// Every flush boundary of every durable log file is a valid crash
/// point: a cut exactly at the boundary scans clean, and a cut torn into
/// the next frame scans back to exactly the flushed prefix.
#[test]
fn every_log_flush_boundary_is_recoverable() {
    let cfg = CampaignConfig::small(40 + chaos_seed(), 6);
    let result = run_campaign(&cfg);
    let flood = result.flood_nodes(0.5);
    let logs: Vec<_> = result
        .completed()
        .filter(|o| !flood.contains(&o.node))
        .map(|o| o.log.clone())
        .take(4)
        .collect();
    assert_eq!(logs.len(), 4);

    let dir = tempdir("dlog");
    let outcome = write_cluster_log_durable(&dir, &ClusterLog::new(logs));
    assert!(outcome.is_fully_durable(), "{:?}", outcome.failures);

    let mut checked = 0usize;
    for sealed in &outcome.sealed {
        let bytes = fs::read(&sealed.path).unwrap();
        assert_eq!(bytes.len() as u64, sealed.bytes);
        for &boundary in &sealed.flush_boundaries {
            // Clean cut at the boundary: a valid, damage-free prefix.
            let clean = scan_segment_bytes(&bytes[..boundary as usize]);
            assert!(
                clean.damage.is_none(),
                "{}: boundary {boundary}",
                sealed.file_name
            );
            assert_eq!(clean.valid_bytes, boundary);

            // Torn cut a few bytes past it: the scan trims back to the
            // flushed prefix and reports the tail as damage.
            let cut = ((boundary as usize) + 3).min(bytes.len());
            if cut > boundary as usize {
                let torn = scan_segment_bytes(&bytes[..cut]);
                assert!(torn.damage.is_some(), "{}: cut {cut}", sealed.file_name);
                assert_eq!(torn.valid_bytes, boundary);
                assert_eq!(torn.torn_bytes(), cut as u64 - boundary);
            }
            checked += 1;
        }
    }
    assert!(checked >= 8, "matrix too small: {checked} boundaries");

    // On-disk spot check: tear every log at its middle boundary, fsck,
    // and ingest — the salvaged corpus is exactly the flushed prefixes.
    let mut expected_lines = 0u64;
    for sealed in &outcome.sealed {
        let bytes = fs::read(&sealed.path).unwrap();
        let mid = sealed.flush_boundaries[sealed.flush_boundaries.len() / 2] as usize;
        let cut = (mid + 3).min(bytes.len());
        expected_lines += scan_segment_bytes(&bytes[..mid]).payloads.len() as u64;
        fs::write(&sealed.path, &bytes[..cut]).unwrap();
    }
    let report = fsck_dir(&dir).unwrap();
    assert!(report.is_conserved(), "{}", report.summary());
    assert!(report.files_salvaged > 0);

    let (cluster, stats) = read_cluster_log_recovering(&dir).unwrap();
    assert!(stats.is_conserved(), "{stats:?}");
    let total: u64 = cluster
        .node_logs()
        .iter()
        .map(|l| l.entries().len() as u64)
        .sum();
    assert_eq!(
        total, expected_lines,
        "salvage kept exactly the flushed prefix"
    );

    fs::remove_dir_all(&dir).unwrap();
}
