//! Property tests for the recovering ingestion path: on *any* input —
//! valid log text, mangled log text, or pure garbage — recovery must not
//! panic and its accounting must conserve lines (every line read is
//! either kept or attributed to exactly one drop category).

use proptest::prelude::*;
use uc_faultlog::ingest::recover_text;

proptest! {
    #[test]
    fn recovery_conserves_counts_on_arbitrary_text(text in "\\PC*") {
        let rec = recover_text(&text);
        prop_assert!(rec.stats.is_conserved(), "stats: {:?}", rec.stats);
        prop_assert_eq!(
            rec.stats.lines_read,
            rec.stats.records_kept + rec.stats.dropped()
        );
    }

    #[test]
    fn recovery_conserves_counts_on_mangled_log_lines(
        lines in prop::collection::vec(
            prop_oneof![
                Just("START t=3600 node=01-02 alloc=1048576 pattern=alternating".to_string()),
                Just("ERROR t=3700 node=01-02 vaddr=0x00fa3b9c page=0x0003e8 \
                      expected=0xffffffff actual=0xffff7bff temp=35.0".to_string()),
                Just("END t=7200 node=01-02 errors=1 temp=36.1".to_string()),
                Just(String::new()),
                "[ =x0-9a-fA-F#]{0,40}",
            ],
            0..40,
        ),
        cut in 0usize..200,
    ) {
        // Join and then cut the tail to simulate a torn final line. All
        // strategy output is ASCII, so byte slicing is safe.
        let mut text = lines.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        let cut = cut.min(text.len());
        let torn = &text[..text.len() - cut];
        let rec = recover_text(torn);
        prop_assert!(rec.stats.is_conserved(), "stats: {:?}", rec.stats);
        // Kept records never exceed parseable input lines.
        prop_assert!(rec.stats.records_kept <= rec.stats.lines_read);
    }
}
