//! Live-ingest properties (DESIGN.md §9): the two contracts the
//! streaming path must hold under *any* schedule, not just the ones the
//! unit tests pick by hand.
//!
//! 1. Snapshot-queried answers are batch answers: however ingest
//!    batches, WAL flushes, generation seals, and queries interleave,
//!    every query over the live handle returns exactly what a batch
//!    `build-db` over the records sealed so far would return.
//! 2. Reconnect-with-replay is exactly-once: a client streaming through
//!    a hostile chaos transport — drops, partial writes, garbage,
//!    disconnects — never duplicates and never loses a record, whatever
//!    the fault schedule.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use uc_cluster::NodeId;
use uc_faultdb::{
    build_db, stream_lines, FaultDb, IngestConfig, IngestServer, LiveDb, QueryOptions,
    StreamOptions, WriteOptions,
};
use uc_faultlog::chaos::{NetChaosConfig, NetChaosTally};
use uc_faultlog::durable::RetryPolicy;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uc-live-props-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn corpus(node: &str, salt: u64, records: usize) -> Vec<String> {
    let mut lines = Vec::with_capacity(records + 2);
    lines.push(format!("START t=0 node={node} alloc=3221225472 temp=30.0"));
    for k in 0..records {
        let vaddr = 0x2000 + 0x140 * (k as u64) + (salt << 24);
        lines.push(format!(
            "ERROR t={t} node={node} vaddr=0x{vaddr:08x} page=0x{page:06x} \
             expected=0xffffffff actual=0xfffffffe temp=33.0",
            t = 90 + 4800 * (k as i64),
            page = vaddr >> 12
        ));
    }
    lines.push(format!(
        "END t={t} node={node} temp=31.0",
        t = 4800 * records as i64 + 200
    ));
    lines
}

/// Batch oracle: the canonical `count` answer for a sealed record set.
fn oracle_count(tag: &str, sealed: &BTreeMap<String, Vec<String>>) -> Vec<String> {
    if sealed.values().all(Vec::is_empty) {
        return vec!["0".to_string()];
    }
    let logdir = fresh_dir(&format!("{tag}-logs"));
    for (node, lines) in sealed {
        if lines.is_empty() {
            continue;
        }
        let mut text = lines.join("\n");
        text.push('\n');
        fs::write(logdir.join(format!("node-{node}.log")), text).unwrap();
    }
    let out = logdir.join("oracle.ucfdb");
    build_db(&logdir, &out, &WriteOptions::default()).unwrap();
    let db = FaultDb::open(&out).unwrap();
    let lines = uc_parallel::with_thread_limit(1, || {
        db.query("count", &QueryOptions::default()).unwrap().lines
    });
    let _ = fs::remove_dir_all(&logdir);
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any interleaving of ingest, flush, seal, and query ops: every
    /// query sees exactly the batch-built answer for the sealed prefix
    /// — never a partial flush, never a stale extra record.
    #[test]
    fn interleaved_queries_always_match_batch_oracle(
        ops in prop::collection::vec(0u8..10, 6..28),
        pick in 0u64..(1 << 30),
    ) {
        let tag = format!("interleave-{pick}");
        let dir = fresh_dir(&tag);
        let (live, _) = LiveDb::open(&dir).unwrap();

        let names = ["01-03", "01-04"];
        let nodes: Vec<NodeId> = names.iter().map(|n| NodeId::from_name(n).unwrap()).collect();
        let corpora: Vec<Vec<String>> =
            names.iter().enumerate().map(|(i, n)| corpus(n, i as u64, 10)).collect();
        let mut accepted = [0usize; 2];
        let mut sealed: BTreeMap<String, Vec<String>> =
            names.iter().map(|n| (n.to_string(), Vec::new())).collect();
        let mut checks = 0u32;

        for (step, op) in ops.iter().enumerate() {
            match op {
                0..=4 => {
                    let i = (pick as usize + step) % names.len();
                    for _ in 0..3 {
                        if accepted[i] >= corpora[i].len() {
                            break;
                        }
                        live.ingest(nodes[i], accepted[i] as u64, &corpora[i][accepted[i]])
                            .unwrap();
                        accepted[i] += 1;
                    }
                }
                5..=6 => live.flush().unwrap(),
                7 => {
                    live.seal().unwrap();
                    for (i, name) in names.iter().enumerate() {
                        sealed.insert(name.to_string(), corpora[i][..accepted[i]].to_vec());
                    }
                }
                _ => {
                    let db = live.handle().current();
                    let got = uc_parallel::with_thread_limit(1, || {
                        db.query("count", &QueryOptions::default()).unwrap().lines
                    });
                    let want = oracle_count(&format!("{tag}-s{step}"), &sealed);
                    prop_assert_eq!(got, want, "step {}", step);
                    checks += 1;
                }
            }
        }
        // End on a seal so the case always exercises at least one
        // publish-then-query cycle.
        live.seal().unwrap();
        for (i, name) in names.iter().enumerate() {
            sealed.insert(name.to_string(), corpora[i][..accepted[i]].to_vec());
        }
        let db = live.handle().current();
        let got = uc_parallel::with_thread_limit(1, || {
            db.query("count", &QueryOptions::default()).unwrap().lines
        });
        let want = oracle_count(&format!("{tag}-final"), &sealed);
        prop_assert_eq!(got, want, "final, after {} mid-stream checks", checks);
        drop(live);
        let _ = fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Chaos replay is exactly-once for any fault schedule: however the
    /// transport mangles the session, the server ends up with each
    /// record accepted exactly once, in order.
    #[test]
    fn reconnect_replay_is_exactly_once(seed in 1u64..(1 << 32)) {
        let dir = fresh_dir(&format!("replay-{seed}"));
        let (live, _) = LiveDb::open(&dir).unwrap();
        let live = Arc::new(live);
        let server = IngestServer::start(Arc::clone(&live), &IngestConfig::default()).unwrap();
        let addr = server.local_addr();

        // Two nodes, quiet one first, so neither holds more than half
        // the raw errors (the flood filter drops >50% shares).
        let quiet_node = NodeId::from_name("02-05").unwrap();
        let quiet_lines = corpus("02-05", 1, 12);
        stream_lines(addr, quiet_node, &quiet_lines, &StreamOptions::default(), None).unwrap();

        let chaos_node = NodeId::from_name("02-04").unwrap();
        let chaos_lines = corpus("02-04", 0, 12);
        let opts = StreamOptions {
            batch: 4,
            retry: RetryPolicy {
                max_attempts: 80,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(20),
            },
            chaos: Some(NetChaosConfig::hostile(seed)),
            ..StreamOptions::default()
        };
        let tally = Arc::new(NetChaosTally::default());
        let report =
            stream_lines(addr, chaos_node, &chaos_lines, &opts, Some(Arc::clone(&tally)))
                .unwrap();
        prop_assert_eq!(report.acked, chaos_lines.len() as u64);

        // Exactly once: the server's cursors sit exactly past the last
        // record, and the total accepted count admits no duplicates.
        prop_assert_eq!(live.next_seq(chaos_node), chaos_lines.len() as u64);
        prop_assert_eq!(live.next_seq(quiet_node), quiet_lines.len() as u64);
        let status = live.seal().unwrap();
        prop_assert_eq!(status.records, (chaos_lines.len() + quiet_lines.len()) as u64);

        // And the sealed answers equal the batch oracle over the two
        // corpora — nothing lost, nothing doubled, order preserved.
        let sealed: BTreeMap<String, Vec<String>> = [
            ("02-04".to_string(), chaos_lines.clone()),
            ("02-05".to_string(), quiet_lines.clone()),
        ]
        .into();
        let want = oracle_count(&format!("replay-{seed}"), &sealed);
        let db = live.handle().current();
        let got = uc_parallel::with_thread_limit(1, || {
            db.query("count", &QueryOptions::default()).unwrap().lines
        });
        prop_assert_eq!(got, want);

        server.shutdown();
        server.join();
        drop(live);
        let _ = fs::remove_dir_all(&dir);
    }
}
