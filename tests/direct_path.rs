//! Differential proof of the direct campaign→db streaming path.
//!
//! The contract (DESIGN.md §10): for any config, `campaign_to_db`
//! (simulate → in-memory recovery → fold → seal) produces a database
//! **byte-identical** to the text oracle (simulate → write plain text
//! logs → `build_db`), at every thread count, and under degraded
//! rosters where nodes fail. These tests sweep seeds × thread counts ×
//! rosters and compare the sealed files byte for byte.

use std::path::{Path, PathBuf};

use unprotected_computing::cluster::NodeId;
use unprotected_computing::core::{run_campaign_checkpointed, CampaignConfig};
use unprotected_computing::direct::campaign_to_db;
use unprotected_computing::faultdb::{build_db, WriteOptions};
use unprotected_computing::faultlog::files::write_cluster_log;
use unprotected_computing::parallel::with_thread_limit;
use unprotected_computing::simclock::SimDuration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uc-direct-path-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The text oracle: run the campaign the classic way, write the plain
/// text corpus, build the db from it. Returns the sealed file's bytes.
fn oracle_bytes(cfg: &CampaignConfig, base: &Path) -> Vec<u8> {
    let logs = base.join("logs");
    std::fs::create_dir_all(&logs).unwrap();
    let result = run_campaign_checkpointed(cfg, &base.join("oracle-ckpt"));
    write_cluster_log(&logs, &result.cluster_log()).unwrap();
    let db = base.join("oracle.ucfdb");
    build_db(&logs, &db, &WriteOptions::default()).unwrap();
    std::fs::read(&db).unwrap()
}

/// The direct path at a given thread count. Returns the sealed bytes.
fn direct_bytes(cfg: &CampaignConfig, base: &Path, threads: usize, tag: &str) -> Vec<u8> {
    let db = base.join(format!("direct-{tag}.ucfdb"));
    let output = with_thread_limit(threads, || {
        campaign_to_db(
            cfg,
            &base.join(format!("direct-ckpt-{tag}")),
            &db,
            &WriteOptions::default(),
        )
    })
    .unwrap();
    assert!(output.summary.rows > 0, "campaign produced no faults");
    std::fs::read(&db).unwrap()
}

fn tiny_config(seed: u64) -> CampaignConfig {
    let mut cfg = CampaignConfig::small(seed, 6);
    // Two weeks instead of thirteen months: the byte-identity contract
    // does not depend on window length, and this suite runs a dozen
    // campaigns in an unoptimized tier-1 build.
    cfg.sched.end = cfg.sched.start + SimDuration::from_days(14);
    cfg
}

#[test]
fn direct_path_is_byte_identical_across_seeds_and_thread_counts() {
    for seed in [42_u64, 7] {
        let base = scratch(&format!("seed{seed}"));
        let cfg = tiny_config(seed);
        let oracle = oracle_bytes(&cfg, &base);
        for threads in [1_usize, 2, 8] {
            let direct = direct_bytes(&cfg, &base, threads, &format!("t{threads}"));
            assert_eq!(
                oracle, direct,
                "seed {seed}: direct path diverged from text oracle at {threads} thread(s)"
            );
        }
        let _ = std::fs::remove_dir_all(&base);
    }
}

#[test]
fn degraded_campaign_seals_the_same_db_as_a_degraded_text_run() {
    let base = scratch("degraded");
    let mut cfg = tiny_config(11);
    // A permanently failing node: one attempt, guaranteed panic. The
    // direct stream must drop exactly what the text path drops — the
    // failed node contributes no log file and no channel emission.
    cfg.node_attempts = 1;
    cfg.panic_nodes.push(NodeId::from_name("03-03").unwrap());

    let oracle = oracle_bytes(&cfg, &base);
    for threads in [1_usize, 2, 8] {
        let direct = direct_bytes(&cfg, &base, threads, &format!("t{threads}"));
        assert_eq!(
            oracle, direct,
            "degraded roster diverged at {threads} thread(s)"
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}
