//! Offline drop-in for the slice of `crossbeam` this workspace uses: a
//! bounded multi-producer multi-consumer channel with blocking `send`,
//! iterator-style receive, and disconnect-on-drop semantics. Built on
//! `std::sync` primitives; the build environment cannot fetch the real
//! crate (no network, no registry cache).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        not_full: Condvar,
        not_empty: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        capacity: usize,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without requiring `T: Debug`, so callers
    // can `.expect()` regardless of the item type.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Create a bounded MPMC channel with the given capacity.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "bounded(0) rendezvous channels unsupported");
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue. Fails only if all
        /// receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.items.len() < state.capacity {
                    state.items.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                // Wake receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Block until an item arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap();
            }
        }

        /// Blocking iterator: yields until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_roundtrip_across_threads() {
            let (tx, rx) = bounded::<u64>(4);
            let consumer = {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().sum::<u64>())
            };
            drop(rx);
            for i in 1..=100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(consumer.join().unwrap(), 5050);
        }

        #[test]
        fn send_fails_when_receivers_gone() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn recv_fails_when_senders_gone() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn backpressure_bounds_queue() {
            let (tx, rx) = bounded::<usize>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = std::thread::spawn(move || tx.send(3));
            assert_eq!(rx.recv(), Ok(1));
            assert!(t.join().unwrap().is_ok());
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }
    }
}
