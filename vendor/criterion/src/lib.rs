//! Offline drop-in for the slice of `criterion` this workspace's benches
//! use. The real crate cannot be fetched (no network, no registry cache),
//! and the benches only need a callable harness: this shim times each
//! benchmark with a fixed warm-up + measurement loop and prints mean
//! wall-clock time per iteration. No statistics, plots or baselines.

use std::time::{Duration, Instant};

/// Per-iteration throughput annotation (printed alongside the timing).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, None, self.measurement_time, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.throughput, self.criterion.measurement_time, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time the closure over the harness-chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(name: &str, throughput: Option<Throughput>, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: one iteration, to size the measurement loop.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:.1} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / mean)
        }
        _ => String::new(),
    };
    println!("bench {name:<48} {:>12.3} us/iter{rate}", mean * 1e6);
}

/// Re-export: the benches import `black_box` from `std::hint` already, but
/// the real criterion also exposes one.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; a bench binary
            // invoked with `--test` must not run the full measurement loop.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn harness_times_a_closure() {
        let mut c = super::Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }
}
