//! Offline drop-in for the slice of `criterion` this workspace's benches
//! use. The real crate cannot be fetched (no network, no registry cache),
//! and the benches only need a callable harness: this shim times each
//! benchmark with a fixed warm-up + measurement loop and prints mean
//! wall-clock time per iteration. No statistics, plots or baselines.
//!
//! Like the real crate, positional command-line arguments act as substring
//! filters on benchmark names, and `--test` switches to smoke mode: each
//! matched benchmark runs exactly once to prove it executes, with no
//! timing loop. `cargo bench -p uc-bench --bench kernels -- log_codec
//! --test` therefore smoke-runs just the codec group, which is what CI
//! does. One deliberate divergence: `--test` with *no* filter (what
//! `cargo test` passes to every bench binary) skips everything, because
//! several bench setups replay a full campaign and would dominate the
//! test suite's runtime.

use std::time::{Duration, Instant};

/// Parsed bench CLI: positional substring filters plus smoke mode.
struct Cli {
    filters: Vec<String>,
    smoke: bool,
}

impl Cli {
    fn parse() -> Cli {
        // Flags that consume the next argument; their values must not be
        // mistaken for name filters.
        const VALUE_FLAGS: &[&str] = &[
            "--sample-size",
            "--warm-up-time",
            "--measurement-time",
            "--save-baseline",
            "--baseline",
            "--load-baseline",
            "--color",
            "--output-format",
        ];
        let mut filters = Vec::new();
        let mut smoke = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--test" {
                smoke = true;
            } else if VALUE_FLAGS.contains(&a.as_str()) {
                let _ = args.next();
            } else if a.starts_with('-') {
                // Boolean/unknown flag (cargo appends `--bench`); ignore.
            } else {
                filters.push(a);
            }
        }
        Cli { filters, smoke }
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }
}

/// True when the binary was invoked by `cargo test` (`--test`, no filter):
/// the whole harness is skipped to keep the test suite fast.
pub fn invoked_as_cargo_test() -> bool {
    let cli = Cli::parse();
    cli.smoke && cli.filters.is_empty()
}

/// Per-iteration throughput annotation (printed alongside the timing).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Criterion {
    measurement_time: Duration,
    cli: Cli,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(200),
            cli: Cli::parse(),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, None, self.measurement_time, &self.cli, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(
            &full,
            self.throughput,
            self.criterion.measurement_time,
            &self.criterion.cli,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time the closure over the harness-chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(name: &str, throughput: Option<Throughput>, budget: Duration, cli: &Cli, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if !cli.matches(name) {
        return;
    }
    // Calibration pass: one iteration, to size the measurement loop.
    // In smoke mode (`--test` with a filter) this single iteration is the
    // whole run: it proves the benchmark executes without timing it.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if cli.smoke {
        println!("smoke {name} ... ok (1 iteration)");
        return;
    }
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Split the budget into several samples and report the fastest one:
    // on a shared/noisy machine the minimum is a far better estimate of
    // the code's true cost than a single long mean, which soaks up every
    // scheduler hiccup and frequency excursion.
    const SAMPLES: u32 = 7;
    let sample_budget = budget / SAMPLES;
    let iters = (sample_budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut mean = f64::INFINITY;
    for _ in 0..SAMPLES {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        mean = mean.min(b.elapsed.as_secs_f64() / iters as f64);
    }
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:.1} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / mean)
        }
        _ => String::new(),
    };
    println!("bench {name:<48} {:>12.3} us/iter{rate}", mean * 1e6);
}

/// Re-export: the benches import `black_box` from `std::hint` already, but
/// the real criterion also exposes one.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes every bench binary with a bare `--test`;
            // skip entirely so expensive bench setups don't slow the test
            // suite. `--test` *with* a name filter is smoke mode and runs
            // each matched benchmark once (handled inside the harness).
            if $crate::invoked_as_cargo_test() {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    // Not `Criterion::default()`: that parses this *test binary's* argv,
    // so a libtest name filter would leak in as a bench filter.
    fn harness() -> super::Criterion {
        super::Criterion {
            measurement_time: Duration::from_millis(200),
            cli: super::Cli {
                filters: Vec::new(),
                smoke: false,
            },
        }
    }

    #[test]
    fn harness_times_a_closure() {
        let mut c = harness();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn filters_match_by_substring() {
        let cli = super::Cli {
            filters: vec!["log_codec".into()],
            smoke: false,
        };
        assert!(cli.matches("log_codec/parse_error_line"));
        assert!(!cli.matches("ecc/secded_encode"));
        let unfiltered = super::Cli {
            filters: Vec::new(),
            smoke: true,
        };
        assert!(unfiltered.matches("anything"));
    }

    #[test]
    fn filtered_smoke_runs_once_and_skips_non_matches() {
        let mut c = super::Criterion {
            measurement_time: Duration::from_millis(200),
            cli: super::Cli {
                filters: vec!["yes".into()],
                smoke: true,
            },
        };
        let (mut hits, mut misses) = (0u64, 0u64);
        c.bench_function("yes/one", |b| b.iter(|| hits += 1));
        c.bench_function("no/other", |b| b.iter(|| misses += 1));
        assert_eq!(hits, 1, "smoke mode runs a matched bench exactly once");
        assert_eq!(misses, 0, "a filtered-out bench must not run at all");
    }
}
