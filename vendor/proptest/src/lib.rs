//! A self-contained, offline drop-in for the subset of the `proptest` API
//! this workspace uses.
//!
//! The build environment has no network access and no registry cache, so the
//! real `proptest` crate cannot be fetched (DESIGN.md §5 already keeps the
//! dependency tree tiny for the same reason). This shim implements the same
//! surface with the same semantics — deterministic pseudo-random generation
//! of many cases per property — minus shrinking: a failing case reports its
//! seed and generated inputs instead of a minimized counterexample.
//!
//! Supported surface (everything the workspace's tests use):
//!
//! - `proptest! { #[test] fn name(pat in strategy, ...) { body } }` with an
//!   optional leading `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`;
//! - range strategies (`0i64..1000`), `any::<T>()`, `Just`, tuples of
//!   strategies, `.prop_map`, `prop_oneof!`, `proptest::collection::vec`,
//!   `proptest::option::of`, and regex-literal string strategies for the
//!   simple classes used here (`"\\PC*"`, `"[ =x0-9a-f]{0,6}"`).

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic generator behind every strategy: xorshift-style mixing,
/// seeded per test from the test name so runs are reproducible.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed | 1, // never the all-zero state
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 step: well-mixed, never stuck.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift; bias is irrelevant for test-case generation.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// A value generator. Unlike real proptest there is no value tree: `generate`
/// yields the value directly and failures are not shrunk.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128) * span >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_rangeinclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128) * span >> 64) as i128;
                (*self.start() as i128 + off) as $t
            }
        }
    )*};
}

int_rangeinclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! int_rangefrom_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as u128) - (self.start as u128) + 1;
                let off = ((rng.next_u64() as u128) * span >> 64) as u128;
                ((self.start as u128) + off) as $t
            }
        }
    )*};
}

int_rangefrom_strategy!(u8, u16, u32, u64, usize);

/// A strategy from a generator closure — the engine behind `prop_compose!`.
pub struct FnStrategy<F> {
    f: F,
}

impl<F> FnStrategy<F> {
    pub fn new<T>(f: F) -> FnStrategy<F>
    where
        F: Fn(&mut TestRng) -> T,
    {
        FnStrategy { f }
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-range generator.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// String strategies from regex literals. Only the simple shapes used in
/// this workspace are interpreted: `\PC*` (any printable characters), a
/// character class with an optional `{m,n}` / `*` / `+` repetition, or a
/// plain literal.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    const PRINTABLE_EXTRA: &[char] = &['é', 'λ', '💥', '\u{00A0}', '中'];
    if pattern == "\\PC*" {
        // Any non-control characters, length 0..64.
        let len = rng.below(64) as usize;
        return (0..len)
            .map(|_| {
                if rng.below(8) == 0 {
                    PRINTABLE_EXTRA[rng.below(PRINTABLE_EXTRA.len() as u64) as usize]
                } else {
                    (0x20 + rng.below(0x5F) as u8) as char
                }
            })
            .collect();
    }
    if let Some(rest) = pattern.strip_prefix('[') {
        if let Some(close) = rest.find(']') {
            let class = expand_class(&rest[..close]);
            let tail = &rest[close + 1..];
            let (lo, hi) = parse_repeat(tail);
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            if class.is_empty() {
                return String::new();
            }
            return (0..len)
                .map(|_| class[rng.below(class.len() as u64) as usize])
                .collect();
        }
    }
    // Fallback: the pattern itself, treated as a literal.
    pattern.to_string()
}

fn expand_class(class: &str) -> Vec<char> {
    let chars: Vec<char> = class.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            for c in lo..=hi {
                if let Some(c) = char::from_u32(c) {
                    out.push(c);
                }
            }
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

fn parse_repeat(tail: &str) -> (usize, usize) {
    match tail {
        "*" => (0, 16),
        "+" => (1, 16),
        "" => (1, 1),
        _ => {
            if let Some(body) = tail.strip_prefix('{').and_then(|t| t.strip_suffix('}')) {
                let mut parts = body.splitn(2, ',');
                let lo = parts.next().and_then(|p| p.parse().ok()).unwrap_or(0);
                let hi = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .unwrap_or(lo.max(1));
                (lo, hi.max(lo))
            } else {
                (1, 1)
            }
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(strategy)`: `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Property-test run parameters.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed or skipped test case, produced by the `prop_assert*` macros.
#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError, TestRng};

    /// Runs a property closure for `config.cases` deterministic cases.
    pub struct TestRunner {
        config: ProptestConfig,
        seed: u64,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, test_name: &str) -> TestRunner {
            // Per-test deterministic seed: FNV-1a of the test name.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1_0000_01B3);
            }
            TestRunner { config, seed: h }
        }

        pub fn run_cases(
            &mut self,
            mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        ) {
            for i in 0..u64::from(self.config.cases) {
                let mut rng = TestRng::new(self.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                match case(&mut rng) {
                    Ok(()) | Err(TestCaseError::Reject) => {}
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("property failed at case {i}: {msg}");
                    }
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
    pub mod prop {
        pub use crate::{collection, option};
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new($cfg, concat!(module_path!(), "::", stringify!($name)));
            runner.run_cases(|rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                let __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: {:?}, right: {:?})",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{} (both: {:?})", format!($($fmt)+), l);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($outer:tt)* )
                 ( $($pat:pat_param in $strat:expr),+ $(,)? ) -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $out> {
            $crate::FnStrategy::new(move |rng: &mut $crate::TestRng| {
                $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(10i64..20), &mut rng);
            assert!((10..20).contains(&v));
            let u = crate::Strategy::generate(&(0u8..4), &mut rng);
            assert!(u < 4);
        }
    }

    #[test]
    fn string_class_pattern() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[ =x0-9a-f]{0,6}", &mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| " =x0123456789abcdef".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_wires_up(a in 0u32..10, b in any::<bool>(), v in prop::collection::vec(0i64..5, 1..4)) {
            prop_assert!(a < 10);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(b, b);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u32), (5u32..8).prop_map(|v| v * 10)]) {
            prop_assert!(x == 1 || (50..80).contains(&x));
        }
    }
}
