//! Offline drop-in for the slice of `parking_lot` this workspace uses:
//! `Mutex` and `RwLock` with non-poisoning, `Result`-free guards. Wraps
//! `std::sync` and recovers from poisoning instead of propagating it, which
//! matches parking_lot's semantics (a panicking critical section does not
//! wedge every later lock).

use std::sync::PoisonError;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_panicking_section() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
