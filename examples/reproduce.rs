//! Reproduce every figure and table of the paper at full scale.
//!
//! Runs the complete 923-node, 13-month campaign (seconds of wall time —
//! the simulation is event-driven) and prints the same rows and series the
//! paper reports: Figs. 1-13 and Tables I-II, plus the headline statistics
//! and the ECC counterfactual.
//!
//! ```text
//! cargo run --release --example reproduce [seed]
//! ```

use unprotected_core::{render, run_campaign, CampaignConfig, Report};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let t0 = std::time::Instant::now();
    eprintln!("running the full-scale campaign (seed {seed})...");
    let cfg = CampaignConfig::paper_default(seed);
    let result = run_campaign(&cfg);
    eprintln!(
        "campaign done in {:?}; building the report...",
        t0.elapsed()
    );
    let report = Report::build(&result);
    println!("{}", render::full_report(&report));
    eprintln!("total {:?}", t0.elapsed());
}
