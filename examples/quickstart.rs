//! Quickstart: simulate a scaled-down unprotected cluster, extract the
//! independent memory faults, and print the headline numbers plus two of
//! the paper's figures.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! For the full 923-node reproduction of every figure and table, see the
//! `reproduce` example.

use unprotected_core::{render, run_campaign, CampaignConfig, Report};

fn main() {
    let t0 = std::time::Instant::now();
    // An 8-blade slice of the machine: same structure (degrading node,
    // weak bits, flood node, isolated SDCs), 120 nodes instead of 1080.
    let cfg = CampaignConfig::small(42, 8);
    let result = run_campaign(&cfg);
    let report = Report::build(&result);

    println!("{}", render::headline(&report));
    println!("{}", render::table1(&report));
    println!("{}", render::fig13(&report));
    println!(
        "simulated {} node-logs in {:?}",
        result.completed().count(),
        t0.elapsed()
    );
}
