//! Seed-robustness study: run the full-scale campaign across many seeds and
//! report the spread of every compared quantity, plus how often each stays
//! inside its shape band (see `unprotected_core::paperref`).
//!
//! This is the honest version of a single-number reproduction claim: the
//! generative models are stochastic, the paper observed *one* draw of
//! reality, and the bands say which conclusions survive the noise.
//!
//! ```text
//! cargo run --release --example seed_study [seeds]
//! ```

use unprotected_core::{compare, paperref, run_campaign, CampaignConfig, Report};

fn main() {
    let seeds = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8u64);
    eprintln!("running {seeds} full-scale campaigns...");
    let t0 = std::time::Instant::now();

    let n_quantities = paperref::REFERENCE.len();
    let mut measured: Vec<Vec<f64>> = vec![Vec::new(); n_quantities];
    let mut in_band: Vec<u32> = vec![0; n_quantities];
    for seed in 0..seeds {
        let result = run_campaign(&CampaignConfig::paper_default(2_000 + seed));
        let report = Report::build(&result);
        for (i, c) in compare(&report).iter().enumerate() {
            measured[i].push(c.measured);
            if c.in_band() {
                in_band[i] += 1;
            }
        }
    }

    println!(
        "{:<34} {:>12} {:>12} {:>12}  in-band",
        "quantity", "paper", "mean", "sd"
    );
    for (i, r) in paperref::REFERENCE.iter().enumerate() {
        let xs = &measured[i];
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        println!(
            "{:<34} {:>12.3} {:>12.3} {:>12.3}  {}/{}",
            r.name,
            r.paper,
            mean,
            var.sqrt(),
            in_band[i],
            seeds
        );
    }
    eprintln!("done in {:?}", t0.elapsed());
}
