//! ECC counterfactual study (paper Sections III-C/III-D).
//!
//! The study's machine had no ECC; the interesting question is what a
//! protected machine would have done with the same corruption. This example
//! measures, exhaustively per flip-count, how SECDED Hamming(39,32) and the
//! chipkill RS(11,8) code classify random k-bit data corruptions — and then
//! applies both codes to the multi-bit faults of a simulated campaign,
//! reproducing the paper's "76 detectable doubles, 9 potentially silent"
//! taxonomy.
//!
//! ```text
//! cargo run --release --example ecc_study
//! ```

use uc_dram::ecc::{ChipkillCode, EccOutcome, Secded3932};
use uc_simclock::rng::StreamRng;
use unprotected_core::{run_campaign, CampaignConfig, Report};

fn random_mask(rng: &mut StreamRng, bits: u32) -> u32 {
    let mut mask = 0u32;
    while mask.count_ones() < bits {
        mask |= 1 << rng.below(32);
    }
    mask
}

fn main() {
    println!("== Random k-bit data corruption vs ECC (10k trials per k) ==");
    println!("bits   SECDED corr/det/silent      chipkill corr/det/silent");
    let secded = Secded3932;
    let chipkill = ChipkillCode;
    let mut rng = StreamRng::from_seed(2016);
    for bits in 1..=9u32 {
        let mut s = [0u64; 3];
        let mut c = [0u64; 3];
        for _ in 0..10_000 {
            let data = rng.next_u32();
            let mask = random_mask(&mut rng, bits);
            let class = |o: EccOutcome| match o {
                EccOutcome::Clean | EccOutcome::Corrected => 0,
                EccOutcome::Detected => 1,
                _ => 2,
            };
            s[class(secded.judge_data_corruption(data, mask))] += 1;
            c[class(chipkill.judge_data_corruption(data, mask))] += 1;
        }
        println!(
            "{bits:>4}   {:>6} {:>5} {:>6}       {:>8} {:>5} {:>6}",
            s[0], s[1], s[2], c[0], c[1], c[2]
        );
    }
    println!("\nSECDED guarantees: 1-bit corrected, 2-bit detected; beyond");
    println!("that some corruptions miscorrect or alias silently — the");
    println!("paper's SDC concern. Chipkill corrects anything confined to");
    println!("one 4-bit symbol and detects any two-symbol corruption.");

    println!("\n== The simulated campaign's faults under both codes =========");
    let result = run_campaign(&CampaignConfig::small(42, 8));
    let report = Report::build(&result);
    println!(
        "faults: {} ({} multi-bit: {} double, {} >2-bit)",
        report.headline.independent_faults,
        report.multibit.multi_bit_faults,
        report.multibit.double_bit_faults,
        report.multibit.over_two_bit_faults
    );
    println!(
        "SECDED:   corrected {} detected {} silent {}",
        report.secded.corrected, report.secded.detected, report.secded.silent
    );
    println!(
        "chipkill: corrected {} detected {} silent {}",
        report.chipkill.corrected, report.chipkill.detected, report.chipkill.silent
    );
    let s_bad = report.secded.detected + report.secded.silent;
    let c_bad = report.chipkill.detected + report.chipkill.silent;
    println!(
        "uncorrectable-or-silent outcomes: SECDED {s_bad} vs chipkill {c_bad} \
         ({:.1}x fewer; silent: {} vs {}). The related work's 42x field-\n\
         reliability gap additionally counts whole-chip failures, which \
         chipkill absorbs entirely.",
        s_bad as f64 / c_bad.max(1) as f64,
        report.secded.silent,
        report.chipkill.silent
    );
}
