//! Failure-avoidance tuning (paper Section IV).
//!
//! Three what-if studies over one simulated campaign's fault stream:
//!
//! 1. the Table II quarantine sweep, extended with trigger-sensitivity
//!    rows (how aggressive should "abnormal behaviour" be?);
//! 2. page retirement, split by root cause — near-total coverage of the
//!    weak-bit nodes, near-zero coverage of scattered corruption;
//! 3. checkpoint-interval adaptation to the regime MTBFs (Young/Daly).
//!
//! ```text
//! cargo run --release --example resilience_tuning
//! ```

use uc_resilience::checkpoint::adaptation_report;
use uc_resilience::combined::policy_comparison;
use uc_resilience::placement::{job_stream, simulate_placement, Policy};
use uc_resilience::quarantine::{QuarantineConfig, QuarantineSim};
use uc_resilience::retirement::{simulate_retirement, RetirementConfig};
use uc_simclock::SimDuration;
use unprotected_core::{run_campaign, CampaignConfig, Report};

fn main() {
    let cfg = CampaignConfig::paper_default(42);
    let result = run_campaign(&cfg);
    let report = Report::build(&result);
    let faults = result.characterized_faults();
    let sim = QuarantineSim {
        observed_hours: cfg.study_days() as f64 * 24.0,
        fleet_nodes: cfg.topology.monitored_node_count(),
        exclude: report.mtbf_excluded.clone(),
    };

    println!("== Quarantine: length sweep (Table II) ======================");
    println!("days   faults  node-days  MTBF(h)");
    for q in sim.sweep(&faults, &[0, 5, 10, 15, 20, 25, 30]) {
        println!(
            "{:>4}  {:>7}  {:>9}  {:>7.1}",
            q.quarantine_days, q.surviving_faults, q.node_days_quarantined, q.system_mtbf_h
        );
    }

    println!("\n== Quarantine: trigger sensitivity at 15 days ===============");
    println!("trigger(faults/day)   faults  entries  node-days");
    for trigger in [1, 2, 3, 5, 10, 20] {
        let out = sim.run(
            &faults,
            &QuarantineConfig {
                quarantine_days: 15,
                trigger_faults: trigger,
                trigger_window: SimDuration::from_days(1),
            },
        );
        println!(
            "{:>19}  {:>7}  {:>7}  {:>9}",
            trigger, out.surviving_faults, out.quarantine_entries, out.node_days_quarantined
        );
    }

    println!("\n== Page retirement ==========================================");
    println!("retire-after   surviving  prevented  pages");
    for after in [1, 2, 4, 8] {
        let out = simulate_retirement(
            &faults,
            &RetirementConfig {
                retire_after: after,
                max_pages_per_node: 64,
            },
        );
        println!(
            "{:>12}  {:>10}  {:>9}  {:>5}",
            after, out.surviving_faults, out.prevented_faults, out.pages_retired
        );
    }
    println!("(prevented faults are almost entirely the weak-bit repeats;");
    println!(" the scattered simultaneous corruption survives, as Section IV");
    println!(" anticipates)");

    println!("\n== Combined policy: retirement + quarantine =================");
    println!("quarantine(d)   alone: faults/node-days    combined: faults/node-days");
    for q in [5, 15, 30] {
        let (alone, combined) = policy_comparison(&faults, &sim, q);
        println!(
            "{q:>13}   {:>6} / {:>9}        {:>6} / {:>9}",
            alone.surviving_faults,
            alone.node_days_quarantined,
            combined.surviving_faults(),
            combined.quarantine.node_days_quarantined
        );
    }
    println!("(retirement silently absorbs the weak-bit repeats, so the");
    println!(" combined policy reaches the same fault floor with a fraction");
    println!(" of the quarantine capacity cost)");

    println!("\n== Failure-aware job placement ==============================");
    let jobs = job_stream(
        cfg.sched.start,
        cfg.sched.end,
        SimDuration::from_hours(2),
        64,
    );
    println!("policy          jobs   failed   lost node-hours");
    for (name, policy) in [
        ("oblivious", Policy::Oblivious),
        ("avoid-history", Policy::AvoidHistory),
        ("debug-only", Policy::DebugOnly),
    ] {
        let out = simulate_placement(&faults, &jobs, cfg.topology.monitored_node_count(), policy);
        println!(
            "{name:<14} {:>5}  {:>7}  {:>16}",
            out.jobs, out.failed_jobs, out.lost_node_hours
        );
    }

    println!("\n== Checkpoint-interval adaptation ===========================");
    let s = report.regime_summary;
    println!(
        "regime MTBFs: normal {:.1} h / degraded {:.2} h",
        s.normal_mtbf_h, s.degraded_mtbf_h
    );
    for cost_min in [1.0, 5.0, 15.0] {
        let r = adaptation_report(cost_min / 60.0, s.normal_mtbf_h, s.degraded_mtbf_h);
        println!(
            "checkpoint cost {cost_min:>4.0} min: interval {:.1} h -> {:.2} h; \
             degraded-waste {:.1}% adapted vs {:.1}% unadapted",
            r.normal_interval_h,
            r.degraded_interval_h,
            r.degraded_waste_adapted * 100.0,
            r.degraded_waste_unadapted * 100.0
        );
    }
}
