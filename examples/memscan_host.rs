//! The paper's measurement instrument, run for real: allocate host memory
//! (with the 3 GB-minus-10 MB-steps fallback), scan it with the alternating
//! and incrementing patterns, and report any corruption — a working
//! memtester in the style of Section II-B.
//!
//! On an ECC-protected host a clean run is the expected outcome (that is
//! the control experiment); pass `--inject` to plant three upsets the way a
//! particle strike would and watch the scanner catch and heal them.
//!
//! ```text
//! cargo run --release --example memscan_host -- [--mb 256] [--iters 4] [--inject]
//! ```

use uc_cluster::NodeId;
use uc_dram::{MemoryDevice, WordAddr};
use uc_faultlog::codec::format_record;
use uc_faultlog::record::LogRecord;
use uc_memscan::host::HostMemory;
use uc_memscan::{DeviceScanner, Pattern};
use uc_simclock::SimTime;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: u64| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let mb = get("--mb", 256);
    let iters = get("--iters", 4);
    let inject = args.iter().any(|a| a == "--inject");

    let target = mb * 1024 * 1024;
    let mem = HostMemory::allocate_with_fallback(target).expect("allocation failed entirely");
    println!(
        "allocated {} MB of host memory ({} words)",
        mem.bytes() / (1024 * 1024),
        mem.len_words()
    );

    for pattern in [Pattern::Alternating, Pattern::incrementing()] {
        let mem = HostMemory::allocate(target.min(mem.bytes()));
        let words = mem.len_words();
        let (mut scanner, start) =
            DeviceScanner::start(mem, pattern, NodeId(0), SimTime::from_secs(0), None);
        println!("\n--- pattern: {} ---", pattern.tag());
        println!("{}", format_record(&LogRecord::Start(start)));

        let mut total_errors = 0u64;
        let t0 = std::time::Instant::now();
        for k in 1..=iters {
            if inject && k == 2 {
                // Three upsets in different regions: a single-bit flip, a
                // double-bit flip, and a multi-bit corruption.
                scanner
                    .device_mut()
                    .inject_flip(WordAddr(words / 7), 1 << 5);
                scanner
                    .device_mut()
                    .inject_flip(WordAddr(words / 3), (1 << 9) | (1 << 14));
                scanner
                    .device_mut()
                    .inject_flip(WordAddr(words - 1), 0xE600_6300);
            }
            let rep = scanner.run_iteration(SimTime::from_secs(k as i64), None);
            for e in &rep.errors {
                println!("{}", format_record(&LogRecord::Error(*e)));
            }
            total_errors += rep.errors.len() as u64;
        }
        let secs = t0.elapsed().as_secs_f64();
        let (_, end) = scanner.stop(SimTime::from_secs(iters as i64 + 1), None);
        println!("{}", format_record(&LogRecord::End(end)));
        println!(
            "{iters} passes over {words} words in {secs:.2}s \
             ({:.0}M words/s), {total_errors} errors",
            iters as f64 * words as f64 / secs / 1e6
        );
    }
}
