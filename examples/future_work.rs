//! The paper's future-work experiments, run forward.
//!
//! "As future work, we are planning to stress test our system by turning on
//! the nodes with heating issues and monitoring them as well as their
//! neighbors. In addition, we want to swap some components from the most
//! faulty nodes with some healthy nodes to further improve the memory error
//! characterization."
//!
//! Experiment 1 — **heat stress**: keep the overheating SoC-12 position
//! powered all year (no admin shutdown in scheduler or thermal model) and
//! compare the >60 °C exposure and fault census of those nodes and their
//! neighbours against the baseline.
//!
//! Experiment 2 — **component swap**: at a swap date, the degrading
//! component leaves node 02-04 and is installed in a previously healthy
//! node. If the fault follows the component (as the paper suspects for a
//! bus/connector fault), the error stream must move with it — which is
//! exactly what the campaign shows.
//!
//! ```text
//! cargo run --release --example future_work
//! ```

use uc_cluster::{NodeId, OVERHEATING_SOC};
use uc_faults::degrading::DegradingConfig;
use uc_simclock::calendar::CivilDate;
use unprotected_core::{run_campaign, CampaignConfig, Report};

fn count_faults(report: &Report, pred: impl Fn(NodeId) -> bool) -> u64 {
    let mut total = 0u64;
    for node in uc_cluster::Topology::default().all_nodes() {
        if pred(node) {
            total += report.fig3_faults.get(node) as u64;
        }
    }
    total
}

fn main() {
    let seed = 42;

    println!("== Experiment 1: heat stress (SoC-12 never shut down) ======");
    let is_hot_position = |n: NodeId| n.soc() == OVERHEATING_SOC;
    let is_neighbour = |n: NodeId| n.soc().abs_diff(OVERHEATING_SOC) == 1;
    // Aggregate over seeds: per-position fault counts are small Poisson
    // draws, so a single campaign cannot show the exposure effect.
    let arms = 5u64;
    let mut agg = [[0u64; 3]; 2]; // [arm][soc12 faults, neighbour faults, >60C]
    let mut hours = [0.0f64; 2];
    for s in 0..arms {
        let baseline = Report::build(&run_campaign(&CampaignConfig::paper_default(seed + s)));
        let mut stress_cfg = CampaignConfig::paper_default(seed + s);
        stress_cfg.sched.soc12_shutdown = None;
        stress_cfg.thermal.overheat_shutdown = None;
        let stress = Report::build(&run_campaign(&stress_cfg));
        for (k, rep) in [baseline, stress].iter().enumerate() {
            agg[k][0] += count_faults(rep, is_hot_position);
            agg[k][1] += count_faults(rep, is_neighbour);
            agg[k][2] += rep.temperature.count_above(60.0, false);
            hours[k] += rep.fig1_hours.soc_position_means()[OVERHEATING_SOC as usize];
        }
    }
    println!("({arms} seeds per arm)         baseline   heat-stress");
    println!(
        "SoC-12 monitored hours   {:>8.0}   {:>11.0}",
        hours[0] / arms as f64,
        hours[1] / arms as f64
    );
    println!(
        "faults on SoC-12 nodes   {:>8}   {:>11}",
        agg[0][0], agg[1][0]
    );
    println!(
        "faults on neighbours     {:>8}   {:>11}",
        agg[0][1], agg[1][1]
    );
    println!(
        "faults above 60 C        {:>8}   {:>11}",
        agg[0][2], agg[1][2]
    );
    println!("(more monitored hours at the hot position => more exposure,");
    println!(" and every fault there now carries a >60 C temperature tag)");

    println!("\n== Experiment 2: component swap =============================");
    let swap_date = CivilDate::new(2015, 11, 1).midnight();
    let healthy = NodeId::from_name("30-08").expect("valid");
    let mut swap_cfg = CampaignConfig::paper_default(seed);
    let original = swap_cfg.scenario.degrading[0].clone();
    swap_cfg.scenario.degrading = vec![
        DegradingConfig {
            until: Some(swap_date),
            ..original.clone()
        },
        DegradingConfig {
            node: healthy,
            onset: swap_date,
            until: None,
            // The component resumes at the degradation level it had
            // reached, and keeps worsening.
            initial_rate_per_hour: original
                .rate_at(swap_date - uc_simclock::SimDuration::from_secs(1)),
            ..original.clone()
        },
    ];
    // The recipient node now needs the monitoring attention; drop the
    // original node's post-swap blackouts so both streams stay visible.
    swap_cfg.sched.per_node_blackouts.clear();
    let swapped = Report::build(&run_campaign(&swap_cfg));

    let hot = original.node;
    let per_month = |report: &Report, node: NodeId| -> Vec<(u8, u64)> {
        let series = report
            .fig12
            .nodes
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, s)| s.clone());
        let Some(series) = series else {
            return Vec::new();
        };
        let mut out: Vec<(u8, u64)> = Vec::new();
        for (i, &c) in series.iter().enumerate() {
            let date = uc_simclock::CivilDate::from_day_index(report.fig12.first_day + i as i64);
            match out.last_mut() {
                Some((m, acc)) if *m == date.month => *acc += c,
                _ => out.push((date.month, c)),
            }
        }
        out
    };
    println!("monthly faults after the swap campaign:");
    println!("  node   months (month: count, swap on Nov 1)");
    for node in [hot, healthy] {
        let months: Vec<String> = per_month(&swapped, node)
            .into_iter()
            .filter(|(_, c)| *c > 0)
            .map(|(m, c)| format!("{m:02}: {c}"))
            .collect();
        println!("  {node}  {}", months.join(", "));
    }
    println!(
        "the error stream leaves {hot} and reappears on {healthy} — the \
         fault followed the component."
    );
}
