//! Solar-modulation ablation: demonstrate the Fig. 6 mechanism by
//! aggregating the multi-bit hourly histogram over several campaign seeds,
//! with the neutron-flux solar gain at its calibrated value and at zero.
//!
//! One seed gives ~90 multi-bit faults (the paper's own sample size, which
//! is why single-run ratios are noisy); ten seeds make the bell obvious —
//! and the zero-gain control collapses it.
//!
//! ```text
//! cargo run --release --example solar_ablation [seeds]
//! ```

use uc_analysis::diurnal::HourlyProfile;
use uc_simclock::NeutronFlux;
use unprotected_core::{run_campaign, CampaignConfig, Report};

fn aggregate(seeds: u64, gain: Option<f64>) -> ([u64; 24], u64) {
    let mut hours = [0u64; 24];
    let mut total = 0;
    for seed in 0..seeds {
        let mut cfg = CampaignConfig::paper_default(1_000 + seed);
        if let Some(g) = gain {
            cfg.scenario.flux = NeutronFlux::with_gain(cfg.scenario.flux.site, g);
        }
        let result = run_campaign(&cfg);
        let report = Report::build(&result);
        let profile: &HourlyProfile = &report.hourly;
        for (h, hour_slot) in hours.iter_mut().enumerate() {
            let c = profile.hour_multibit(h);
            *hour_slot += c;
            total += c;
        }
    }
    (hours, total)
}

fn print_profile(label: &str, hours: &[u64; 24], total: u64) {
    println!("\n--- {label} ({total} multi-bit faults) ---");
    let max = hours.iter().copied().max().unwrap_or(0).max(1);
    for (h, &c) in hours.iter().enumerate() {
        let bar = "#".repeat((c * 48 / max) as usize);
        println!("{h:>4}  {c:>5}  {bar}");
    }
    let day: u64 = hours[7..18].iter().sum();
    let night = total - day;
    println!(
        "day (07-18) {day} vs night {night}: ratio {:.2}",
        day as f64 / night.max(1) as f64
    );
    let peak = hours
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| **c)
        .map(|(h, _)| h)
        .unwrap_or(0);
    println!("peak hour: {peak}");
}

fn main() {
    let seeds = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10u64);
    eprintln!("aggregating {seeds} campaign seeds per arm...");

    let t0 = std::time::Instant::now();
    let (on, on_total) = aggregate(seeds, None);
    print_profile("solar gain ON (calibrated)", &on, on_total);

    let (off, off_total) = aggregate(seeds, Some(0.0));
    print_profile("solar gain OFF (control)", &off, off_total);

    let ratio = |hours: &[u64; 24], total: u64| {
        let day: u64 = hours[7..18].iter().sum();
        day as f64 / (total - day).max(1) as f64
    };
    println!(
        "\nratio with gain {:.2} vs control {:.2} — the paper's Fig. 6 \
         day/night doubling is the gain's doing ({:?} total)",
        ratio(&on, on_total),
        ratio(&off, off_total),
        t0.elapsed()
    );
}
