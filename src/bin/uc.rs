//! `uc` — the command-line front end.
//!
//! Subcommands:
//!
//! - `uc campaign --out <dir> [--seed N] [--blades N] [--compact x] [--resume x] [--durable x]` —
//!   run a campaign and write per-node log files (the paper's on-disk
//!   layout) plus the full text report. Per-node checkpoints are kept in
//!   `<out>/.checkpoints` as durable segments; `--resume` restores
//!   finished nodes from them instead of recomputing (resumed output is
//!   byte-identical to an uninterrupted run), while a fresh run clears
//!   them first. `--durable` writes logs as checksummed `.dlog` segments
//!   (length-framed, CRC per record, whole-file digest in `MANIFEST`)
//!   instead of plain text; a node whose storage fails degrades that node,
//!   never the campaign. `--db <file>` streams each completed node's
//!   faults straight into a sealed fault database (no text corpus in
//!   between — the direct path; see DESIGN.md §10), byte-identical to
//!   `--out` + `uc build-db` for the same seed at any thread count;
//!   with both flags one campaign run produces both artifacts;
//! - `uc fsck <dir>` — verify a durable directory (and its
//!   `.checkpoints`, if present): check manifests and frame checksums,
//!   keep the longest valid prefix of each torn file, move damaged tails
//!   to `<dir>/.lost+found`, rebuild the manifest, and print accounting
//!   under the conservation law `bytes_in == salvaged + quarantined`.
//!   A *live* directory (WAL segments + generations + CATALOG) gets the
//!   extended live fsck: WAL salvage, half-sealed generation promotion
//!   or quarantine, and catalog rollback, same conservation law;
//! - `uc analyze <dir> [--threads N]` / `uc analyze --db <file>` — run
//!   the extraction methodology and print the log-derivable analyses.
//!   With `--db` the report comes from a sealed fault database instead of
//!   re-ingesting text logs; stdout is byte-identical between the two
//!   paths (both render through `faultdb::Snapshot::report_text`);
//! - `uc build-db <logdir> <db>` — ingest a log directory (with
//!   recovery) and seal it as a columnar fault database;
//! - `uc query <db> <expr...>` — run one query (`count`, `list`, `top`,
//!   `group`, `hist bits`, each with an optional `where` predicate; see
//!   DESIGN.md §8 for the grammar) and print the result lines;
//! - `uc serve <db> [--addr host:port] [--workers N] [--queue N]` — serve
//!   the database over a line-protocol TCP socket with bounded admission
//!   (overload is a typed `ERR overloaded` rejection, never a hang);
//!   `--selftest N` instead hammers a fresh in-process server with N
//!   concurrent clients and verifies every response against the
//!   single-threaded engine;
//! - `uc serve <livedir> --ingest x [--ingest-addr host:port]` — the live
//!   variant: open (or create) a streaming-ingest database directory,
//!   accept framed record pushes on the ingest endpoint (acked only
//!   after a WAL fsync), answer snapshot-isolated queries on the query
//!   endpoint during ingest, and seal a generation on drain. SIGINT,
//!   SIGTERM, and the `SHUTDOWN` command all drain gracefully.
//!   `--selftest N` runs the chaos end-to-end check instead: N
//!   fault-injected clients stream into an under-provisioned server and
//!   the sealed generation must byte-match a batch-built oracle;
//! - `uc stream <addr> <logdir>` — push every `node-*.log` in a
//!   directory to a live ingest server, one resilient
//!   sequence-numbered session per node (reconnect resumes from the
//!   server's cursor; replay is exactly-once); `--seal x` seals a
//!   queryable generation at the end, `--chaos-seed N` injects
//!   deterministic transport faults for self-torture;
//! - `uc scan [--mb N] [--iters N]` — scan real host memory (memtester
//!   mode; see also the `memscan_host` example for fault injection);
//! - `uc report [--seed N] [--blades N] [--csv <dir>]` — run a campaign in memory and
//!   print every figure and table;
//! - `uc policy <db|livedir> [--policy X] [--seed N] [--train-days D]` —
//!   replay a sealed campaign one simulated day at a time through the
//!   online mitigation policy engine and print the cost-vs-coverage
//!   table (static baselines, a seeded tabular bandit, and the
//!   clairvoyant oracle lower bound; see DESIGN.md §13). `--csv <file>`
//!   exports the table; `--selftest x` runs the end-to-end determinism
//!   and bound check instead.
//!
//! Argument handling is deliberately bare: flags are `--key value` pairs,
//! validated per subcommand. Unknown subcommands or flags print usage to
//! stderr and exit 2; runtime failures exit 1. `uc help` (or `--help`)
//! prints the usage table — generated from the same command table that
//! drives dispatch, so the two cannot drift apart.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use uc_faultdb::{IngestConfig, QueryOptions, ServeConfig, StreamOptions, WriteOptions};
use uc_faultlog::files::{write_cluster_log, write_cluster_log_compact, write_text_atomic};
use uc_memscan::host::{run_host_scan, run_host_scan_parallel};
use uc_memscan::Pattern;
use unprotected_core::{checkpoint, render, run_campaign, CampaignConfig, Report};

/// SIGINT/SIGTERM → the servers' *graceful* shutdown path (stop flag +
/// self-connect), so an operator's Ctrl-C or a supervisor's TERM drains
/// admitted connections instead of killing mid-request. Raw
/// `signal(2)` via the C ABI — the repo links no signal crate, and a
/// handler that only stores to an `AtomicBool` is async-signal-safe.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATE: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn triggered() -> bool {
        TERMINATE.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}

    pub fn triggered() -> bool {
        false
    }
}

/// Install the handler and watch for it from a background thread,
/// running `on_term` (each server's graceful shutdown) when a signal
/// lands. The watcher dies with the process; no cleanup needed.
fn spawn_signal_watcher(on_term: impl Fn() + Send + 'static) {
    sig::install();
    std::thread::spawn(move || loop {
        if sig::triggered() {
            eprintln!("signal received; draining connections and shutting down");
            on_term();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it.next().cloned().unwrap_or_default();
                flags.push((key.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    /// Reject flags outside `allowed` and positional counts outside
    /// `min_pos..=max_pos` — every subcommand's first line of defense.
    fn validate(
        &self,
        cmd: &str,
        allowed: &[&str],
        min_pos: usize,
        max_pos: usize,
    ) -> Result<(), String> {
        for (k, _) in &self.flags {
            if !allowed.contains(&k.as_str()) {
                return Err(format!("unknown flag --{k} for `uc {cmd}`"));
            }
        }
        let n = self.positional.len();
        if n < min_pos || n > max_pos {
            return Err(match (min_pos, max_pos) {
                (a, b) if a == b => format!("`uc {cmd}` takes {a} positional argument(s), got {n}"),
                (a, _) if n < a => format!("`uc {cmd}` needs at least {a} positional argument(s)"),
                (_, b) => format!("`uc {cmd}` takes at most {b} positional argument(s), got {n}"),
            });
        }
        Ok(())
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == key)
    }

    /// Parse a numeric flag strictly: present-but-garbage is a usage
    /// error, not a silent default. Overflow is garbage too — every
    /// numeric flag follows the same contract (usage message on stderr,
    /// exit 2), so `--workers 99999999999999999999` and `--workers x`
    /// fail identically instead of one overflowing into a cast.
    fn get_u64_strict(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} requires a non-negative integer, got {v:?}")),
        }
    }

    /// Like [`Args::get_u64_strict`] but for flags that land in a `u32`
    /// (`--max-attempts`): a value above `u32::MAX` is a usage error,
    /// never a silent truncating `as` cast.
    fn get_u32_strict(&self, key: &str, default: u32) -> Result<u32, String> {
        let v = self.get_u64_strict(key, u64::from(default))?;
        u32::try_from(v)
            .map_err(|_| format!("--{key} must fit in 32 bits (max {}), got {v}", u32::MAX))
    }
}

/// One row per subcommand: the name `main` dispatches on, the usage
/// line(s) `uc help` prints, and the handler. Dispatch and the usage
/// table are generated from this single array, so a subcommand cannot
/// exist in one and be missing from the other.
struct Command {
    name: &'static str,
    usage: &'static [&'static str],
    run: fn(&Args) -> ExitCode,
}

const COMMANDS: &[Command] = &[
    Command {
        name: "campaign",
        usage: &[
            "uc campaign --out <dir> [--db <file>] [--seed N] [--blades N] [--compact x] [--resume x] [--durable x]",
            "uc campaign --db <file> [--seed N] [--blades N] [--resume x]",
        ],
        run: cmd_campaign,
    },
    Command {
        name: "fsck",
        usage: &["uc fsck <dir>"],
        run: cmd_fsck,
    },
    Command {
        name: "analyze",
        usage: &[
            "uc analyze <dir> [--threads N]",
            "uc analyze --db <file> [--threads N]",
        ],
        run: cmd_analyze,
    },
    Command {
        name: "build-db",
        usage: &["uc build-db <logdir> <db> [--rows-per-block N] [--shard N] [--encoding v1|v2]"],
        run: cmd_build_db,
    },
    Command {
        name: "query",
        usage: &["uc query <db> <expr...> [--timeout-ms N] [--explain x]"],
        run: cmd_query,
    },
    Command {
        name: "serve",
        usage: &[
            "uc serve <db> [--addr host:port] [--workers N] [--queue N] [--timeout-ms N] [--selftest N]",
            "uc serve <livedir> --ingest x [--ingest-addr host:port] [--addr host:port] [--selftest N] [--chaos-seed N]",
            "uc serve <livedir> --ingest x --replica-of host:port [--auto-promote-ms N] [...]",
            "uc serve --ingest x --selftest-repl x [--chaos-seed N]",
        ],
        run: cmd_serve,
    },
    Command {
        name: "stream",
        usage: &["uc stream <addr> <logdir> [--batch N] [--max-attempts N] [--chaos-seed N] [--seal x]"],
        run: cmd_stream,
    },
    Command {
        name: "scrub",
        usage: &["uc scrub <livedir> [--dry-run x] [--rate-mb N] [--watch-ms N]"],
        run: cmd_scrub,
    },
    Command {
        name: "promote",
        usage: &["uc promote <host:port>"],
        run: cmd_promote,
    },
    Command {
        name: "policy",
        usage: &[
            "uc policy <db|livedir> [--policy never|always-checkpoint|threshold|bandit|oracle|all] [--seed N] [--train-days D] [--threshold N] [--csv <file>] [--threads N]",
            "uc policy --selftest x [--seed N]",
        ],
        run: cmd_policy,
    },
    Command {
        name: "scan",
        usage: &["uc scan [--mb N] [--iters N] [--pattern alternating|incrementing|checkerboard] [--parallel x]"],
        run: cmd_scan,
    },
    Command {
        name: "report",
        usage: &["uc report [--seed N] [--blades N] [--csv <dir>] [--threads N]"],
        run: cmd_report,
    },
];

/// The usage table, generated from [`COMMANDS`].
fn usage_text() -> String {
    let mut out = String::from("usage:\n");
    for cmd in COMMANDS {
        for line in cmd.usage {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out.push_str("  uc help | uc --help\n");
    out.push_str("  uc --version");
    out
}

/// Usage errors (unknown subcommand, bad flag) exit 2 so scripts can
/// tell "you called me wrong" from "the work failed" (exit 1).
fn bad_usage(msg: &str) -> ExitCode {
    eprintln!("uc: {msg}");
    eprintln!("{}", usage_text());
    ExitCode::from(2)
}

fn config_for(args: &Args) -> Result<CampaignConfig, String> {
    let seed = args.get_u64_strict("seed", 42)?;
    Ok(match args.get_u64_strict("blades", 0)? {
        0 => CampaignConfig::paper_default(seed),
        b => CampaignConfig::small(seed, b.clamp(6, 63) as u32),
    })
}

fn cmd_campaign(args: &Args) -> ExitCode {
    if let Err(e) = args.validate(
        "campaign",
        &[
            "out", "db", "seed", "blades", "compact", "resume", "durable", "threads",
        ],
        0,
        0,
    ) {
        return bad_usage(&e);
    }
    let out = args.get("out");
    let db = args.get("db");
    if out.is_none() && db.is_none() {
        return bad_usage("campaign requires --out <dir> and/or --db <file>");
    }
    if out.is_none() && (args.has("compact") || args.has("durable")) {
        return bad_usage("--compact/--durable shape the text log layout and need --out <dir>");
    }
    let cfg = match config_for(args) {
        Ok(c) => c,
        Err(e) => return bad_usage(&e),
    };
    let resume = args.has("resume");
    // Checkpoints live next to whichever output exists: under the log
    // directory as before, or as a `<db>.checkpoints` sibling when the
    // campaign streams straight to a database with no text corpus.
    let ckpt_dir = match out {
        Some(o) => PathBuf::from(o).join(".checkpoints"),
        None => PathBuf::from(format!("{}.checkpoints", db.expect("checked above"))),
    };
    if !resume {
        // Stale checkpoints from an earlier run (possibly another seed)
        // must not leak into a fresh campaign.
        if let Err(e) = checkpoint::clear_checkpoints(&ckpt_dir) {
            eprintln!("failed to clear checkpoints in {}: {e}", ckpt_dir.display());
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "running campaign: seed {}, {} candidate nodes{}...",
        cfg.seed,
        cfg.topology.monitored_node_count(),
        if resume { " (resuming)" } else { "" }
    );
    // With `--db` the campaign streams each completed node's recovered
    // log straight into the database sealer — the text corpus never
    // exists unless `--out` asks for it too. Without `--db` this is the
    // classic text-only run. Either way the campaign executes once.
    let (result, sealed) = if let Some(db_path) = db {
        let db_path = PathBuf::from(db_path);
        match unprotected_computing::direct::campaign_to_db(
            &cfg,
            &ckpt_dir,
            &db_path,
            &WriteOptions::default(),
        ) {
            Ok(output) => (output.result, Some(output.summary)),
            Err(e) => {
                eprintln!("campaign --db: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        (checkpoint::run_campaign_checkpointed(&cfg, &ckpt_dir), None)
    };
    if result.is_degraded() {
        for (node, attempts, reason) in result.failed_nodes() {
            eprintln!("WARNING: node {node} failed after {attempts} attempt(s): {reason}");
        }
        eprintln!("campaign is DEGRADED: output covers the surviving nodes only");
    }
    if let Some(summary) = &sealed {
        eprintln!(
            "sealed {}: {} faults in {} blocks, {} bytes (direct stream, no text corpus)",
            summary.path.display(),
            summary.rows,
            summary.blocks,
            summary.bytes
        );
    }
    if let Some(out) = out {
        let dir = PathBuf::from(out);
        let compact = args.has("compact");
        let durable = args.has("durable");
        if durable {
            let cluster = result.cluster_log();
            let out = if compact {
                uc_faultlog::durable::write_cluster_log_durable_compact(&dir, &cluster)
            } else {
                uc_faultlog::durable::write_cluster_log_durable(&dir, &cluster)
            };
            for (node, err) in &out.failures {
                eprintln!("WARNING: node {node} log not durable: {err}");
            }
            if let Some(err) = &out.manifest_error {
                eprintln!("WARNING: manifest not durable: {err}");
            }
            eprintln!(
                "wrote {} durable node log segments to {}{}",
                out.sealed.len(),
                dir.display(),
                if out.is_fully_durable() {
                    ""
                } else {
                    " (DEGRADED)"
                }
            );
        } else {
            let write = if compact {
                write_cluster_log_compact
            } else {
                write_cluster_log
            };
            match write(&dir, &result.cluster_log()) {
                Ok(n) => eprintln!("wrote {n} node log files to {}", dir.display()),
                Err(e) => {
                    eprintln!("failed to write logs: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let report = Report::build(&result);
        // Atomic (tmp + fsync + rename): a crash mid-write must never leave a
        // half-rendered report.txt next to intact logs.
        match write_text_atomic(&dir, "report.txt", &render::full_report(&report)) {
            Ok(path) => eprintln!("report at {}", path.display()),
            Err(e) => {
                eprintln!("failed to write report: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("{}", render::headline(&report));
    } else {
        // Database-only run: the headline still prints (the report is
        // derived in memory), there's just no report.txt to point at.
        println!("{}", render::headline(&Report::build(&result)));
    }
    ExitCode::SUCCESS
}

fn cmd_analyze(args: &Args) -> ExitCode {
    if let Err(e) = args.validate("analyze", &["threads", "db"], 0, 1) {
        return bad_usage(&e);
    }
    let snapshot = if let Some(db_path) = args.get("db") {
        if !args.positional.is_empty() {
            return bad_usage("analyze takes either a log directory or --db <file>, not both");
        }
        let t0 = std::time::Instant::now();
        // Either shape works: a single `.ucfdb` file or a sharded root
        // directory; both reconstruct the identical snapshot.
        let db = match uc_faultdb::Engine::open_auto(&PathBuf::from(db_path)) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("analyze: {e}");
                return ExitCode::FAILURE;
            }
        };
        let snap = match db.snapshot() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("analyze: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "opened {db_path}: {} faults in {} blocks, decoded in {:?}",
            db.rows(),
            db.blocks(),
            t0.elapsed()
        );
        snap
    } else {
        let Some(dir) = args.positional.first() else {
            return bad_usage("analyze requires a log directory (or --db <file>)");
        };
        // Recovering, parallel load: `read_cluster_log_recovering` lossy-parses
        // each node-log file on its own worker (the full-scale campaign writes
        // ~36M lines / several GB of text) and merges the per-file ingest
        // accounting deterministically.
        let dir_path = PathBuf::from(dir);
        let t0 = std::time::Instant::now();
        let (cluster, stats) = match uc_faultlog::ingest::read_cluster_log_recovering(&dir_path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("analyze: {e}");
                return ExitCode::FAILURE;
            }
        };
        let file_count = cluster.node_logs().len() + stats.files_unreadable as usize;
        eprintln!(
            "parsed {} files in {:?} ({} worker threads)",
            file_count,
            t0.elapsed(),
            uc_parallel::worker_count(file_count)
        );
        eprintln!("{}", stats.summary());
        uc_faultdb::Snapshot::from_cluster(&cluster, stats)
    };
    // Both paths print the identical bytes: the report derives from the
    // snapshot alone (see faultdb::Snapshot), which is what makes `--db`
    // a drop-in replacement for re-ingesting the text logs.
    print!("{}", snapshot.report_text());
    ExitCode::SUCCESS
}

fn cmd_build_db(args: &Args) -> ExitCode {
    if let Err(e) = args.validate(
        "build-db",
        &["rows-per-block", "threads", "shard", "encoding"],
        2,
        2,
    ) {
        return bad_usage(&e);
    }
    let rows_per_block = match args.get_u64_strict("rows-per-block", 0) {
        Ok(0) => WriteOptions::default().rows_per_block,
        // The writer clamps internally; a flag outside its range is a
        // user mistake worth a loud usage error, not a silent clamp.
        Ok(n) if n <= (1 << 20) => n as usize,
        Ok(n) => {
            return bad_usage(&format!(
                "--rows-per-block {n} exceeds the maximum of {}",
                1u64 << 20
            ))
        }
        Err(e) => return bad_usage(&e),
    };
    let encoding = match args.get("encoding") {
        None | Some("v2") => uc_faultdb::FileEncoding::V2,
        Some("v1") => uc_faultdb::FileEncoding::V1,
        Some(other) => return bad_usage(&format!("--encoding must be v1 or v2, not {other:?}")),
    };
    let shard_windows = match args.get_u64_strict("shard", 0) {
        Ok(n) if n <= (1 << 16) => n as usize,
        Ok(n) => {
            return bad_usage(&format!(
                "--shard {n} exceeds the maximum of {}",
                1u64 << 16
            ))
        }
        Err(e) => return bad_usage(&e),
    };
    if args.has("shard") && shard_windows == 0 {
        return bad_usage("--shard requires a positive time-window count");
    }
    let opts = WriteOptions {
        rows_per_block,
        encoding,
    };
    let logdir = PathBuf::from(&args.positional[0]);
    let out = PathBuf::from(&args.positional[1]);
    let t0 = std::time::Instant::now();
    if shard_windows > 0 {
        // `--shard N`: seal a (time window × rack) root directory
        // instead of a single file; queries over it answer identically.
        return match uc_faultdb::build_sharded_db(&logdir, &out, shard_windows, &opts) {
            Ok(summary) => {
                println!(
                    "built {}: {} faults in {} shards, {} bytes",
                    summary.dir.display(),
                    summary.rows,
                    summary.shards,
                    summary.bytes
                );
                eprintln!("ingest + extract + seal took {:?}", t0.elapsed());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("build-db: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match uc_faultdb::build_db(&logdir, &out, &opts) {
        Ok(summary) => {
            println!(
                "built {}: {} faults in {} blocks, {} bytes",
                summary.path.display(),
                summary.rows,
                summary.blocks,
                summary.bytes
            );
            eprintln!("ingest + extract + seal took {:?}", t0.elapsed());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("build-db: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_query(args: &Args) -> ExitCode {
    if let Err(e) = args.validate(
        "query",
        &["timeout-ms", "threads", "explain"],
        2,
        usize::MAX,
    ) {
        return bad_usage(&e);
    }
    let timeout_ms = match args.get_u64_strict("timeout-ms", 0) {
        Ok(n) => n,
        Err(e) => return bad_usage(&e),
    };
    let db_path = PathBuf::from(&args.positional[0]);
    let expr = args.positional[1..].join(" ");
    // `open_auto` serves both shapes: a single `.ucfdb` file or a
    // sharded root directory (detected by its ROOT catalog).
    let db = match uc_faultdb::Engine::open_auto(&db_path) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("query: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.has("explain") {
        // Print the plan — shard and block pruning, per-block encodings,
        // the kernel that would run — without scanning anything.
        return match db.explain(&expr) {
            Ok(lines) => {
                for line in &lines {
                    println!("{line}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("query: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = QueryOptions {
        deadline: (timeout_ms > 0)
            .then(|| std::time::Instant::now() + Duration::from_millis(timeout_ms)),
    };
    let t0 = std::time::Instant::now();
    match db.query(&expr, &opts) {
        Ok(result) => {
            for line in &result.lines {
                println!("{line}");
            }
            eprintln!(
                "matched {} rows; scanned {}/{} shards, {}/{} blocks ({} rows) in {:?}",
                result.matched,
                result.shards_scanned,
                result.shards_total,
                result.blocks_scanned,
                result.blocks_total,
                result.rows_scanned,
                t0.elapsed()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("query: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_serve(args: &Args) -> ExitCode {
    if let Err(e) = args.validate(
        "serve",
        &[
            "addr",
            "workers",
            "queue",
            "timeout-ms",
            "selftest",
            "selftest-repl",
            "threads",
            "ingest",
            "ingest-addr",
            "chaos-seed",
            "replica-of",
            "auto-promote-ms",
        ],
        0,
        1,
    ) {
        return bad_usage(&e);
    }
    let workers = match args.get_u64_strict("workers", 4) {
        Ok(n) if n >= 1 => n as usize,
        Ok(_) => return bad_usage("--workers must be at least 1"),
        Err(e) => return bad_usage(&e),
    };
    let queue = match args.get_u64_strict("queue", 16) {
        Ok(n) if n >= 1 => n as usize,
        Ok(_) => return bad_usage("--queue must be at least 1"),
        Err(e) => return bad_usage(&e),
    };
    let timeout_ms = match args.get_u64_strict("timeout-ms", 5_000) {
        Ok(n) => n,
        Err(e) => return bad_usage(&e),
    };
    let selftest = match args.get_u64_strict("selftest", 0) {
        Ok(n) => n,
        Err(e) => return bad_usage(&e),
    };
    if args.has("selftest") && selftest == 0 {
        return bad_usage("--selftest requires a positive client count");
    }
    if args.has("ingest-addr") && !args.has("ingest") {
        return bad_usage("--ingest-addr only makes sense with --ingest");
    }
    if args.has("replica-of") && !args.has("ingest") {
        return bad_usage("--replica-of only makes sense with --ingest");
    }
    if args.has("selftest-repl") && !args.has("ingest") {
        return bad_usage("--selftest-repl only makes sense with --ingest");
    }
    if args.has("auto-promote-ms") && !args.has("replica-of") {
        return bad_usage("--auto-promote-ms only makes sense with --replica-of");
    }
    if args.has("replica-of") && selftest > 0 {
        return bad_usage("--selftest and --replica-of are mutually exclusive");
    }
    if !args.has("selftest-repl") && args.positional.is_empty() {
        return bad_usage("serve needs a database path (or --selftest-repl)");
    }

    if args.has("ingest") {
        return cmd_serve_ingest(args, selftest);
    }

    let db_path = PathBuf::from(&args.positional[0]);
    let db = match uc_faultdb::Engine::open_auto(&db_path) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };

    if selftest > 0 {
        match uc_faultdb::selftest(db.clone(), selftest as usize) {
            Ok(report) => {
                println!(
                    "selftest: {} clients, {} requests, {} ok, {} overloaded rejections, {} mismatches",
                    report.clients,
                    report.requests,
                    report.ok,
                    report.overloaded_rejections,
                    report.mismatches
                );
                let cache = db.cache_stats();
                eprintln!(
                    "cache: {} hits, {} misses, {} evictions ({:.1}% hit rate)",
                    cache.hits,
                    cache.misses,
                    cache.evictions,
                    100.0 * cache.hit_rate()
                );
                if report.mismatches == 0 {
                    ExitCode::SUCCESS
                } else {
                    eprintln!("selftest FAILED: concurrent responses diverged from the single-threaded engine");
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("selftest: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let cfg = ServeConfig {
            addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
            workers,
            queue,
            request_timeout: Duration::from_millis(timeout_ms.max(1)),
            ..ServeConfig::default()
        };
        match uc_faultdb::Server::start(db, &cfg) {
            Ok(server) => {
                eprintln!(
                    "serving {} on {} ({} workers, queue {}); send SHUTDOWN or SIGINT/SIGTERM to stop",
                    db_path.display(),
                    server.local_addr(),
                    cfg.workers,
                    cfg.queue
                );
                let handle = server.shutdown_handle();
                spawn_signal_watcher(move || handle.shutdown());
                let stats = server.join();
                eprintln!(
                    "served {} requests, rejected {} overloaded connections",
                    stats.served, stats.rejected
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("serve: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

/// `uc serve <livedir> --ingest`: a live database with a framed push
/// endpoint for nodes and the usual query endpoint for readers, both
/// draining gracefully on SHUTDOWN or SIGINT/SIGTERM. With
/// `--selftest N`, runs the chaos-driven end-to-end check instead.
fn cmd_serve_ingest(args: &Args, selftest: u64) -> ExitCode {
    if args.has("selftest-repl") {
        let seed = match args.get_u64_strict("chaos-seed", 1) {
            Ok(n) => n,
            Err(e) => return bad_usage(&e),
        };
        return match uc_faultdb::repl_selftest(seed) {
            Ok(report) => {
                println!("{}", report.render());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("replication selftest FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let dir = PathBuf::from(&args.positional[0]);

    if selftest > 0 {
        let seed = match args.get_u64_strict("chaos-seed", 1) {
            Ok(n) => n,
            Err(e) => return bad_usage(&e),
        };
        return match uc_faultdb::ingest_selftest(&dir, selftest as usize, seed) {
            Ok(report) => {
                println!(
                    "ingest selftest: {} clients, {}/{} records acked, {} reconnects, \
                     {} chaos events, {} sheds, {} mismatches",
                    report.clients,
                    report.records_acked,
                    report.records_sent,
                    report.reconnects,
                    report.chaos_events,
                    report.sheds,
                    report.mismatches
                );
                if report.mismatches == 0 && report.records_acked == report.records_sent {
                    ExitCode::SUCCESS
                } else {
                    eprintln!(
                        "ingest selftest FAILED: live database diverged from the batch oracle"
                    );
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("ingest selftest: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let (live, open) = match uc_faultdb::LiveDb::open(&dir) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("serve --ingest: {e}");
            return ExitCode::FAILURE;
        }
    };
    let live = Arc::new(live);
    eprintln!(
        "opened live db {}: {} records replayed from {} WAL segment(s), {} gen {} ({} torn bytes trimmed)",
        dir.display(),
        open.replayed,
        open.wal.segments,
        if open.served_existing {
            "serving existing"
        } else {
            "resealed"
        },
        open.generation,
        open.wal.torn_bytes
    );

    // Role + admin: a primary accepts pushes and ships WAL to SYNC
    // sessions; a replica follows its upstream (readonly until a
    // PROMOTE, manual or automatic). Both answer PROMOTE and report
    // repl_* STATS lines over the query wire.
    let (role, repl) = if let Some(upstream) = args.get("replica-of") {
        let auto_ms = match args.get_u64_strict("auto-promote-ms", 0) {
            Ok(n) => n,
            Err(e) => return bad_usage(&e),
        };
        let mut rcfg = uc_faultdb::ReplicaConfig::new(upstream);
        if auto_ms > 0 {
            rcfg.auto_promote_after = Some(Duration::from_millis(auto_ms));
        }
        let repl = Arc::new(uc_faultdb::Replication::start(Arc::clone(&live), rcfg));
        (repl.role(), Some(repl))
    } else {
        (Arc::new(uc_faultdb::Role::primary()), None)
    };
    let admin: Arc<dyn uc_faultdb::ServerAdmin> = match &repl {
        Some(repl) => Arc::new(uc_faultdb::NodeAdmin::replica(
            Arc::clone(&live),
            Arc::clone(repl),
        )),
        None => Arc::new(uc_faultdb::NodeAdmin::primary(
            Arc::clone(&live),
            Arc::clone(&role),
        )),
    };

    let ingest_cfg = IngestConfig {
        addr: args
            .get("ingest-addr")
            .unwrap_or("127.0.0.1:7879")
            .to_string(),
        ..IngestConfig::default()
    };
    let ingest = match uc_faultdb::IngestServer::start_with_role(
        Arc::clone(&live),
        &ingest_cfg,
        Some(Arc::clone(&role)),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve --ingest: {e}");
            return ExitCode::FAILURE;
        }
    };
    let query_cfg = ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        ..ServeConfig::default()
    };
    let query = match uc_faultdb::Server::start_with_admin(live.handle(), &query_cfg, Some(admin)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve --ingest: {e}");
            ingest.shutdown();
            ingest.join();
            return ExitCode::FAILURE;
        }
    };
    match args.get("replica-of") {
        Some(upstream) => eprintln!(
            "replica of {upstream}: ingest on {} (readonly), queries on {}; \
             send PROMOTE to take over, SHUTDOWN or SIGINT/SIGTERM to stop",
            ingest.local_addr(),
            query.local_addr()
        ),
        None => eprintln!(
            "ingest on {}, queries on {}; send SHUTDOWN or SIGINT/SIGTERM to stop",
            ingest.local_addr(),
            query.local_addr()
        ),
    }

    let iq = ingest.shutdown_handle();
    let qq = query.shutdown_handle();
    spawn_signal_watcher(move || {
        iq.shutdown();
        qq.shutdown();
    });
    // The query server owns lifetime: its SHUTDOWN command (or a signal)
    // ends both endpoints.
    let qstats = query.join();
    ingest.shutdown();
    let istats = ingest.join();
    if let Some(repl) = &repl {
        let rs = repl.stats();
        eprintln!(
            "replication: role {}, epoch {}, lag {}, {} connects, {} records applied, {} seals",
            rs.role, rs.epoch, rs.lag, rs.connects, rs.applied, rs.seals
        );
    }
    // One last seal so everything acked is also queryable after restart
    // without a WAL replay rebuild. A still-readonly replica must not
    // seal locally: its generation crossings come from the primary's
    // seal markers, never from its own clock.
    if role.is_readonly() {
        drop(repl);
    } else if let Err(e) = live.seal() {
        eprintln!("final seal failed: {e}");
        return ExitCode::FAILURE;
    }
    let status = live.status();
    eprintln!(
        "served {} queries ({} shed); ingested {} records over {} sessions ({} shed, {} protocol errors); \
         final generation {} with {} records",
        qstats.served,
        qstats.rejected,
        status.records,
        istats.sessions,
        istats.rejected,
        istats.protocol_errors,
        status.generation,
        status.gen_records
    );
    ExitCode::SUCCESS
}

/// `uc stream <addr> <logdir>`: push every `node-*.log` in a directory
/// to a live ingest server, one resilient session per node.
fn cmd_stream(args: &Args) -> ExitCode {
    if let Err(e) = args.validate(
        "stream",
        &["batch", "chaos-seed", "seal", "max-attempts", "threads"],
        2,
        2,
    ) {
        return bad_usage(&e);
    }
    let batch = match args.get_u64_strict("batch", 64) {
        Ok(n) if n >= 1 => n as usize,
        Ok(_) => return bad_usage("--batch must be at least 1"),
        Err(e) => return bad_usage(&e),
    };
    let max_attempts = match args.get_u32_strict("max-attempts", 10) {
        Ok(n) if n >= 1 => n,
        Ok(_) => return bad_usage("--max-attempts must be at least 1"),
        Err(e) => return bad_usage(&e),
    };
    let chaos_seed = match args.get_u64_strict("chaos-seed", 0) {
        Ok(n) => n,
        Err(e) => return bad_usage(&e),
    };
    let addr = {
        use std::net::ToSocketAddrs;
        match args.positional[0].to_socket_addrs() {
            Ok(mut addrs) => match addrs.next() {
                Some(a) => a,
                None => return bad_usage("stream address resolved to nothing"),
            },
            Err(e) => return bad_usage(&format!("bad stream address {}: {e}", args.positional[0])),
        }
    };
    let logdir = PathBuf::from(&args.positional[1]);
    let paths = match uc_faultlog::ingest::node_log_paths(&logdir) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("stream: {e}");
            return ExitCode::FAILURE;
        }
    };

    let opts = StreamOptions {
        batch,
        retry: uc_faultlog::durable::RetryPolicy {
            max_attempts,
            ..StreamOptions::default().retry
        },
        seal_at_end: false,
        chaos: (chaos_seed > 0).then(|| uc_faultlog::chaos::NetChaosConfig::hostile(chaos_seed)),
    };
    let t0 = std::time::Instant::now();
    let mut total_acked = 0u64;
    let mut total_retries = 0u32;
    let mut failures = 0u64;
    let n = paths.len();
    let results = uc_parallel::par_map(&paths, |_, path| {
        let name = path.file_name().and_then(|s| s.to_str()).unwrap_or("");
        let Some(node) = uc_faultlog::ingest::node_of_log_file_name(name) else {
            return Err(format!("{}: not a node log file", path.display()));
        };
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        uc_faultdb::stream_lines(addr, node, &lines, &opts, None)
            .map(|r| (node, r))
            .map_err(|e| format!("{node}: {e}"))
    });
    for r in results {
        match r {
            Ok((node, report)) => {
                eprintln!(
                    "streamed {node}: {} records acked over {} connection(s), {} retries",
                    report.acked, report.connects, report.retries
                );
                total_acked += report.acked;
                total_retries += report.retries;
            }
            Err(e) => {
                eprintln!("stream FAILED: {e}");
                failures += 1;
            }
        }
    }
    // One seal at the end, not per node: generations are global. Without
    // `--seal x` the records are still WAL-durable and replayed on
    // restart; they just aren't queryable until the server next seals.
    if failures == 0 && args.has("seal") {
        if let Err(e) = seal_remote(addr) {
            eprintln!("stream: final seal failed: {e}");
            failures += 1;
        }
    }
    println!(
        "streamed {n} node log(s): {total_acked} records acked, {total_retries} retries, \
         {failures} failures in {:?}",
        t0.elapsed()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Ask the server to seal a generation using a node-less session: HELLO
/// as an arbitrary real node with zero records, then SEAL.
fn seal_remote(addr: std::net::SocketAddr) -> Result<(), uc_faultdb::DbError> {
    // A SEAL needs a session but no records; any valid node name works
    // and an empty line set means the cursor math is untouched.
    let node = uc_cluster::NodeId::from_name("01-01").expect("static name is valid");
    let opts = StreamOptions {
        seal_at_end: true,
        ..StreamOptions::default()
    };
    uc_faultdb::stream_lines(addr, node, &[], &opts, None).map(drop)
}

fn cmd_fsck(args: &Args) -> ExitCode {
    if let Err(e) = args.validate("fsck", &["threads"], 1, 1) {
        return bad_usage(&e);
    }
    let dir = PathBuf::from(&args.positional[0]);
    // Live ingest directories carry WAL segments, sealed generations, and
    // a catalog on top of the durable segment format; their fsck enforces
    // the same conservation law but also promotes or rolls back torn
    // generation seals.
    if uc_faultdb::is_live_dir(&dir) {
        return match uc_faultdb::fsck_live_dir(&dir) {
            Ok(report) => {
                eprintln!("fsck (live) {}:", dir.display());
                eprintln!("{}", report.render());
                if report.is_conserved() {
                    ExitCode::SUCCESS
                } else {
                    eprintln!("fsck: CONSERVATION VIOLATED — this is a bug, bytes were lost");
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("fsck {}: {e}", dir.display());
                ExitCode::FAILURE
            }
        };
    }
    // A sharded root: quarantine torn seals (shard tmps and ROOT.tmp),
    // then validate the catalog CRC, every shard footer, the
    // catalog-vs-shard row agreement, and every block payload CRC.
    if uc_faultdb::is_root_dir(&dir) {
        match uc_faultdb::quarantine_db_tmps(&dir) {
            Ok(moved) => {
                for (name, bytes) in &moved {
                    eprintln!("quarantined torn db seal {name} ({bytes} bytes) to .lost+found");
                }
            }
            Err(e) => {
                eprintln!("fsck {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
        return match uc_faultdb::RootDb::open(&dir).and_then(|db| {
            db.verify_deep()?;
            Ok(db)
        }) {
            Ok(db) => {
                eprintln!("fsck (root) {}:", dir.display());
                eprintln!(
                    "  {} shards, {} rows, {} blocks — catalog and every block CRC verified",
                    db.shard_count(),
                    db.rows(),
                    db.blocks()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("fsck {}: {e}", dir.display());
                ExitCode::FAILURE
            }
        };
    }
    // A crash inside `uc campaign --db` (or `uc build-db`) can leave a
    // half-written `*.ucfdb.tmp` in its write-then-rename window; the
    // sealed databases themselves are never damaged. Quarantine the
    // residue into `.lost+found` like any other torn tail.
    match uc_faultdb::quarantine_db_tmps(&dir) {
        Ok(moved) => {
            for (name, bytes) in &moved {
                eprintln!("quarantined torn db seal {name} ({bytes} bytes) to .lost+found");
            }
        }
        Err(e) => {
            eprintln!("fsck {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let mut targets = vec![dir.clone()];
    let ckpt_dir = dir.join(".checkpoints");
    if ckpt_dir.is_dir() {
        targets.push(ckpt_dir);
    }
    let mut conserved = true;
    for target in targets {
        match uc_faultlog::durable::fsck_dir(&target) {
            Ok(report) => {
                eprintln!("fsck {}:", target.display());
                eprintln!("{}", report.summary());
                conserved &= report.is_conserved();
            }
            Err(e) => {
                eprintln!("fsck {}: {e}", target.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if conserved {
        ExitCode::SUCCESS
    } else {
        eprintln!("fsck: CONSERVATION VIOLATED — this is a bug, bytes were lost");
        ExitCode::FAILURE
    }
}

/// `uc scrub <livedir>`: walk every sealed generation and WAL segment
/// verifying CRCs, repair damaged generations by resealing from the WAL,
/// and quarantine unrecoverables under the fsck conservation law. With
/// `--watch-ms N`, patrol continuously until SIGINT/SIGTERM.
fn cmd_scrub(args: &Args) -> ExitCode {
    if let Err(e) = args.validate(
        "scrub",
        &["dry-run", "rate-mb", "watch-ms", "threads"],
        1,
        1,
    ) {
        return bad_usage(&e);
    }
    let dir = PathBuf::from(&args.positional[0]);
    let rate_mb = match args.get_u64_strict("rate-mb", 0) {
        Ok(n) => n,
        Err(e) => return bad_usage(&e),
    };
    let watch_ms = match args.get_u64_strict("watch-ms", 0) {
        Ok(n) => n,
        Err(e) => return bad_usage(&e),
    };
    let cfg = uc_faultdb::ScrubConfig {
        repair: !args.has("dry-run"),
        max_bytes_per_sec: if rate_mb > 0 {
            Some(rate_mb.saturating_mul(1 << 20))
        } else {
            None
        },
    };

    if watch_ms > 0 {
        let scrubber =
            uc_faultdb::Scrubber::start(&dir, Duration::from_millis(watch_ms.max(1)), cfg);
        eprintln!(
            "scrubbing {} every {watch_ms}ms; send SIGINT/SIGTERM to stop",
            dir.display()
        );
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        spawn_signal_watcher(move || {
            let _ = tx.send(());
        });
        let _ = rx.recv();
        let rounds = scrubber.rounds();
        let busy = scrubber.busy_skips();
        let repaired = scrubber.repaired();
        let last = scrubber.last_report();
        scrubber.stop();
        if let Some(report) = last {
            eprintln!("{report}");
        }
        eprintln!("scrub: {rounds} rounds, {repaired} generations repaired, {busy} busy skips");
        return ExitCode::SUCCESS;
    }

    match uc_faultdb::scrub_live_dir(&dir, &cfg) {
        Ok(report) => {
            eprintln!("scrub {}:", dir.display());
            eprintln!("{}", report.render());
            if !report.is_conserved() {
                eprintln!("scrub: CONSERVATION VIOLATED — this is a bug, bytes were lost");
                ExitCode::FAILURE
            } else if report.gens_unrecoverable > 0 {
                eprintln!(
                    "scrub: {} generation(s) unrecoverable — quarantined to .lost+found",
                    report.gens_unrecoverable
                );
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("scrub {}: {e}", dir.display());
            ExitCode::FAILURE
        }
    }
}

/// `uc promote <addr>`: ask a serving node (primary or replica) over its
/// query port to stop following and start accepting writes at a bumped
/// epoch. The old primary, if partitioned away, is fenced on reconnect.
fn cmd_promote(args: &Args) -> ExitCode {
    if let Err(e) = args.validate("promote", &[], 1, 1) {
        return bad_usage(&e);
    }
    use std::net::ToSocketAddrs;
    let addr = match args.positional[0].to_socket_addrs() {
        Ok(mut addrs) => match addrs.next() {
            Some(a) => a,
            None => return bad_usage("promote: address resolved to nothing"),
        },
        Err(e) => {
            eprintln!("promote {}: {e}", args.positional[0]);
            return ExitCode::FAILURE;
        }
    };
    let mut client = match uc_faultdb::Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("promote {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match client.request("PROMOTE") {
        Ok(uc_faultdb::Response::Ok(lines)) => {
            for line in &lines {
                println!("{line}");
            }
            eprintln!("promoted: {addr} now accepts writes");
            ExitCode::SUCCESS
        }
        Ok(uc_faultdb::Response::Err { kind, message }) => {
            eprintln!("promote {addr}: {kind}: {message}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("promote {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_scan(args: &Args) -> ExitCode {
    if let Err(e) = args.validate(
        "scan",
        &["mb", "iters", "pattern", "parallel", "threads"],
        0,
        0,
    ) {
        return bad_usage(&e);
    }
    let mb = match args.get_u64_strict("mb", 256) {
        // The scanner takes bytes; reject sizes whose byte count would
        // overflow instead of wrapping in the multiply below.
        Ok(n) if n.checked_mul(1024 * 1024).is_some() => n,
        Ok(n) => return bad_usage(&format!("--mb {n} is too large (byte count overflows)")),
        Err(e) => return bad_usage(&e),
    };
    let iters = match args.get_u64_strict("iters", 4) {
        Ok(n) => n,
        Err(e) => return bad_usage(&e),
    };
    let pattern = match args.get("pattern") {
        Some("incrementing") => Pattern::incrementing(),
        Some("checkerboard") => Pattern::Checkerboard,
        Some("alternating") | None => Pattern::Alternating,
        Some(other) => {
            return bad_usage(&format!(
                "--pattern must be alternating|incrementing|checkerboard, got {other:?}"
            ))
        }
    };
    let parallel = args.has("parallel");
    println!(
        "scanning {mb} MB of host memory, {iters} passes, {} pattern{}...",
        pattern.tag(),
        if parallel { ", parallel" } else { "" }
    );
    let t0 = std::time::Instant::now();
    let report = if parallel {
        run_host_scan_parallel(mb * 1024 * 1024, iters, pattern, None)
    } else {
        run_host_scan(mb * 1024 * 1024, iters, pattern)
    };
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "{} words x {} passes in {secs:.2}s ({:.0}M words/s): {} errors",
        report.words,
        report.iterations,
        report.words as f64 * report.iterations as f64 / secs / 1e6,
        report.errors.len()
    );
    let mut line = String::with_capacity(128);
    for e in &report.errors {
        line.clear();
        uc_faultlog::codec::write_record_into(
            &mut line,
            &uc_faultlog::record::LogRecord::Error(*e),
        );
        println!("{line}");
    }
    if report.errors.is_empty() {
        println!("no corruption observed (expected on ECC-protected hosts)");
    }
    ExitCode::SUCCESS
}

/// Open a replay source for `uc policy`: a sealed `.ucfdb` file, a
/// sharded root directory, or a live ingest directory (replayed from
/// its current sealed generation).
fn open_replay_engine(path: &std::path::Path) -> Result<uc_faultdb::Engine, String> {
    if uc_faultdb::is_live_dir(path) {
        let catalog = uc_faultdb::Catalog::load(path)
            .ok_or_else(|| format!("{}: unreadable live catalog", path.display()))?;
        let current = catalog.current.ok_or_else(|| {
            format!(
                "{}: live directory has no sealed generation yet (seal one first)",
                path.display()
            )
        })?;
        let gen = path.join(uc_faultdb::gen_file_name(current));
        uc_faultdb::Engine::open_auto(&gen).map_err(|e| format!("{}: {e}", gen.display()))
    } else {
        uc_faultdb::Engine::open_auto(path).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// `uc policy <db|livedir>`: day-replay the stored fault stream through
/// the mitigation policy engine and print the cost-vs-coverage table.
fn cmd_policy(args: &Args) -> ExitCode {
    use uc_policy::{render_csv, render_table, run_comparison, PolicyKind, ReplayConfig};

    if let Err(e) = args.validate(
        "policy",
        &[
            "policy",
            "seed",
            "train-days",
            "threshold",
            "csv",
            "selftest",
            "threads",
        ],
        0,
        1,
    ) {
        return bad_usage(&e);
    }
    let seed = match args.get_u64_strict("seed", 0) {
        Ok(n) => n,
        Err(e) => return bad_usage(&e),
    };
    if args.has("selftest") {
        if !args.positional.is_empty() {
            return bad_usage("policy --selftest builds its own corpus and takes no database path");
        }
        return match unprotected_computing::policyrun::policy_selftest(seed) {
            Ok(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("policy selftest FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let Some(path) = args.positional.first() else {
        return bad_usage("policy requires a database path (or --selftest x)");
    };
    let kinds: Vec<PolicyKind> = match args.get("policy") {
        None | Some("all") => PolicyKind::ALL.to_vec(),
        Some(name) => match PolicyKind::parse(name) {
            Some(k) => vec![k],
            None => {
                return bad_usage(&format!(
                    "--policy must be never|always-checkpoint|threshold|bandit|oracle|all, got {name:?}"
                ))
            }
        },
    };
    let train_days = if args.has("train-days") {
        match args.get_u64_strict("train-days", 0) {
            Ok(n) => match i64::try_from(n) {
                Ok(d) => Some(d),
                Err(_) => return bad_usage(&format!("--train-days {n} is too large")),
            },
            Err(e) => return bad_usage(&e),
        }
    } else {
        None
    };
    let threshold = match args.get_u32_strict("threshold", 3) {
        Ok(n) if n >= 1 => n,
        Ok(_) => return bad_usage("--threshold must be at least 1"),
        Err(e) => return bad_usage(&e),
    };

    let path = PathBuf::from(path);
    let db = match open_replay_engine(&path) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("policy: {e}");
            return ExitCode::FAILURE;
        }
    };
    let t0 = std::time::Instant::now();
    let days = match db.collect_days() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("policy: {e}");
            return ExitCode::FAILURE;
        }
    };
    if days.is_empty() {
        println!(
            "policy: {} holds no faults; nothing to replay",
            path.display()
        );
        return ExitCode::SUCCESS;
    }
    if let Some(td) = train_days {
        // A training window that swallows the whole stream leaves no
        // evaluation days — every total would be vacuously zero.
        if td >= days.len() as i64 {
            eprintln!(
                "policy: --train-days {td} leaves no evaluation days (stream spans {} days)",
                days.len()
            );
            return ExitCode::FAILURE;
        }
    }
    let cfg = ReplayConfig {
        seed,
        train_days,
        threshold,
        ..ReplayConfig::default()
    };
    let cmp = run_comparison(&days, &kinds, &cfg);
    print!("{}", render_table(&cmp));
    eprintln!(
        "replayed {} days x {} policies in {:?}",
        days.len(),
        cmp.runs.len(),
        t0.elapsed()
    );
    if let Some(csv_path) = args.get("csv") {
        if let Err(e) = std::fs::write(csv_path, render_csv(&cmp)) {
            eprintln!("policy: failed to write {csv_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote CSV to {csv_path}");
    }
    ExitCode::SUCCESS
}

fn cmd_report(args: &Args) -> ExitCode {
    if let Err(e) = args.validate("report", &["seed", "blades", "csv", "threads"], 0, 0) {
        return bad_usage(&e);
    }
    let cfg = match config_for(args) {
        Ok(c) => c,
        Err(e) => return bad_usage(&e),
    };
    let result = run_campaign(&cfg);
    let report = Report::build(&result);
    if let Some(dir) = args.get("csv") {
        match unprotected_core::csv::write_all(&report, &PathBuf::from(dir)) {
            Ok(paths) => eprintln!("wrote {} CSV series to {dir}", paths.len()),
            Err(e) => {
                eprintln!("failed to write CSVs: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{}", render::full_report(&report));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        return bad_usage("missing subcommand");
    };
    if cmd == "--version" {
        println!("uc {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    if cmd == "help" || cmd == "--help" {
        // Asked-for usage goes to stdout and exits 0, unlike the exit-2
        // stderr copy a *wrong* invocation gets.
        println!("{}", usage_text());
        return ExitCode::SUCCESS;
    }
    let args = Args::parse(rest);
    // `--threads N` caps every worker pool for the rest of the process
    // (same knob as the UC_THREADS environment variable, which it
    // overrides). All parallel stages are deterministic, so this only
    // trades wall-clock time — never output bytes.
    if args.has("threads") {
        // Same strict contract as every other numeric flag: garbage and
        // overflow are both usage errors (exit 2), zero is rejected.
        match args.get_u64_strict("threads", 0) {
            Ok(n) if n >= 1 => match usize::try_from(n) {
                Ok(n) => uc_parallel::set_thread_limit(Some(n)),
                Err(_) => return bad_usage(&format!("--threads {n} is too large")),
            },
            Ok(_) => return bad_usage("--threads requires a positive integer, got \"0\""),
            Err(e) => return bad_usage(&e),
        }
    }
    match COMMANDS.iter().find(|c| c.name == cmd.as_str()) {
        Some(command) => (command.run)(&args),
        None => bad_usage(&format!("unknown subcommand {cmd:?}")),
    }
}
