//! `uc` — the command-line front end.
//!
//! Subcommands:
//!
//! - `uc campaign --out <dir> [--seed N] [--blades N] [--compact x] [--resume x] [--durable x]` —
//!   run a campaign and write per-node log files (the paper's on-disk
//!   layout) plus the full text report. Per-node checkpoints are kept in
//!   `<out>/.checkpoints` as durable segments; `--resume` restores
//!   finished nodes from them instead of recomputing (resumed output is
//!   byte-identical to an uninterrupted run), while a fresh run clears
//!   them first. `--durable` writes logs as checksummed `.dlog` segments
//!   (length-framed, CRC per record, whole-file digest in `MANIFEST`)
//!   instead of plain text; a node whose storage fails degrades that node,
//!   never the campaign;
//! - `uc fsck <dir>` — verify a durable directory (and its
//!   `.checkpoints`, if present): check manifests and frame checksums,
//!   keep the longest valid prefix of each torn file, move damaged tails
//!   to `<dir>/.lost+found`, rebuild the manifest, and print accounting
//!   under the conservation law `bytes_in == salvaged + quarantined`;
//! - `uc analyze <dir> [--threads N]` — load a log directory (plain and
//!   durable files alike; fsck salvage history is folded into the ingest
//!   accounting), run the extraction methodology and print the analyses
//!   that derive from logs alone. `--threads` caps the analysis worker
//!   pool (equivalent to the `UC_THREADS` environment variable; output is
//!   byte-identical at any setting, see DESIGN.md §6);
//! - `uc scan [--mb N] [--iters N]` — scan real host memory (memtester
//!   mode; see also the `memscan_host` example for fault injection);
//! - `uc report [--seed N] [--blades N] [--csv <dir>]` — run a campaign in memory and
//!   print every figure and table.
//!
//! Argument handling is deliberately bare: flags are `--key value` pairs.

use std::path::PathBuf;
use std::process::ExitCode;

use uc_analysis::daily::DailySeries;
use uc_analysis::extract::{extract_recovered, ExtractConfig};
use uc_analysis::fault::Fault;
use uc_analysis::multibit::{multibit_stats, table_i};
use uc_analysis::spatial::top_nodes;
use uc_faultlog::files::{write_cluster_log, write_cluster_log_compact};
use uc_memscan::host::{run_host_scan, run_host_scan_parallel};
use uc_memscan::Pattern;
use unprotected_core::{checkpoint, render, run_campaign, CampaignConfig, Report};

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it.next().cloned().unwrap_or_default();
                flags.push((key.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  uc campaign --out <dir> [--seed N] [--blades N] [--compact x] [--resume x] [--durable x]\n  \
         uc fsck <dir>\n  \
         uc analyze <dir> [--threads N]\n  uc scan [--mb N] [--iters N] [--pattern alternating|incrementing|checkerboard] [--parallel x]\n  \
         uc report [--seed N] [--blades N] [--csv <dir>] [--threads N]"
    );
    ExitCode::FAILURE
}

fn config_for(args: &Args) -> CampaignConfig {
    let seed = args.get_u64("seed", 42);
    match args.get_u64("blades", 0) {
        0 => CampaignConfig::paper_default(seed),
        b => CampaignConfig::small(seed, b.clamp(6, 63) as u32),
    }
}

fn cmd_campaign(args: &Args) -> ExitCode {
    let Some(out) = args.get("out") else {
        eprintln!("campaign requires --out <dir>");
        return ExitCode::FAILURE;
    };
    let cfg = config_for(args);
    let dir = PathBuf::from(out);
    let resume = args.flags.iter().any(|(k, _)| k == "resume");
    let ckpt_dir = dir.join(".checkpoints");
    if !resume {
        // Stale checkpoints from an earlier run (possibly another seed)
        // must not leak into a fresh campaign.
        if let Err(e) = checkpoint::clear_checkpoints(&ckpt_dir) {
            eprintln!("failed to clear checkpoints in {}: {e}", ckpt_dir.display());
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "running campaign: seed {}, {} candidate nodes{}...",
        cfg.seed,
        cfg.topology.monitored_node_count(),
        if resume { " (resuming)" } else { "" }
    );
    let result = checkpoint::run_campaign_checkpointed(&cfg, &ckpt_dir);
    if result.is_degraded() {
        for (node, attempts, reason) in result.failed_nodes() {
            eprintln!("WARNING: node {node} failed after {attempts} attempt(s): {reason}");
        }
        eprintln!("campaign is DEGRADED: output covers the surviving nodes only");
    }
    let compact = args.flags.iter().any(|(k, _)| k == "compact");
    let durable = args.flags.iter().any(|(k, _)| k == "durable");
    if durable {
        let cluster = result.cluster_log();
        let out = if compact {
            uc_faultlog::durable::write_cluster_log_durable_compact(&dir, &cluster)
        } else {
            uc_faultlog::durable::write_cluster_log_durable(&dir, &cluster)
        };
        for (node, err) in &out.failures {
            eprintln!("WARNING: node {node} log not durable: {err}");
        }
        if let Some(err) = &out.manifest_error {
            eprintln!("WARNING: manifest not durable: {err}");
        }
        eprintln!(
            "wrote {} durable node log segments to {}{}",
            out.sealed.len(),
            dir.display(),
            if out.is_fully_durable() {
                ""
            } else {
                " (DEGRADED)"
            }
        );
    } else {
        let write = if compact {
            write_cluster_log_compact
        } else {
            write_cluster_log
        };
        match write(&dir, &result.cluster_log()) {
            Ok(n) => eprintln!("wrote {n} node log files to {}", dir.display()),
            Err(e) => {
                eprintln!("failed to write logs: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = Report::build(&result);
    let report_path = dir.join("report.txt");
    if let Err(e) = std::fs::write(&report_path, render::full_report(&report)) {
        eprintln!("failed to write report: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("report at {}", report_path.display());
    println!("{}", render::headline(&report));
    ExitCode::SUCCESS
}

fn cmd_analyze(args: &Args) -> ExitCode {
    let Some(dir) = args.positional.first() else {
        eprintln!("analyze requires a log directory");
        return ExitCode::FAILURE;
    };
    // Recovering, parallel load: `read_cluster_log_recovering` lossy-parses
    // each node-log file on its own worker (the full-scale campaign writes
    // ~36M lines / several GB of text) and merges the per-file ingest
    // accounting deterministically.
    let dir_path = PathBuf::from(dir);
    let t0 = std::time::Instant::now();
    let (cluster, stats) = match uc_faultlog::ingest::read_cluster_log_recovering(&dir_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    let file_count = cluster.node_logs().len() + stats.files_unreadable as usize;
    eprintln!(
        "parsed {} files in {:?} ({} worker threads)",
        file_count,
        t0.elapsed(),
        uc_parallel::worker_count(file_count)
    );
    eprintln!("{}", stats.summary());
    println!(
        "loaded {} node logs, {} raw records ({} raw errors)",
        cluster.node_logs().len(),
        cluster.raw_record_count(),
        cluster.raw_error_count()
    );

    // Extraction, flood filter, and the log-derivable analyses.
    let recovered = extract_recovered(&cluster, stats, &ExtractConfig::default(), 0.5);
    let faults: Vec<Fault> = recovered.faults;
    if !recovered.flood_nodes.is_empty() {
        println!(
            "excluded flood node(s): {:?}",
            recovered
                .flood_nodes
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
        );
    }
    println!("independent faults: {}", faults.len());

    let stats = multibit_stats(&faults);
    println!(
        "multi-bit: {} (double {}, >2-bit {}), max in-word gap {}",
        stats.multi_bit_faults,
        stats.double_bit_faults,
        stats.over_two_bit_faults,
        stats.max_bit_distance
    );
    println!("top nodes by fault count:");
    for (node, count) in top_nodes(&faults, 5) {
        println!("  {node}  {count}");
    }
    println!(
        "multi-bit corruption table rows: {}",
        table_i(&faults).len()
    );

    // Daily volume from the logs alone (START/END reconstruction).
    let first_day = faults.first().map(|f| f.time.day_index()).unwrap_or(0);
    let days = faults
        .last()
        .map(|f| (f.time.day_index() - first_day + 1) as usize)
        .unwrap_or(1);
    let mut daily = DailySeries::new(first_day, days.max(1));
    for log in cluster.node_logs() {
        daily.add_node_log(log);
    }
    daily.add_faults(&faults);
    let p = daily.scan_error_correlation();
    println!(
        "scan-volume vs daily-error Pearson: r = {:.4}, p = {:.4} over {} days",
        p.r, p.p_value, p.n
    );
    ExitCode::SUCCESS
}

fn cmd_fsck(args: &Args) -> ExitCode {
    let Some(dir) = args.positional.first() else {
        eprintln!("fsck requires a directory");
        return ExitCode::FAILURE;
    };
    let dir = PathBuf::from(dir);
    let mut targets = vec![dir.clone()];
    let ckpt_dir = dir.join(".checkpoints");
    if ckpt_dir.is_dir() {
        targets.push(ckpt_dir);
    }
    let mut conserved = true;
    for target in targets {
        match uc_faultlog::durable::fsck_dir(&target) {
            Ok(report) => {
                eprintln!("fsck {}:", target.display());
                eprintln!("{}", report.summary());
                conserved &= report.is_conserved();
            }
            Err(e) => {
                eprintln!("fsck {}: {e}", target.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if conserved {
        ExitCode::SUCCESS
    } else {
        eprintln!("fsck: CONSERVATION VIOLATED — this is a bug, bytes were lost");
        ExitCode::FAILURE
    }
}

fn cmd_scan(args: &Args) -> ExitCode {
    let mb = args.get_u64("mb", 256);
    let iters = args.get_u64("iters", 4);
    let pattern = match args.get("pattern") {
        Some("incrementing") => Pattern::incrementing(),
        Some("checkerboard") => Pattern::Checkerboard,
        _ => Pattern::Alternating,
    };
    let parallel =
        args.get("parallel").is_some() || args.flags.iter().any(|(k, _)| k == "parallel");
    println!(
        "scanning {mb} MB of host memory, {iters} passes, {} pattern{}...",
        pattern.tag(),
        if parallel { ", parallel" } else { "" }
    );
    let t0 = std::time::Instant::now();
    let report = if parallel {
        run_host_scan_parallel(mb * 1024 * 1024, iters, pattern, None)
    } else {
        run_host_scan(mb * 1024 * 1024, iters, pattern)
    };
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "{} words x {} passes in {secs:.2}s ({:.0}M words/s): {} errors",
        report.words,
        report.iterations,
        report.words as f64 * report.iterations as f64 / secs / 1e6,
        report.errors.len()
    );
    let mut line = String::with_capacity(128);
    for e in &report.errors {
        line.clear();
        uc_faultlog::codec::write_record_into(
            &mut line,
            &uc_faultlog::record::LogRecord::Error(*e),
        );
        println!("{line}");
    }
    if report.errors.is_empty() {
        println!("no corruption observed (expected on ECC-protected hosts)");
    }
    ExitCode::SUCCESS
}

fn cmd_report(args: &Args) -> ExitCode {
    let cfg = config_for(args);
    let result = run_campaign(&cfg);
    let report = Report::build(&result);
    if let Some(dir) = args.get("csv") {
        match unprotected_core::csv::write_all(&report, &PathBuf::from(dir)) {
            Ok(paths) => eprintln!("wrote {} CSV series to {dir}", paths.len()),
            Err(e) => {
                eprintln!("failed to write CSVs: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{}", render::full_report(&report));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        return usage();
    };
    let args = Args::parse(rest);
    // `--threads N` caps every worker pool for the rest of the process
    // (same knob as the UC_THREADS environment variable, which it
    // overrides). All parallel stages are deterministic, so this only
    // trades wall-clock time — never output bytes.
    if let Some(v) = args.get("threads") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => uc_parallel::set_thread_limit(Some(n)),
            _ => {
                eprintln!("--threads requires a positive integer, got {v:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    match cmd.as_str() {
        "campaign" => cmd_campaign(&args),
        "fsck" => cmd_fsck(&args),
        "analyze" => cmd_analyze(&args),
        "scan" => cmd_scan(&args),
        "report" => cmd_report(&args),
        _ => usage(),
    }
}
