//! # unprotected-computing — umbrella crate
//!
//! Reproduction of *"Unprotected Computing: A Large-Scale Study of DRAM Raw
//! Error Rate on a Supercomputer"* (Bautista-Gomez et al., SC 2016).
//!
//! This crate re-exports every subsystem of the workspace under one roof so
//! examples and downstream users can depend on a single crate:
//!
//! - [`simclock`]: virtual time, calendars, solar geometry, PRNG.
//! - [`parallel`]: the small data-parallel runtime used by the campaign.
//! - [`dram`]: the ECC-less LPDDR device model and the ECC codecs used to
//!   classify corruptions.
//! - [`thermal`]: room/node thermal model with positional effects.
//! - [`faults`]: fault-process models (cosmic, weak bit, degradation, flood).
//! - [`cluster`]: the prototype topology (72 blades x 15 SoCs).
//! - [`sched`]: the job scheduler that opens idle scan windows.
//! - [`memscan`]: the memory scanner tool (simulated-device and host modes).
//! - [`faultlog`]: log records, text codec, stores and streaming readers.
//! - [`analysis`]: the paper's full analysis suite (extraction, statistics,
//!   per-figure analyses).
//! - [`faultdb`]: the columnar fault database — binary store, query
//!   engine, and line-protocol server (`uc build-db` / `query` / `serve`).
//! - [`resilience`]: quarantine / page-retirement / checkpointing simulators
//!   plus the day-lease mitigation action cost surface.
//! - [`policy`]: the online mitigation policy engine behind `uc policy` —
//!   per-day feature extraction, static baselines, a seeded tabular
//!   bandit, and the clairvoyant oracle lower bound.
//! - [`core`]: campaign configuration, runner, and report generation.
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! ```
//! use unprotected_computing::core::{run_campaign, CampaignConfig, Report};
//!
//! // A 6-blade slice of the machine over the full 13-month window.
//! let result = run_campaign(&CampaignConfig::small(42, 6));
//! let report = Report::build(&result);
//! assert!(report.headline.independent_faults > 10_000);
//! assert_eq!(report.multibit.max_bit_distance, 11);
//! ```

pub mod direct;
pub mod policyrun;

pub use uc_analysis as analysis;
pub use uc_cluster as cluster;
pub use uc_dram as dram;
pub use uc_faultdb as faultdb;
pub use uc_faultlog as faultlog;
pub use uc_faults as faults;
pub use uc_memscan as memscan;
pub use uc_parallel as parallel;
pub use uc_policy as policy;
pub use uc_resilience as resilience;
pub use uc_sched as sched;
pub use uc_simclock as simclock;
pub use uc_thermal as thermal;
pub use unprotected_core as core;
