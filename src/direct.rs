//! The direct campaign→db streaming path: `uc campaign --db out.ucfdb`.
//!
//! Historically the only route from a simulation to a sealed fault
//! database took two trips through the filesystem:
//!
//! ```text
//! campaign → node-*.log text corpus → uc build-db → out.ucfdb
//! ```
//!
//! This module wires the campaign runner straight into the database
//! sealer through a typed in-memory fault channel, killing the text
//! middleman while keeping it as the *differential oracle*:
//!
//! * **Producer** — [`run_campaign_checkpointed_with`]'s `on_node` hook
//!   fires on each supervised simulation worker the moment a node
//!   completes (fresh or checkpoint-restored; never for a failed node).
//!   The hook recovers the node's log *in memory* with
//!   [`recover_log`](uc_faultlog::ingest::recover_log) — proven
//!   byte-equivalent to writing the node's text file and reading it
//!   back — and emits the [`Recovered`] into a bounded
//!   [`stage_shared`] channel.
//! * **Consumer** — folds arrivals into a
//!   [`DirectFold`](uc_faultdb::direct::DirectFold): an
//!   order-insensitive bag, because completion order is
//!   nondeterministic across thread counts.
//! * **Seal** — [`seal_recovered`](uc_faultdb::direct::seal_recovered)
//!   imposes the directory reader's total order (sort by node id),
//!   merges ingest stats additively, and runs the *identical*
//!   `Snapshot::from_cluster` → `write_db` tail the text path uses —
//!   including the tmp + fsync + atomic-rename crash discipline, so a
//!   crash mid-seal leaves only a `*.ucfdb.tmp` for `uc fsck` to
//!   quarantine.
//!
//! The contract, enforced by `tests/direct_path.rs`: for the same
//! config, `campaign --db` produces a file **byte-identical** to
//! `campaign --out <plain text logs>` + `uc build-db`, at every thread
//! count and under degraded rosters (failed nodes contribute nothing on
//! either path).

use std::path::Path;

use uc_faultdb::direct::{seal_recovered, DirectFold};
use uc_faultdb::error::DbError;
use uc_faultdb::format::{WriteOptions, WriteSummary};
use uc_faultlog::ingest::{recover_log, IngestStats, Recovered};
use uc_parallel::pipeline::stage_shared;
use unprotected_core::{run_campaign_checkpointed_with, CampaignConfig, CampaignResult};

/// Bounded depth of the fault channel between simulation workers and
/// the fold. Deep enough that emit almost never blocks a worker, small
/// enough that memory stays bounded on huge rosters.
const CHANNEL_CAPACITY: usize = 64;

/// Everything the direct path produces: the campaign outcome (for the
/// report and degraded-roster warnings), the seal summary, and the
/// merged ingest stats (the same provenance counters a text re-ingest
/// would have produced).
pub struct DirectCampaignOutput {
    pub result: CampaignResult,
    pub summary: WriteSummary,
    pub stats: IngestStats,
}

/// Run a checkpointed campaign and stream its faults straight into a
/// sealed database at `db_path`, no text corpus in between.
///
/// Checkpoints behave exactly as in the text path (`ckpt_dir` is read
/// and written the same way), so `--resume` semantics carry over.
pub fn campaign_to_db(
    cfg: &CampaignConfig,
    ckpt_dir: &Path,
    db_path: &Path,
    opts: &WriteOptions,
) -> Result<DirectCampaignOutput, DbError> {
    let mut result_slot: Option<CampaignResult> = None;
    let (fold, _stage) = stage_shared(
        CHANNEL_CAPACITY,
        1,
        |emit: &(dyn Fn(Recovered) + Sync)| {
            // In-memory recovery runs here, on the simulation workers,
            // so the expensive part parallelizes with the simulation.
            let result = run_campaign_checkpointed_with(cfg, ckpt_dir, |sim| {
                emit(recover_log(&sim.log));
            });
            result_slot = Some(result);
        },
        DirectFold::new,
        |mut acc, rec| {
            acc.add(rec);
            acc
        },
        |mut a, b| {
            a.merge(b);
            a
        },
    );
    let result = result_slot.expect("producer runs to completion inside stage_shared");
    let (summary, stats) = seal_recovered(fold, db_path, opts)?;
    Ok(DirectCampaignOutput {
        result,
        summary,
        stats,
    })
}
