//! `uc policy --selftest`: the end-to-end determinism and bound check
//! for the mitigation policy engine, runnable anywhere (CI included)
//! without a pre-built campaign.
//!
//! The selftest builds a small synthetic fault corpus with distinct node
//! personalities (a hot-page repeater, a bursty node, a quiet node),
//! seals it into a temporary database, replays every policy through the
//! real `Engine::collect_days` feed, and then asserts the contracts the
//! subsystem advertises:
//!
//! 1. **Thread invariance** — the rendered comparison is byte-identical
//!    under worker pools of 1, 2, and 8 threads.
//! 2. **Seed determinism** — a second run at the same seed renders the
//!    identical bytes.
//! 3. **Oracle bound** — the clairvoyant oracle's evaluation cost is ≤
//!    every policy's, and the bandit's is ≤ the worst static baseline's.
//! 4. **Conservation** — every policy accounts for exactly the faults in
//!    the evaluation window: mitigated + missed + unmanaged.

use std::path::Path;

use uc_faultdb::format::write_db;
use uc_faultdb::{Engine, WriteOptions};
use uc_faultlog::ingest::{recover_text, IngestStats};
use uc_faultlog::store::ClusterLog;
use uc_parallel::with_thread_limit;
use uc_policy::{render_table, run_comparison, worst_static, Comparison, PolicyKind, ReplayConfig};

/// Synthetic month-long corpus with three node personalities. Built as
/// log text and pushed through the real recovery pipeline so the
/// selftest exercises the same ingest path as a campaign.
fn selftest_snapshot() -> uc_faultdb::Snapshot {
    const DAY: i64 = 86_400;
    let mut stats = IngestStats::default();
    let mut logs = Vec::new();

    // 01-01: hot-page repeater — one fault a day on the same page from
    // day 2 on. Retire leases should dominate once the page turns hot.
    let mut text = String::from("START t=0 node=01-01 alloc=3221225472 temp=30.0\n");
    for d in 2i64..28 {
        let t = d * DAY + 3_600;
        text.push_str(&format!(
            "ERROR t={t} node=01-01 vaddr=0x00005008 page=0x000005 \
             expected=0xffffffff actual=0xfffffffe temp=45.0\n"
        ));
    }
    text.push_str("END t=2600000 node=01-01 temp=31.0\n");
    let rec = recover_text(&text);
    stats.merge(&rec.stats);
    logs.push(rec.log);

    // 01-09: bursty — clusters of multi-page faults around days 8-10 and
    // 20-22; checkpoint or quarantine territory, nothing to retire.
    let mut text = String::from("START t=0 node=01-09 alloc=3221225472 temp=30.0\n");
    for d in [8i64, 9, 10, 20, 21, 22] {
        for k in 0i64..4 {
            let t = d * DAY + 1_000 * (k + 1);
            let vaddr = 0x10_000 + 0x2000 * (d * 4 + k) as u64;
            text.push_str(&format!(
                "ERROR t={t} node=01-09 vaddr=0x{vaddr:08x} page=0x{page:06x} \
                 expected=0xffffffff actual=0x7fffffff temp=36.0\n",
                page = vaddr >> 12
            ));
        }
    }
    text.push_str("END t=2600000 node=01-09 temp=31.0\n");
    let rec = recover_text(&text);
    stats.merge(&rec.stats);
    logs.push(rec.log);

    // 05-03: quiet — two isolated faults; observing should win.
    let mut text = String::from("START t=0 node=05-03 alloc=3221225472 temp=30.0\n");
    for (d, vaddr) in [(4i64, 0x40_000u64), (17, 0x90_000)] {
        let t = d * DAY + 7_200;
        text.push_str(&format!(
            "ERROR t={t} node=05-03 vaddr=0x{vaddr:08x} page=0x{page:06x} \
             expected=0xffffffff actual=0xfffffffc temp=31.0\n",
            page = vaddr >> 12
        ));
    }
    text.push_str("END t=2600000 node=05-03 temp=31.0\n");
    let rec = recover_text(&text);
    stats.merge(&rec.stats);
    logs.push(rec.log);

    uc_faultdb::Snapshot::from_cluster(&ClusterLog::new(logs), stats)
}

fn run_all(days: &[uc_faultdb::DayFaults], cfg: &ReplayConfig) -> Comparison {
    run_comparison(days, &PolicyKind::ALL, cfg)
}

/// Run the full selftest; `Ok` carries the human-readable transcript
/// (checks performed + the final table), `Err` a diagnostic.
pub fn policy_selftest(seed: u64) -> Result<String, String> {
    let dir = std::env::temp_dir().join(format!("uc-policy-selftest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("tempdir: {e}"))?;
    let result = policy_selftest_in(&dir, seed);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn policy_selftest_in(dir: &Path, seed: u64) -> Result<String, String> {
    let snap = selftest_snapshot();
    let path = dir.join("selftest.ucfdb");
    write_db(&snap, &path, &WriteOptions::default()).map_err(|e| format!("seal: {e}"))?;
    let db = Engine::open_auto(&path).map_err(|e| format!("open: {e}"))?;
    let days = db.collect_days().map_err(|e| format!("day stream: {e}"))?;
    if days.is_empty() {
        return Err("selftest corpus produced an empty day stream".into());
    }
    let total: usize = days.iter().map(|d| d.faults.len()).sum();
    if total != snap.faults.len() {
        return Err(format!(
            "day stream dropped faults: {} streamed vs {} sealed",
            total,
            snap.faults.len()
        ));
    }
    let cfg = ReplayConfig {
        seed,
        ..ReplayConfig::default()
    };

    // 1. Thread invariance: identical bytes at 1, 2, and 8 workers.
    let t1 = with_thread_limit(1, || render_table(&run_all(&days, &cfg)));
    let t2 = with_thread_limit(2, || render_table(&run_all(&days, &cfg)));
    let t8 = with_thread_limit(8, || render_table(&run_all(&days, &cfg)));
    if t1 != t2 || t1 != t8 {
        return Err("comparison bytes differ across thread counts".into());
    }

    // 2. Seed determinism: a fresh rerun renders identically.
    let cmp = run_all(&days, &cfg);
    let rendered = render_table(&cmp);
    if rendered != t1 {
        return Err("rerun at the same seed rendered different bytes".into());
    }

    // 3. Oracle bound + bandit vs worst static.
    let oracle = cmp.oracle().ok_or("comparison lost its oracle run")?;
    for run in &cmp.runs {
        if run.eval_cost_mnh < oracle.eval_cost_mnh {
            return Err(format!(
                "{} beat the oracle ({} < {} mNh) — the bound is broken",
                run.kind.label(),
                run.eval_cost_mnh,
                oracle.eval_cost_mnh
            ));
        }
    }
    let bandit = cmp
        .runs
        .iter()
        .find(|r| r.kind == PolicyKind::Bandit)
        .ok_or("comparison lost its bandit run")?;
    let worst = worst_static(&cmp).ok_or("comparison lost its static baselines")?;
    if bandit.eval_cost_mnh > worst.eval_cost_mnh {
        return Err(format!(
            "bandit ({} mNh) cost more than the worst static baseline {} ({} mNh)",
            bandit.eval_cost_mnh,
            worst.kind.label(),
            worst.eval_cost_mnh
        ));
    }

    // 4. Conservation: every run accounts for exactly the eval faults.
    for run in &cmp.runs {
        if run.eval_faults() != cmp.eval_faults {
            return Err(format!(
                "{} accounted {} faults, eval window has {}",
                run.kind.label(),
                run.eval_faults(),
                cmp.eval_faults
            ));
        }
    }

    Ok(format!(
        "policy selftest: {} days, {} faults, seed {}\n\
           thread invariance (1/2/8 workers): ok\n\
           seed determinism (rerun): ok\n\
           oracle lower bound + bandit <= worst static: ok\n\
           fault conservation across all policies: ok\n\n{rendered}",
        days.len(),
        total,
        seed
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selftest_passes_end_to_end() {
        let report = policy_selftest(7).expect("selftest must pass");
        assert!(report.contains("thread invariance"));
        assert!(report.contains("oracle"));
    }
}
