#!/usr/bin/env python3
"""Bench trajectory regression guard.

Compares a freshly emitted BENCH_campaign.json against the committed
trajectory (``git show HEAD:BENCH_campaign.json`` by default) and fails
when any tracked metric regresses past the tolerance:

* throughput keys (higher is better) fail below ``1 - tolerance`` of
  the committed value;
* latency / elapsed keys (lower is better) fail above
  ``1 + tolerance`` of the committed value.

Keys that are new in the fresh file are reported but never fail — that
is how a new metric enters the trajectory. A tracked key that
*disappears* fails: benches must not silently stop measuring.

Usage:
    python3 scripts/bench_guard.py [--fresh PATH] [--baseline PATH]
                                   [--tolerance 0.25]
"""

import argparse
import json
import subprocess
import sys

HIGHER_IS_BETTER = (
    "campaign_faults_per_sec",
    "direct_speedup",
    "ingest_mb_per_sec",
    "scan_rows_per_sec",
    "scan_packed_rows_per_sec",
    "shard_fanout_rows_per_sec",
    "catchup_mb_per_sec",
    "policy_days_per_sec",
)
LOWER_IS_BETTER = (
    "text_path_e2e_seconds",
    "direct_path_e2e_seconds",
    "serve_p99_us",
)


def committed_baseline(path):
    out = subprocess.run(
        ["git", "show", f"HEAD:{path}"],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", default="BENCH_campaign.json")
    ap.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON file; default reads HEAD's copy of --fresh from git",
    )
    ap.add_argument("--tolerance", type=float, default=0.25)
    args = ap.parse_args()

    with open(args.fresh) as f:
        fresh = json.load(f)
    if args.baseline:
        with open(args.baseline) as f:
            base = json.load(f)
    else:
        base = committed_baseline(args.fresh)

    failures = []
    for key in HIGHER_IS_BETTER + LOWER_IS_BETTER:
        if key not in base:
            if key in fresh:
                print(f"  new   {key:28s} {fresh[key]:>14,.1f} (no baseline yet)")
            continue
        if key not in fresh:
            failures.append(f"{key}: present in baseline but missing from fresh run")
            continue
        was, now = float(base[key]), float(fresh[key])
        if was <= 0:
            continue
        ratio = now / was
        if key in HIGHER_IS_BETTER:
            ok = ratio >= 1.0 - args.tolerance
            verdict = "ok" if ok else "REGRESSED"
            print(f"  {verdict:9s} {key:28s} {was:>14,.1f} -> {now:>14,.1f} ({ratio:.2f}x)")
            if not ok:
                failures.append(
                    f"{key}: {now:,.1f} is {ratio:.2f}x the committed {was:,.1f} "
                    f"(floor {1.0 - args.tolerance:.2f}x)"
                )
        else:
            ok = ratio <= 1.0 + args.tolerance
            verdict = "ok" if ok else "REGRESSED"
            print(f"  {verdict:9s} {key:28s} {was:>14,.1f} -> {now:>14,.1f} ({ratio:.2f}x)")
            if not ok:
                failures.append(
                    f"{key}: {now:,.1f} is {ratio:.2f}x the committed {was:,.1f} "
                    f"(ceiling {1.0 + args.tolerance:.2f}x)"
                )

    if failures:
        print("\nbench guard FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
